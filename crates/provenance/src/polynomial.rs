//! Provenance polynomials: the free commutative semiring N\[X\].

use crate::monomial::Monomial;
use crate::semiring::Semiring;
use crate::why::Why;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A polynomial in N\[X\] with variables (provenance tokens) `V`, kept in
/// canonical form: a map from monomial to positive coefficient.
///
/// This is the most informative provenance annotation of the PODS'07
/// hierarchy; every coarser form is a projection:
///
/// * [`drop_coefficients`](Polynomial::drop_coefficients) → `B\[X\]`
/// * [`drop_exponents`](Polynomial::drop_exponents) → `Trio(X)`
/// * [`why`](Polynomial::why) → `Why(X)` witness sets
/// * [`lineage`](Polynomial::lineage) → flat lineage
///
/// and every commutative-semiring evaluation factors through
/// [`eval`](Polynomial::eval) (the universal property).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Polynomial<V: Ord + Clone> {
    terms: BTreeMap<Monomial<V>, u64>,
}

impl<V: Ord + Clone + fmt::Debug> Polynomial<V> {
    /// The single-variable polynomial `v` — the annotation of a base tuple.
    pub fn var(v: V) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::var(v), 1);
        Polynomial { terms }
    }

    /// The polynomial for a single monomial with coefficient.
    pub fn term(m: Monomial<V>, coefficient: u64) -> Self {
        let mut terms = BTreeMap::new();
        if coefficient > 0 {
            terms.insert(m, coefficient);
        }
        Polynomial { terms }
    }

    /// A constant polynomial `n · 1`.
    pub fn constant(n: u64) -> Self {
        Self::term(Monomial::unit(), n)
    }

    /// Number of monomials.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Maximum total degree over monomials (0 for constants and zero).
    pub fn degree(&self) -> u64 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Iterate `(monomial, coefficient)` in monomial order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial<V>, u64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// The coefficient of a monomial (0 if absent).
    pub fn coefficient(&self, m: &Monomial<V>) -> u64 {
        self.terms.get(m).copied().unwrap_or(0)
    }

    /// All distinct variables appearing in the polynomial.
    pub fn variables(&self) -> BTreeSet<V> {
        self.terms
            .keys()
            .flat_map(|m| m.variables().cloned())
            .collect()
    }

    /// True iff variable `v` occurs anywhere.
    pub fn mentions(&self, v: &V) -> bool {
        self.terms.keys().any(|m| m.contains(v))
    }

    /// In-place addition, avoiding an intermediate clone on the hot path of
    /// semi-naive evaluation.
    pub fn plus_assign(&mut self, other: &Self) {
        for (m, &c) in &other.terms {
            *self.terms.entry(m.clone()).or_insert(0) += c;
        }
    }

    /// Evaluate under any commutative semiring by mapping each variable
    /// through `f` (the universal property of N\[X\]).
    ///
    /// Coefficients become `n`-fold sums and exponents `e`-fold products, so
    /// idempotent semirings collapse them as the theory prescribes.
    pub fn eval<S: Semiring>(&self, mut f: impl FnMut(&V) -> S) -> S {
        let mut acc = S::zero();
        for (m, &coeff) in &self.terms {
            let mut term = S::one();
            for (v, e) in m.iter() {
                let val = f(v);
                if val.is_zero() {
                    term = S::zero();
                    break;
                }
                for _ in 0..e {
                    term = term.times(&val);
                }
            }
            if term.is_zero() {
                continue;
            }
            // coeff-fold sum of `term`.
            for _ in 0..coeff {
                acc = acc.plus(&term);
            }
        }
        acc
    }

    /// `B\[X\]`: the same monomials with all coefficients forced to 1.
    pub fn drop_coefficients(&self) -> Polynomial<V> {
        Polynomial {
            terms: self.terms.keys().map(|m| (m.clone(), 1)).collect(),
        }
    }

    /// `Trio(X)`: keep coefficients, force exponents to 1 (combining
    /// monomials that collapse together).
    pub fn drop_exponents(&self) -> Polynomial<V> {
        let mut terms: BTreeMap<Monomial<V>, u64> = BTreeMap::new();
        for (m, &c) in &self.terms {
            *terms.entry(m.support()).or_insert(0) += c;
        }
        Polynomial { terms }
    }

    /// `Why(X)`: the witness basis — each monomial's variable set, as a set.
    pub fn why(&self) -> Why<V> {
        Why::from_witnesses(
            self.terms
                .keys()
                .map(|m| m.variables().cloned().collect::<BTreeSet<V>>()),
        )
    }

    /// Flat lineage: the union of all variables.
    pub fn lineage(&self) -> BTreeSet<V> {
        self.variables()
    }

    /// Substitute polynomials for variables (e.g. unfolding one derivation
    /// level, or restricting to a sub-database by substituting 0/1).
    pub fn substitute(&self, mut f: impl FnMut(&V) -> Polynomial<V>) -> Polynomial<V> {
        let mut acc = Polynomial::zero();
        for (m, &coeff) in &self.terms {
            let mut term = Polynomial::constant(coeff);
            for (v, e) in m.iter() {
                let sub = f(v);
                for _ in 0..e {
                    term = term.times(&sub);
                    if term.is_zero() {
                        break;
                    }
                }
                if term.is_zero() {
                    break;
                }
            }
            acc.plus_assign(&term);
        }
        acc
    }

    /// Decide derivability if the tokens in `dead` are deleted: evaluate in
    /// the Boolean semiring with dead tokens ↦ false. This is the
    /// provenance-based deletion test of the update-exchange paper.
    pub fn derivable_without(&self, dead: &BTreeSet<V>) -> bool {
        self.terms
            .keys()
            .any(|m| m.variables().all(|v| !dead.contains(v)))
    }

    /// Remove every monomial mentioning a dead token, yielding the
    /// polynomial over the surviving database.
    pub fn restrict_without(&self, dead: &BTreeSet<V>) -> Polynomial<V> {
        Polynomial {
            terms: self
                .terms
                .iter()
                .filter(|(m, _)| m.variables().all(|v| !dead.contains(v)))
                .map(|(m, &c)| (m.clone(), c))
                .collect(),
        }
    }
}

impl<V: Ord + Clone> Semiring for Polynomial<V>
where
    V: fmt::Debug,
{
    fn zero() -> Self {
        Polynomial {
            terms: BTreeMap::new(),
        }
    }

    fn one() -> Self {
        Polynomial::constant(1)
    }

    fn plus(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.plus_assign(other);
        out
    }

    fn times(&self, other: &Self) -> Self {
        if self.terms.is_empty() || other.terms.is_empty() {
            return Self::zero();
        }
        let mut terms: BTreeMap<Monomial<V>, u64> = BTreeMap::new();
        for (m1, &c1) in &self.terms {
            for (m2, &c2) in &other.terms {
                let m = m1.times(m2);
                *terms.entry(m).or_insert(0) += c1 * c2;
            }
        }
        Polynomial { terms }
    }

    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }
}

impl<V: Ord + Clone + fmt::Display> fmt::Display for Polynomial<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c == 1 {
                write!(f, "{m}")?;
            } else if m.is_unit() {
                write!(f, "{c}")?;
            } else {
                write!(f, "{c}·{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{check_semiring_laws, Boolean, Counting, Tropical};
    use proptest::prelude::*;

    type P = Polynomial<u32>;

    fn x() -> P {
        P::var(1)
    }
    fn y() -> P {
        P::var(2)
    }
    fn z() -> P {
        P::var(3)
    }

    #[test]
    fn zero_and_one() {
        assert!(P::zero().is_zero());
        assert!(P::one().is_one());
        assert_eq!(P::zero().num_terms(), 0);
        assert_eq!(P::one().to_string(), "1");
    }

    #[test]
    fn paper_example_square() {
        // (x + y)^2 = x^2 + 2xy + y^2 — the PODS'07 running example shape.
        let p = x().plus(&y());
        let sq = p.times(&p);
        assert_eq!(sq.num_terms(), 3);
        assert_eq!(sq.coefficient(&Monomial::from_pairs([(1, 2)])), 1);
        assert_eq!(sq.coefficient(&Monomial::from_pairs([(1, 1), (2, 1)])), 2);
        assert_eq!(sq.coefficient(&Monomial::from_pairs([(2, 2)])), 1);
        assert_eq!(sq.degree(), 2);
    }

    #[test]
    fn display_canonical() {
        let p = x().plus(&y()).plus(&x());
        assert_eq!(p.to_string(), "2·1 + 2");
    }

    #[test]
    fn eval_counting_counts_derivations() {
        // 2xy + x^2 with x=2, y=3 → 2*2*3 + 4 = 16.
        let p = P::term(Monomial::from_pairs([(1, 1), (2, 1)]), 2)
            .plus(&P::term(Monomial::from_pairs([(1, 2)]), 1));
        let n = p.eval(|v| Counting(if *v == 1 { 2 } else { 3 }));
        assert_eq!(n, Counting(16));
    }

    #[test]
    fn eval_boolean_is_derivability() {
        let p = x().times(&y()).plus(&z());
        // z present alone suffices.
        let b = p.eval(|v| Boolean(*v == 3));
        assert_eq!(b, Boolean(true));
        // x alone does not (x·y needs y).
        let b = p.eval(|v| Boolean(*v == 1));
        assert_eq!(b, Boolean(false));
    }

    #[test]
    fn eval_tropical_takes_cheapest_derivation() {
        // x·y + z with costs x=1, y=2, z=5 → min(1+2, 5) = 3.
        let p = x().times(&y()).plus(&z());
        let t = p.eval(|v| {
            Tropical::cost(match v {
                1 => 1,
                2 => 2,
                _ => 5,
            })
        });
        assert_eq!(t, Tropical::cost(3));
    }

    #[test]
    fn eval_zero_short_circuits() {
        let p = x().times(&y());
        assert_eq!(p.eval(|_| Counting(0)), Counting(0));
        assert_eq!(P::zero().eval(|_: &u32| Counting(7)), Counting(0));
    }

    #[test]
    fn hierarchy_projections() {
        // p = x^2·y + 3·x·y + y
        let p = P::term(Monomial::from_pairs([(1, 2), (2, 1)]), 1)
            .plus(&P::term(Monomial::from_pairs([(1, 1), (2, 1)]), 3))
            .plus(&y());

        let b = p.drop_coefficients();
        assert!(b.iter().all(|(_, c)| c == 1));
        assert_eq!(b.num_terms(), 3);

        // Dropping exponents merges x^2·y into x·y: 1 + 3 = 4 copies.
        let trio = p.drop_exponents();
        assert_eq!(trio.coefficient(&Monomial::from_pairs([(1, 1), (2, 1)])), 4);
        assert_eq!(trio.coefficient(&Monomial::from_pairs([(2, 1)])), 1);
        assert_eq!(trio.num_terms(), 2);

        let why = p.why();
        assert_eq!(why.witnesses().count(), 2); // {x,y} (from x²y and xy) and {y}
        assert_eq!(why.minimize().num_witnesses(), 1); // absorption leaves {y}

        let lin = p.lineage();
        assert_eq!(lin, BTreeSet::from([1, 2]));
    }

    #[test]
    fn substitution_unfolds() {
        // p = x·y; substitute x ↦ (a + b), y ↦ y.
        let p = x().times(&y());
        let out = p.substitute(|v| {
            if *v == 1 {
                P::var(10).plus(&P::var(11))
            } else {
                P::var(*v)
            }
        });
        // = a·y + b·y
        assert_eq!(out.num_terms(), 2);
        assert!(out.mentions(&10));
        assert!(out.mentions(&11));
        assert!(out.mentions(&2));
        assert!(!out.mentions(&1));
    }

    #[test]
    fn derivability_without_dead_tokens() {
        let p = x().times(&y()).plus(&z());
        let dead_z = BTreeSet::from([3u32]);
        assert!(p.derivable_without(&dead_z), "x·y survives");
        let dead_xz = BTreeSet::from([1u32, 3]);
        assert!(!p.derivable_without(&dead_xz), "both derivations dead");
        assert!(
            P::one().derivable_without(&dead_xz),
            "constants always derivable"
        );
        assert!(!P::zero().derivable_without(&BTreeSet::new()));
    }

    #[test]
    fn restrict_without_removes_dead_monomials() {
        let p = x().times(&y()).plus(&z());
        let restricted = p.restrict_without(&BTreeSet::from([3u32]));
        assert_eq!(restricted, x().times(&y()));
        // Restriction and Boolean evaluation agree.
        assert_eq!(
            !restricted.is_zero(),
            p.derivable_without(&BTreeSet::from([3u32]))
        );
    }

    #[test]
    fn variables_and_mentions() {
        let p = x().times(&y()).plus(&P::constant(4));
        assert_eq!(p.variables(), BTreeSet::from([1, 2]));
        assert!(p.mentions(&1));
        assert!(!p.mentions(&9));
    }

    fn poly_strategy() -> impl Strategy<Value = P> {
        // Up to 4 terms, vars in 0..5, exponents 1..3, coefficients 1..4.
        proptest::collection::vec(
            (proptest::collection::vec((0u32..5, 1u32..3), 0..3), 1u64..4),
            0..4,
        )
        .prop_map(|terms| {
            let mut p = P::zero();
            for (pairs, coeff) in terms {
                p.plus_assign(&P::term(Monomial::from_pairs(pairs), coeff));
            }
            p
        })
    }

    proptest! {
        #[test]
        fn polynomial_semiring_laws(a in poly_strategy(), b in poly_strategy(), c in poly_strategy()) {
            check_semiring_laws(&a, &b, &c);
        }

        /// The universal property: evaluation is a homomorphism.
        #[test]
        fn eval_commutes_with_plus_and_times(a in poly_strategy(), b in poly_strategy()) {
            let f = |v: &u32| Counting((*v as u64 % 3) + 1);
            prop_assert_eq!(a.plus(&b).eval(f), a.eval(f).plus(&b.eval(f)));
            prop_assert_eq!(a.times(&b).eval(f), a.eval(f).times(&b.eval(f)));
        }

        /// Boolean evaluation agrees with the restriction-based test.
        #[test]
        fn boolean_eval_matches_restriction(a in poly_strategy(), dead in proptest::collection::btree_set(0u32..5, 0..4)) {
            let alive = a.eval(|v| Boolean(!dead.contains(v)));
            prop_assert_eq!(alive.0, a.derivable_without(&dead));
            prop_assert_eq!(alive.0, !a.restrict_without(&dead).is_zero());
        }

        /// plus_assign agrees with plus.
        #[test]
        fn plus_assign_matches_plus(a in poly_strategy(), b in poly_strategy()) {
            let mut c = a.clone();
            c.plus_assign(&b);
            prop_assert_eq!(c, a.plus(&b));
        }

        /// Substituting each variable by itself is the identity.
        #[test]
        fn identity_substitution(a in poly_strategy()) {
            prop_assert_eq!(a.substitute(|v| P::var(*v)), a);
        }
    }
}
