//! The commutative semiring abstraction and the concrete semirings used by
//! the CDSS.
//!
//! A commutative semiring `(K, +, ·, 0, 1)` has `(K, +, 0)` a commutative
//! monoid, `(K, ·, 1)` a commutative monoid, `·` distributing over `+`, and
//! `0` annihilating. [`check_semiring_laws`] verifies all of these for a
//! triple of elements and is driven by `proptest` in each implementation's
//! tests (and reused by downstream crates).

use std::fmt;

/// A commutative semiring.
pub trait Semiring: Clone + PartialEq + fmt::Debug {
    /// Additive identity; annihilates under multiplication.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Commutative, associative addition (alternative derivations).
    fn plus(&self, other: &Self) -> Self;
    /// Commutative, associative multiplication (joint use).
    fn times(&self, other: &Self) -> Self;

    /// True iff `self == 0`. Used to short-circuit hot paths.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// True iff `self == 1`.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// Sum of an iterator (0 for empty).
    fn sum<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter().fold(Self::zero(), |acc, x| acc.plus(&x))
    }

    /// Product of an iterator (1 for empty).
    fn product<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter().fold(Self::one(), |acc, x| acc.times(&x))
    }
}

/// Assert all commutative-semiring laws on a triple of elements. Panics with
/// a named law on violation; intended for property tests.
pub fn check_semiring_laws<S: Semiring>(a: &S, b: &S, c: &S) {
    // Additive monoid.
    assert_eq!(a.plus(&b.plus(c)), a.plus(b).plus(c), "plus associativity");
    assert_eq!(a.plus(b), b.plus(a), "plus commutativity");
    assert_eq!(a.plus(&S::zero()), *a, "plus identity");
    // Multiplicative monoid.
    assert_eq!(
        a.times(&b.times(c)),
        a.times(b).times(c),
        "times associativity"
    );
    assert_eq!(a.times(b), b.times(a), "times commutativity");
    assert_eq!(a.times(&S::one()), *a, "times identity");
    // Distributivity and annihilation.
    assert_eq!(
        a.times(&b.plus(c)),
        a.times(b).plus(&a.times(c)),
        "distributivity"
    );
    assert_eq!(a.times(&S::zero()), S::zero(), "annihilation");
}

/// The Boolean semiring `({false,true}, ∨, ∧)` — set semantics, trust and
/// derivability decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Boolean(pub bool);

impl Semiring for Boolean {
    fn zero() -> Self {
        Boolean(false)
    }
    fn one() -> Self {
        Boolean(true)
    }
    fn plus(&self, other: &Self) -> Self {
        Boolean(self.0 || other.0)
    }
    fn times(&self, other: &Self) -> Self {
        Boolean(self.0 && other.0)
    }
}

impl fmt::Display for Boolean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The counting semiring `(ℕ, +, ×)` — bag semantics / number of
/// derivations. Saturating so pathological workloads cannot overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Counting(pub u64);

impl Semiring for Counting {
    fn zero() -> Self {
        Counting(0)
    }
    fn one() -> Self {
        Counting(1)
    }
    fn plus(&self, other: &Self) -> Self {
        Counting(self.0.saturating_add(other.0))
    }
    fn times(&self, other: &Self) -> Self {
        Counting(self.0.saturating_mul(other.0))
    }
}

impl fmt::Display for Counting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The tropical semiring `(ℕ ∪ {∞}, min, +)` — cheapest derivation cost.
///
/// A CDSS peer can rank alternative derivations by mapping each base token
/// to a cost (e.g. how much it trusts the origin peer) and taking the
/// minimum over derivations; `Infinity` is "underivable".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tropical {
    /// A finite cost.
    Finite(u64),
    /// No derivation (additive identity).
    Infinity,
}

impl Tropical {
    /// Finite cost constructor.
    pub fn cost(c: u64) -> Self {
        Tropical::Finite(c)
    }

    /// The finite cost, if any.
    pub fn finite(&self) -> Option<u64> {
        match self {
            Tropical::Finite(c) => Some(*c),
            Tropical::Infinity => None,
        }
    }
}

impl Semiring for Tropical {
    fn zero() -> Self {
        Tropical::Infinity
    }
    fn one() -> Self {
        Tropical::Finite(0)
    }
    fn plus(&self, other: &Self) -> Self {
        match (self, other) {
            (Tropical::Infinity, x) | (x, Tropical::Infinity) => *x,
            (Tropical::Finite(a), Tropical::Finite(b)) => Tropical::Finite(*a.min(b)),
        }
    }
    fn times(&self, other: &Self) -> Self {
        match (self, other) {
            (Tropical::Infinity, _) | (_, Tropical::Infinity) => Tropical::Infinity,
            (Tropical::Finite(a), Tropical::Finite(b)) => Tropical::Finite(a.saturating_add(*b)),
        }
    }
}

impl fmt::Display for Tropical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tropical::Finite(c) => write!(f, "{c}"),
            Tropical::Infinity => write!(f, "∞"),
        }
    }
}

/// The access-control (security) semiring of PODS'07 §4: clearance levels
/// ordered `Public < Confidential < Secret < TopSecret < NeverAllowed`,
/// with `plus = min` (most permissive alternative) and `times = max` (a
/// joint derivation is as restricted as its most restricted input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Security {
    /// Readable by anyone (multiplicative identity).
    Public,
    /// Confidential.
    Confidential,
    /// Secret.
    Secret,
    /// Top secret.
    TopSecret,
    /// Readable by no one (additive identity).
    NeverAllowed,
}

impl Semiring for Security {
    fn zero() -> Self {
        Security::NeverAllowed
    }
    fn one() -> Self {
        Security::Public
    }
    fn plus(&self, other: &Self) -> Self {
        *self.min(other)
    }
    fn times(&self, other: &Self) -> Self {
        *self.max(other)
    }
}

impl fmt::Display for Security {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Security::Public => "P",
            Security::Confidential => "C",
            Security::Secret => "S",
            Security::TopSecret => "T",
            Security::NeverAllowed => "0",
        };
        write!(f, "{s}")
    }
}

/// The fuzzy (confidence) semiring `([0,1], max, min)` — a derivation is
/// as credible as its least credible input; alternatives take the best.
///
/// A CDSS peer can rank candidate updates by assigning per-origin
/// confidence scores and evaluating provenance under this semiring (the
/// confidence-ranking reading of trust the paper sketches). Being a
/// distributive lattice it is exact under floating point: `max`/`min`
/// never round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fuzzy(f64);

impl Fuzzy {
    /// Build a confidence value, clamped to `[0, 1]`; NaN becomes 0.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            Fuzzy(0.0)
        } else {
            Fuzzy(v.clamp(0.0, 1.0))
        }
    }

    /// The confidence as `f64`.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Eq for Fuzzy {}

impl PartialOrd for Fuzzy {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fuzzy {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Semiring for Fuzzy {
    fn zero() -> Self {
        Fuzzy(0.0)
    }
    fn one() -> Self {
        Fuzzy(1.0)
    }
    fn plus(&self, other: &Self) -> Self {
        *self.max(other)
    }
    fn times(&self, other: &Self) -> Self {
        *self.min(other)
    }
}

impl fmt::Display for Fuzzy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn boolean_table() {
        let t = Boolean(true);
        let f = Boolean(false);
        assert_eq!(Boolean::zero(), f);
        assert_eq!(Boolean::one(), t);
        assert_eq!(t.plus(&f), t);
        assert_eq!(f.plus(&f), f);
        assert_eq!(t.times(&f), f);
        assert_eq!(t.times(&t), t);
        assert!(f.is_zero());
        assert!(t.is_one());
    }

    #[test]
    fn counting_saturates() {
        let max = Counting(u64::MAX);
        assert_eq!(max.plus(&Counting(1)), max);
        assert_eq!(max.times(&Counting(2)), max);
    }

    #[test]
    fn tropical_min_plus() {
        let a = Tropical::cost(3);
        let b = Tropical::cost(5);
        assert_eq!(a.plus(&b), Tropical::cost(3));
        assert_eq!(a.times(&b), Tropical::cost(8));
        assert_eq!(a.plus(&Tropical::Infinity), a);
        assert_eq!(a.times(&Tropical::Infinity), Tropical::Infinity);
        assert_eq!(Tropical::one(), Tropical::cost(0));
        assert_eq!(Tropical::cost(4).finite(), Some(4));
        assert_eq!(Tropical::Infinity.finite(), None);
    }

    #[test]
    fn security_min_max() {
        use Security::*;
        assert_eq!(Secret.plus(&Confidential), Confidential);
        assert_eq!(Secret.times(&Confidential), Secret);
        assert_eq!(Public.times(&TopSecret), TopSecret);
        assert_eq!(NeverAllowed.plus(&TopSecret), TopSecret);
        assert_eq!(Security::zero(), NeverAllowed);
        assert_eq!(Security::one(), Public);
    }

    #[test]
    fn sum_and_product_helpers() {
        let xs = vec![Counting(1), Counting(2), Counting(3)];
        assert_eq!(Counting::sum(xs.clone()), Counting(6));
        assert_eq!(Counting::product(xs), Counting(6));
        assert_eq!(Counting::sum(Vec::new()), Counting::zero());
        assert_eq!(Counting::product(Vec::new()), Counting::one());
    }

    fn tropical_strategy() -> impl Strategy<Value = Tropical> {
        prop_oneof![
            (0u64..1000).prop_map(Tropical::Finite),
            Just(Tropical::Infinity),
        ]
    }

    fn security_strategy() -> impl Strategy<Value = Security> {
        prop_oneof![
            Just(Security::Public),
            Just(Security::Confidential),
            Just(Security::Secret),
            Just(Security::TopSecret),
            Just(Security::NeverAllowed),
        ]
    }

    #[test]
    fn fuzzy_lattice_ops() {
        let a = Fuzzy::new(0.3);
        let b = Fuzzy::new(0.8);
        assert_eq!(a.plus(&b), b);
        assert_eq!(a.times(&b), a);
        assert_eq!(Fuzzy::zero().value(), 0.0);
        assert_eq!(Fuzzy::one().value(), 1.0);
        assert_eq!(Fuzzy::new(2.0).value(), 1.0, "clamped");
        assert_eq!(Fuzzy::new(-1.0).value(), 0.0, "clamped");
        assert_eq!(Fuzzy::new(f64::NAN).value(), 0.0, "NaN sanitized");
        assert_eq!(Fuzzy::new(0.5).to_string(), "0.500");
    }

    proptest! {
        #[test]
        fn boolean_laws(a: bool, b: bool, c: bool) {
            check_semiring_laws(&Boolean(a), &Boolean(b), &Boolean(c));
        }

        #[test]
        fn counting_laws(a in 0u64..10_000, b in 0u64..10_000, c in 0u64..10_000) {
            check_semiring_laws(&Counting(a), &Counting(b), &Counting(c));
        }

        #[test]
        fn tropical_laws(a in tropical_strategy(), b in tropical_strategy(), c in tropical_strategy()) {
            check_semiring_laws(&a, &b, &c);
        }

        #[test]
        fn security_laws(a in security_strategy(), b in security_strategy(), c in security_strategy()) {
            check_semiring_laws(&a, &b, &c);
        }

        #[test]
        fn fuzzy_laws(a in 0.0f64..=1.0, b in 0.0f64..=1.0, c in 0.0f64..=1.0) {
            check_semiring_laws(&Fuzzy::new(a), &Fuzzy::new(b), &Fuzzy::new(c));
        }
    }
}
