//! Monomials: products of provenance tokens with exponents.

use std::collections::BTreeMap;
use std::fmt;

/// A monomial over variables `V`: a finite product `x₁^e₁ · x₂^e₂ · …` with
/// positive exponents, in canonical (sorted, deduplicated) form.
///
/// The empty monomial is the multiplicative unit `1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Monomial<V: Ord + Clone> {
    factors: BTreeMap<V, u32>,
}

impl<V: Ord + Clone> Monomial<V> {
    /// The unit monomial `1`.
    pub fn unit() -> Self {
        Monomial {
            factors: BTreeMap::new(),
        }
    }

    /// The monomial consisting of a single variable `v`.
    pub fn var(v: V) -> Self {
        let mut factors = BTreeMap::new();
        factors.insert(v, 1);
        Monomial { factors }
    }

    /// Build from `(variable, exponent)` pairs; zero exponents are dropped,
    /// duplicates are combined.
    pub fn from_pairs<I: IntoIterator<Item = (V, u32)>>(pairs: I) -> Self {
        let mut factors: BTreeMap<V, u32> = BTreeMap::new();
        for (v, e) in pairs {
            if e > 0 {
                *factors.entry(v).or_insert(0) += e;
            }
        }
        Monomial { factors }
    }

    /// True iff this is the unit monomial.
    pub fn is_unit(&self) -> bool {
        self.factors.is_empty()
    }

    /// Total degree (sum of exponents).
    pub fn degree(&self) -> u64 {
        self.factors.values().map(|&e| e as u64).sum()
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.factors.len()
    }

    /// Exponent of `v` (0 if absent).
    pub fn exponent(&self, v: &V) -> u32 {
        self.factors.get(v).copied().unwrap_or(0)
    }

    /// True iff `v` occurs.
    pub fn contains(&self, v: &V) -> bool {
        self.factors.contains_key(v)
    }

    /// Iterate `(variable, exponent)` in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&V, u32)> {
        self.factors.iter().map(|(v, &e)| (v, e))
    }

    /// Product of two monomials (exponents add).
    pub fn times(&self, other: &Self) -> Self {
        // Merge the smaller map into the larger to bound work.
        let (big, small) = if self.factors.len() >= other.factors.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut factors = big.factors.clone();
        for (v, &e) in &small.factors {
            *factors.entry(v.clone()).or_insert(0) += e;
        }
        Monomial { factors }
    }

    /// The monomial with all exponents forced to 1 (the `Trio(X)` → `Why(X)`
    /// style "drop exponents" projection).
    pub fn support(&self) -> Monomial<V> {
        Monomial {
            factors: self.factors.keys().map(|v| (v.clone(), 1)).collect(),
        }
    }

    /// The set of variables.
    pub fn variables(&self) -> impl Iterator<Item = &V> {
        self.factors.keys()
    }
}

impl<V: Ord + Clone + fmt::Display> fmt::Display for Monomial<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unit() {
            return write!(f, "1");
        }
        for (i, (v, e)) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if *e == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_properties() {
        let u: Monomial<u32> = Monomial::unit();
        assert!(u.is_unit());
        assert_eq!(u.degree(), 0);
        assert_eq!(u.num_vars(), 0);
        assert_eq!(u.to_string(), "1");
    }

    #[test]
    fn var_and_times() {
        let x = Monomial::var(1u32);
        let y = Monomial::var(2u32);
        let xy = x.times(&y);
        assert_eq!(xy.degree(), 2);
        assert_eq!(xy.exponent(&1), 1);
        assert_eq!(xy.exponent(&2), 1);
        let x2y = xy.times(&x);
        assert_eq!(x2y.exponent(&1), 2);
        assert_eq!(x2y.degree(), 3);
    }

    #[test]
    fn times_unit_is_identity() {
        let x = Monomial::var(5u32);
        assert_eq!(x.times(&Monomial::unit()), x);
        assert_eq!(Monomial::unit().times(&x), x);
    }

    #[test]
    fn times_is_commutative() {
        let a = Monomial::from_pairs([(1u32, 2), (3, 1)]);
        let b = Monomial::from_pairs([(2u32, 1), (3, 4)]);
        assert_eq!(a.times(&b), b.times(&a));
    }

    #[test]
    fn from_pairs_canonicalizes() {
        let m = Monomial::from_pairs([(2u32, 1), (1, 0), (2, 2)]);
        assert_eq!(m.exponent(&2), 3);
        assert!(!m.contains(&1), "zero exponents dropped");
        assert_eq!(m.num_vars(), 1);
    }

    #[test]
    fn support_drops_exponents() {
        let m = Monomial::from_pairs([(1u32, 3), (2, 1)]);
        let s = m.support();
        assert_eq!(s.exponent(&1), 1);
        assert_eq!(s.exponent(&2), 1);
        assert_eq!(s.degree(), 2);
    }

    #[test]
    fn display_with_exponents() {
        let m = Monomial::from_pairs([(1u32, 2), (7, 1)]);
        assert_eq!(m.to_string(), "1^2·7");
    }

    #[test]
    fn ordering_is_deterministic() {
        let a = Monomial::var(1u32);
        let b = Monomial::var(2u32);
        assert!(a < b);
        assert!(Monomial::<u32>::unit() < a);
    }

    #[test]
    fn variables_iteration() {
        let m = Monomial::from_pairs([(3u32, 1), (1, 2)]);
        let vars: Vec<u32> = m.variables().copied().collect();
        assert_eq!(vars, vec![1, 3]);
    }
}
