//! Why-provenance and positive Boolean provenance.
//!
//! Two adjacent levels of the PODS'07 provenance hierarchy:
//!
//! * [`Why`] — *witness sets* (Buneman, Khanna & Tan, ICDT 2001 — the
//!   Orchestra paper's reference \[1\] — recast as the semiring
//!   `(P(P(X)), ∪, ⋓, ∅, {∅})` where `⋓` is pairwise union). No
//!   absorption: `x + x·y` keeps both witnesses `{x}` and `{x,y}`.
//! * [`PosBool`] — positive Boolean expressions over X modulo logical
//!   equivalence, represented as the *minimal witness basis* (an antichain
//!   of witnesses). Here absorption holds: `x + x·y = x`. This is the
//!   coarsest form that still answers "which tuple sets suffice?".

use crate::semiring::Semiring;
use std::collections::BTreeSet;
use std::fmt;

fn fmt_witnesses<V: Ord + Clone + fmt::Display>(
    f: &mut fmt::Formatter<'_>,
    sets: &BTreeSet<BTreeSet<V>>,
) -> fmt::Result {
    write!(f, "{{")?;
    for (i, w) in sets.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{{")?;
        for (j, v) in w.iter().enumerate() {
            if j > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")?;
    }
    write!(f, "}}")
}

/// Why-provenance: the set of witnesses, *without* minimization.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Why<V: Ord + Clone> {
    witnesses: BTreeSet<BTreeSet<V>>,
}

impl<V: Ord + Clone + fmt::Debug> Why<V> {
    /// The annotation of a base tuple: one singleton witness.
    pub fn var(v: V) -> Self {
        Why {
            witnesses: BTreeSet::from([BTreeSet::from([v])]),
        }
    }

    /// Build from an iterator of witnesses (set semantics, duplicates merge).
    pub fn from_witnesses<I>(iter: I) -> Self
    where
        I: IntoIterator<Item = BTreeSet<V>>,
    {
        Why {
            witnesses: iter.into_iter().collect(),
        }
    }

    /// Iterate over witnesses in set order.
    pub fn witnesses(&self) -> impl Iterator<Item = &BTreeSet<V>> {
        self.witnesses.iter()
    }

    /// Number of witnesses.
    pub fn num_witnesses(&self) -> usize {
        self.witnesses.len()
    }

    /// Flat lineage: union of all witnesses.
    pub fn lineage(&self) -> BTreeSet<V> {
        self.witnesses.iter().flatten().cloned().collect()
    }

    /// True iff some witness survives deleting `dead` tokens.
    pub fn derivable_without(&self, dead: &BTreeSet<V>) -> bool {
        self.witnesses.iter().any(|w| w.is_disjoint(dead))
    }

    /// Project to the minimal witness basis.
    pub fn minimize(&self) -> PosBool<V> {
        PosBool::from_witnesses(self.witnesses.iter().cloned())
    }
}

impl<V: Ord + Clone + fmt::Debug> Semiring for Why<V> {
    fn zero() -> Self {
        Why {
            witnesses: BTreeSet::new(),
        }
    }

    fn one() -> Self {
        Why {
            witnesses: BTreeSet::from([BTreeSet::new()]),
        }
    }

    fn plus(&self, other: &Self) -> Self {
        Why {
            witnesses: self.witnesses.union(&other.witnesses).cloned().collect(),
        }
    }

    fn times(&self, other: &Self) -> Self {
        let mut witnesses = BTreeSet::new();
        for a in &self.witnesses {
            for b in &other.witnesses {
                witnesses.insert(a.union(b).cloned().collect());
            }
        }
        Why { witnesses }
    }

    fn is_zero(&self) -> bool {
        self.witnesses.is_empty()
    }
}

impl<V: Ord + Clone + fmt::Display> fmt::Display for Why<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_witnesses(f, &self.witnesses)
    }
}

/// Positive Boolean provenance: minimal witness antichains (absorption law
/// holds). Isomorphic to positive Boolean expressions over X up to logical
/// equivalence — the free *distributive lattice*.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PosBool<V: Ord + Clone> {
    witnesses: BTreeSet<BTreeSet<V>>,
}

impl<V: Ord + Clone + fmt::Debug> PosBool<V> {
    /// The annotation of a base tuple.
    pub fn var(v: V) -> Self {
        PosBool {
            witnesses: BTreeSet::from([BTreeSet::from([v])]),
        }
    }

    /// Build from witnesses, minimizing to an antichain.
    pub fn from_witnesses<I>(iter: I) -> Self
    where
        I: IntoIterator<Item = BTreeSet<V>>,
    {
        let mut out = PosBool {
            witnesses: BTreeSet::new(),
        };
        for w in iter {
            out.insert_minimal(w);
        }
        out
    }

    /// Insert a witness, keeping the antichain property: drop it if some
    /// existing witness is a subset; remove existing supersets of it.
    fn insert_minimal(&mut self, w: BTreeSet<V>) {
        if self.witnesses.iter().any(|x| x.is_subset(&w)) {
            return;
        }
        self.witnesses.retain(|x| !w.is_subset(x));
        self.witnesses.insert(w);
    }

    /// Iterate over minimal witnesses in set order.
    pub fn witnesses(&self) -> impl Iterator<Item = &BTreeSet<V>> {
        self.witnesses.iter()
    }

    /// Number of minimal witnesses.
    pub fn num_witnesses(&self) -> usize {
        self.witnesses.len()
    }

    /// Flat lineage: union of all witnesses.
    pub fn lineage(&self) -> BTreeSet<V> {
        self.witnesses.iter().flatten().cloned().collect()
    }

    /// True iff some witness survives deleting `dead` tokens.
    pub fn derivable_without(&self, dead: &BTreeSet<V>) -> bool {
        self.witnesses.iter().any(|w| w.is_disjoint(dead))
    }
}

impl<V: Ord + Clone + fmt::Debug> Semiring for PosBool<V> {
    fn zero() -> Self {
        PosBool {
            witnesses: BTreeSet::new(),
        }
    }

    fn one() -> Self {
        PosBool {
            witnesses: BTreeSet::from([BTreeSet::new()]),
        }
    }

    fn plus(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for w in &other.witnesses {
            out.insert_minimal(w.clone());
        }
        out
    }

    fn times(&self, other: &Self) -> Self {
        let mut out = PosBool {
            witnesses: BTreeSet::new(),
        };
        for a in &self.witnesses {
            for b in &other.witnesses {
                out.insert_minimal(a.union(b).cloned().collect());
            }
        }
        out
    }

    fn is_zero(&self) -> bool {
        self.witnesses.is_empty()
    }
}

impl<V: Ord + Clone + fmt::Display> fmt::Display for PosBool<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_witnesses(f, &self.witnesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::check_semiring_laws;
    use proptest::prelude::*;

    type W = Why<u32>;
    type B = PosBool<u32>;

    #[test]
    fn zero_one() {
        assert!(W::zero().is_zero());
        assert_eq!(W::one().num_witnesses(), 1);
        assert!(W::one().witnesses().next().unwrap().is_empty());
        assert!(B::zero().is_zero());
        assert_eq!(B::one().num_witnesses(), 1);
    }

    #[test]
    fn plus_unions_witnesses() {
        let p = W::var(1).plus(&W::var(2));
        assert_eq!(p.num_witnesses(), 2);
    }

    #[test]
    fn times_joins_witnesses() {
        let p = W::var(1).times(&W::var(2));
        assert_eq!(p.num_witnesses(), 1);
        assert_eq!(p.witnesses().next().unwrap(), &BTreeSet::from([1, 2]));
    }

    #[test]
    fn why_has_no_absorption() {
        // x + x·y keeps both witnesses in Why(X).
        let p = W::var(1).plus(&W::var(1).times(&W::var(2)));
        assert_eq!(p.num_witnesses(), 2);
    }

    #[test]
    fn posbool_absorbs() {
        // x + x·y = x in PosBool(X), regardless of insertion order.
        let p = B::var(1).plus(&B::var(1).times(&B::var(2)));
        assert_eq!(p, B::var(1));
        let q = B::var(1).times(&B::var(2)).plus(&B::var(1));
        assert_eq!(q, B::var(1));
    }

    #[test]
    fn minimize_projects_why_to_posbool() {
        let p = W::var(1).plus(&W::var(1).times(&W::var(2)));
        assert_eq!(p.minimize(), B::var(1));
    }

    #[test]
    fn idempotent_plus() {
        let x = W::var(1);
        assert_eq!(x.plus(&x), x);
        let y = B::var(1);
        assert_eq!(y.plus(&y), y);
    }

    #[test]
    fn lineage_and_derivability() {
        let p = W::var(1).times(&W::var(2)).plus(&W::var(3));
        assert_eq!(p.lineage(), BTreeSet::from([1, 2, 3]));
        assert!(p.derivable_without(&BTreeSet::from([3])));
        assert!(!p.derivable_without(&BTreeSet::from([1, 3])));
        let b = p.minimize();
        assert!(b.derivable_without(&BTreeSet::from([3])));
        assert!(!b.derivable_without(&BTreeSet::from([1, 3])));
    }

    #[test]
    fn display() {
        let p = W::var(2).plus(&W::var(1));
        assert_eq!(p.to_string(), "{{1}, {2}}");
        assert_eq!(W::zero().to_string(), "{}");
        assert_eq!(W::one().to_string(), "{{}}");
    }

    fn witness_sets() -> impl Strategy<Value = BTreeSet<BTreeSet<u32>>> {
        proptest::collection::btree_set(proptest::collection::btree_set(0u32..5, 0..3), 0..4)
    }

    fn why_strategy() -> impl Strategy<Value = W> {
        witness_sets().prop_map(W::from_witnesses)
    }

    fn posbool_strategy() -> impl Strategy<Value = B> {
        witness_sets().prop_map(B::from_witnesses)
    }

    proptest! {
        #[test]
        fn why_semiring_laws(a in why_strategy(), b in why_strategy(), c in why_strategy()) {
            check_semiring_laws(&a, &b, &c);
        }

        #[test]
        fn posbool_semiring_laws(a in posbool_strategy(), b in posbool_strategy(), c in posbool_strategy()) {
            check_semiring_laws(&a, &b, &c);
        }

        /// PosBool is absorptive: a + a·b = a.
        #[test]
        fn posbool_absorption(a in posbool_strategy(), b in posbool_strategy()) {
            prop_assert_eq!(a.plus(&a.times(&b)), a);
        }

        /// Minimization is a semiring homomorphism Why → PosBool.
        #[test]
        fn minimize_is_homomorphic(a in why_strategy(), b in why_strategy()) {
            prop_assert_eq!(a.plus(&b).minimize(), a.minimize().plus(&b.minimize()));
            prop_assert_eq!(a.times(&b).minimize(), a.minimize().times(&b.minimize()));
        }

        /// Projection from N[X] commutes with operations.
        #[test]
        fn poly_why_projection_is_homomorphic(
            xs in proptest::collection::vec(0u32..4, 1..3),
            ys in proptest::collection::vec(0u32..4, 1..3),
        ) {
            use crate::polynomial::Polynomial;
            let p: Polynomial<u32> = xs.iter().fold(Polynomial::zero(), |acc, v| acc.plus(&Polynomial::var(*v)));
            let q: Polynomial<u32> = ys.iter().fold(Polynomial::zero(), |acc, v| acc.plus(&Polynomial::var(*v)));
            prop_assert_eq!(p.times(&q).why(), p.why().times(&q.why()));
            prop_assert_eq!(p.plus(&q).why(), p.why().plus(&q.why()));
        }
    }
}
