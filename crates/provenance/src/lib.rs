//! # orchestra-provenance
//!
//! Semiring provenance for the Orchestra CDSS, after Green, Karvounarakis &
//! Tannen, *Provenance Semirings* (PODS 2007) — reference \[6\] of the SIGMOD
//! 2007 Orchestra demonstration paper.
//!
//! Orchestra's update exchange annotates every tuple it derives through a
//! schema mapping with a **provenance polynomial** in N\[X\]: variables are
//! base-tuple tokens, multiplication records joint use in a join, addition
//! records alternative derivations, and coefficients/exponents count
//! multiplicities. N\[X\] is the *most general* annotation: any evaluation in
//! a commutative semiring factors through it (the fundamental property this
//! crate tests as `eval_commutes_with_plus/times`).
//!
//! The CDSS needs this generality for two reasons the paper calls out:
//!
//! 1. **Trust**: a peer's trust conditions map each base token to
//!    `true`/`false` (or to a cost); evaluating the polynomial under the
//!    [`Boolean`] (or [`Tropical`])
//!    semiring decides whether a translated update is trusted — without
//!    re-running the mappings.
//! 2. **Incremental maintenance**: when base tuples are deleted, evaluating
//!    each derived tuple's polynomial with the deleted tokens set to 0
//!    decides derivability — the provenance-based deletion propagation that
//!    `orchestra-datalog` benchmarks against DRed.
//!
//! Besides N\[X\] ([`Polynomial`]) the crate ships the coarser models of the
//! provenance hierarchy — `B[X]` (drop coefficients), `Trio(X)` (drop
//! exponents), [`Why`] (witness sets), and [`lineage`](Polynomial::lineage)
//! — together with the concrete semirings used by the experiments.

pub mod monomial;
pub mod polynomial;
pub mod semiring;
pub mod why;

pub use monomial::Monomial;
pub use polynomial::Polynomial;
pub use semiring::{Boolean, Counting, Fuzzy, Security, Semiring, Tropical};
pub use why::{PosBool, Why};
