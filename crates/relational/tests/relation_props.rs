//! Property tests for keyed relation storage: a `Relation` behaves like a
//! model map from key projection to tuple, under any operation sequence.

use orchestra_relational::{tuple, Relation, RelationSchema, Tuple, ValueType};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Upsert(i64, i64),
    DeleteExact(i64, i64),
    DeleteByKey(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..8, 0i64..4).prop_map(|(k, v)| Op::Insert(k, v)),
        (0i64..8, 0i64..4).prop_map(|(k, v)| Op::Upsert(k, v)),
        (0i64..8, 0i64..4).prop_map(|(k, v)| Op::DeleteExact(k, v)),
        (0i64..8).prop_map(Op::DeleteByKey),
    ]
}

fn keyed_relation() -> Relation {
    Relation::new(
        RelationSchema::from_parts_keyed(
            "R",
            &[("k", ValueType::Int), ("v", ValueType::Int)],
            &["k"],
        )
        .unwrap(),
    )
}

proptest! {
    /// Relation ≡ BTreeMap<key, value> under arbitrary operation sequences.
    #[test]
    fn relation_matches_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut rel = keyed_relation();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let r = rel.insert(tuple![k, v]);
                    match model.get(&k) {
                        None => {
                            prop_assert!(r.unwrap());
                            model.insert(k, v);
                        }
                        Some(&mv) if mv == v => prop_assert!(!r.unwrap(), "idempotent"),
                        Some(_) => prop_assert!(r.is_err(), "key conflict"),
                    }
                }
                Op::Upsert(k, v) => {
                    let old = rel.upsert(tuple![k, v]).unwrap();
                    let model_old = model.insert(k, v);
                    prop_assert_eq!(old.map(|t| t[1].as_int().unwrap()), model_old);
                }
                Op::DeleteExact(k, v) => {
                    let did = rel.delete(&tuple![k, v]);
                    let model_did = model.get(&k) == Some(&v);
                    prop_assert_eq!(did, model_did);
                    if model_did {
                        model.remove(&k);
                    }
                }
                Op::DeleteByKey(k) => {
                    let old = rel.delete_by_key(&tuple![k]);
                    let model_old = model.remove(&k);
                    prop_assert_eq!(old.map(|t| t[1].as_int().unwrap()), model_old);
                }
            }
            // Invariants after every step.
            prop_assert_eq!(rel.len(), model.len());
            for (k, v) in &model {
                prop_assert!(rel.contains(&tuple![*k, *v]));
                prop_assert_eq!(rel.get_by_key(&tuple![*k]), Some(&tuple![*k, *v]));
            }
        }
        // Iteration is key-ordered and matches the model exactly.
        let got: Vec<Tuple> = rel.iter().cloned().collect();
        let want: Vec<Tuple> = model.iter().map(|(k, v)| tuple![*k, *v]).collect();
        prop_assert_eq!(got, want);
    }

    /// Index lookups agree with scans after arbitrary mutations.
    #[test]
    fn index_agrees_with_scan(ops in proptest::collection::vec(op_strategy(), 0..40), probe in 0i64..4) {
        use orchestra_relational::Value;
        let mut rel = keyed_relation();
        for op in ops {
            match op {
                Op::Insert(k, v) => { let _ = rel.insert(tuple![k, v]); }
                Op::Upsert(k, v) => { let _ = rel.upsert(tuple![k, v]); }
                Op::DeleteExact(k, v) => { let _ = rel.delete(&tuple![k, v]); }
                Op::DeleteByKey(k) => { let _ = rel.delete_by_key(&tuple![k]); }
            }
        }
        let via_scan: Vec<Tuple> = rel.scan_eq(1, &Value::Int(probe)).cloned().collect();
        let mut via_index = rel.lookup(&[1], &[Value::Int(probe)]).to_vec();
        via_index.sort();
        let mut via_scan = via_scan;
        via_scan.sort();
        prop_assert_eq!(via_index, via_scan);
    }
}
