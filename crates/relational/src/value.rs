//! The value domain: constants plus labeled nulls (Skolem values).
//!
//! Update exchange over tuple-generating dependencies (tgds) must *invent*
//! values for existentially quantified head variables. Orchestra's update
//! exchange formulation (Green et al., "Update exchange with mappings and
//! provenance") uses Skolem functions of the exported body variables, so the
//! invented value is deterministic in its inputs: translating the same source
//! tuple twice yields the same labeled null, which is what makes incremental
//! maintenance and deletion propagation well-defined. [`SkolemValue`] encodes
//! these labeled nulls as a function symbol applied to argument values.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a column in a relation schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float with a total order (`f64::total_cmp`).
    Double,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Bool => write!(f, "Bool"),
            ValueType::Int => write!(f, "Int"),
            ValueType::Double => write!(f, "Double"),
            ValueType::Str => write!(f, "Str"),
        }
    }
}

/// A labeled null: a Skolem function symbol applied to argument values.
///
/// Two labeled nulls are equal iff they use the same function symbol and the
/// same arguments — the defining property that makes tgd chase steps
/// idempotent and update translation deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkolemValue {
    /// The Skolem function symbol. By convention the mapping compiler uses
    /// `"f_<mapping>_<var>"` so provenance displays read naturally.
    pub function: Arc<str>,
    /// Argument values (the exported body variables of the tgd).
    pub args: Vec<Value>,
}

impl SkolemValue {
    /// Create a labeled null `function(args...)`.
    pub fn new(function: impl Into<Arc<str>>, args: Vec<Value>) -> Self {
        SkolemValue {
            function: function.into(),
            args,
        }
    }
}

impl fmt::Display for SkolemValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.function)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A single value: a typed constant, SQL-style `NULL`, or a labeled null.
///
/// `Value` implements a *total* order (floats compare with `total_cmp`,
/// variants compare by discriminant) so it can key `BTreeMap`s, giving the
/// whole system deterministic iteration — important for reproducible
/// experiment output.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style missing value. Equal to itself (unlike SQL) so tuple
    /// identity stays a plain equivalence.
    Null,
    /// Boolean constant.
    Bool(bool),
    /// Integer constant.
    Int(i64),
    /// Float constant (total order via `total_cmp`; `NaN`s with the same bit
    /// pattern are equal).
    Double(f64),
    /// String constant. `Arc<str>` keeps tuple clones cheap.
    Str(Arc<str>),
    /// A labeled null invented by a tgd chase step.
    Skolem(Arc<SkolemValue>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Build a labeled null `function(args...)`.
    pub fn skolem(function: impl Into<Arc<str>>, args: Vec<Value>) -> Self {
        Value::Skolem(Arc::new(SkolemValue::new(function, args)))
    }

    /// The runtime type of this value, or `None` for `Null` / labeled nulls
    /// (which are polymorphic: a labeled null inhabits any column type).
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null | Value::Skolem(_) => None,
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Int(_) => Some(ValueType::Int),
            Value::Double(_) => Some(ValueType::Double),
            Value::Str(_) => Some(ValueType::Str),
        }
    }

    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> Cow<'static, str> {
        match self {
            Value::Null => Cow::Borrowed("Null"),
            Value::Bool(_) => Cow::Borrowed("Bool"),
            Value::Int(_) => Cow::Borrowed("Int"),
            Value::Double(_) => Cow::Borrowed("Double"),
            Value::Str(_) => Cow::Borrowed("Str"),
            Value::Skolem(_) => Cow::Borrowed("Skolem"),
        }
    }

    /// True iff this is a labeled null (Skolem value).
    pub fn is_labeled_null(&self) -> bool {
        matches!(self, Value::Skolem(_))
    }

    /// True iff the value is compatible with the given column type. `Null`
    /// and labeled nulls are compatible with every type.
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        match self.value_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    /// Extract an `i64` if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a `&str` if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a `bool` if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract an `f64` if this is a `Double`.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Discriminant rank used by the total order.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 3,
            Value::Str(_) => 4,
            Value::Skolem(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Skolem(a), Value::Skolem(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Double(d) => d.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Skolem(sk) => sk.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Skolem(a), Value::Skolem(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Skolem(sk) => write!(f, "{sk}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_and_hash_agree() {
        let a = Value::str("x");
        let b = Value::str("x");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn null_equals_itself() {
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn nan_is_self_equal_bitwise() {
        let a = Value::Double(f64::NAN);
        let b = Value::Double(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn total_order_across_variants_is_consistent() {
        let mut vals = [
            Value::str("b"),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Double(1.5),
            Value::skolem("f", vec![Value::Int(1)]),
            Value::Int(1),
            Value::str("a"),
        ];
        vals.sort();
        // Null < Bool < Int < Double < Str < Skolem; within Int and Str sorted.
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(1));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::Double(1.5));
        assert_eq!(vals[5], Value::str("a"));
        assert_eq!(vals[6], Value::str("b"));
        assert!(vals[7].is_labeled_null());
    }

    #[test]
    fn skolem_equality_is_structural() {
        let a = Value::skolem("f_m1_oid", vec![Value::str("HIV"), Value::Int(3)]);
        let b = Value::skolem("f_m1_oid", vec![Value::str("HIV"), Value::Int(3)]);
        let c = Value::skolem("f_m1_oid", vec![Value::str("HIV"), Value::Int(4)]);
        let d = Value::skolem("f_m2_oid", vec![Value::str("HIV"), Value::Int(3)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nested_skolem_display() {
        let inner = Value::skolem("g", vec![Value::Int(7)]);
        let v = Value::skolem("f", vec![inner, Value::str("x")]);
        assert_eq!(v.to_string(), "f(g(7),'x')");
    }

    #[test]
    fn conforms_to_rules() {
        assert!(Value::Int(1).conforms_to(ValueType::Int));
        assert!(!Value::Int(1).conforms_to(ValueType::Str));
        assert!(Value::Null.conforms_to(ValueType::Str));
        assert!(Value::skolem("f", vec![]).conforms_to(ValueType::Int));
        assert!(Value::skolem("f", vec![]).conforms_to(ValueType::Str));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Double(2.5).as_double(), Some(2.5));
        assert_eq!(Value::Int(5).as_str(), None);
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(2.0), Value::Double(2.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("ab").to_string(), "'ab'");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn value_type_of_labeled_null_is_none() {
        assert_eq!(Value::skolem("f", vec![]).value_type(), None);
        assert_eq!(Value::Null.value_type(), None);
        assert_eq!(Value::Int(0).value_type(), Some(ValueType::Int));
    }
}
