//! Database instances and snapshot diffing.
//!
//! Each CDSS peer owns an [`Instance`] over its local schema. Publication
//! works by diffing the live instance against the last published snapshot
//! ([`Instance::diff`]), yielding the tuple-level insertions and deletions
//! that become the peer's published transactions.

use crate::error::RelationalError;
use crate::relation::Relation;
use crate::schema::DatabaseSchema;
use crate::tuple::Tuple;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A tuple-level difference between two instances of the same schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceDelta {
    /// Tuples present in `new` but not `old`, per relation (name order).
    pub insertions: BTreeMap<Arc<str>, Vec<Tuple>>,
    /// Tuples present in `old` but not `new`, per relation (name order).
    pub deletions: BTreeMap<Arc<str>, Vec<Tuple>>,
}

impl InstanceDelta {
    /// True iff the delta contains no changes.
    pub fn is_empty(&self) -> bool {
        self.insertions.values().all(Vec::is_empty) && self.deletions.values().all(Vec::is_empty)
    }

    /// Total number of changed tuples.
    pub fn len(&self) -> usize {
        self.insertions.values().map(Vec::len).sum::<usize>()
            + self.deletions.values().map(Vec::len).sum::<usize>()
    }
}

/// A database instance: one [`Relation`] per relation in a [`DatabaseSchema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    schema: DatabaseSchema,
    relations: BTreeMap<Arc<str>, Relation>,
}

impl Instance {
    /// Create an empty instance of a schema.
    pub fn new(schema: DatabaseSchema) -> Self {
        let relations = schema
            .relations()
            .map(|r| (r.name_arc(), Relation::new(r.clone())))
            .collect();
        Instance { schema, relations }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// Borrow a relation.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// Mutably borrow a relation.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// Insert a tuple into a relation (strict key semantics).
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        self.relation_mut(relation)?.insert(tuple)
    }

    /// Insert-or-replace by key.
    pub fn upsert(&mut self, relation: &str, tuple: Tuple) -> Result<Option<Tuple>> {
        self.relation_mut(relation)?.upsert(tuple)
    }

    /// Delete an exact tuple; `Ok(true)` if it was present.
    pub fn delete(&mut self, relation: &str, tuple: &Tuple) -> Result<bool> {
        Ok(self.relation_mut(relation)?.delete(tuple))
    }

    /// Total number of tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Iterate relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Remove all tuples from all relations (schema retained).
    pub fn clear(&mut self) {
        for r in self.relations.values_mut() {
            r.clear();
        }
    }

    /// Compute the tuple-level delta taking `self` (old) to `new`.
    ///
    /// Both instances must share a schema; modified tuples (same key,
    /// different non-key values) appear as a deletion plus an insertion —
    /// the update layer re-pairs them into `modify` operations by key.
    pub fn diff(&self, new: &Instance) -> Result<InstanceDelta> {
        if self.schema != new.schema {
            return Err(RelationalError::InvalidSchema(format!(
                "diff requires identical schemas (`{}` vs `{}`)",
                self.schema.name(),
                new.schema.name()
            )));
        }
        let mut insertions: BTreeMap<Arc<str>, Vec<Tuple>> = BTreeMap::new();
        let mut deletions: BTreeMap<Arc<str>, Vec<Tuple>> = BTreeMap::new();
        for (name, old_rel) in &self.relations {
            let new_rel = &new.relations[name];
            let ins: Vec<Tuple> = new_rel
                .iter()
                .filter(|t| !old_rel.contains(t))
                .cloned()
                .collect();
            let del: Vec<Tuple> = old_rel
                .iter()
                .filter(|t| !new_rel.contains(t))
                .cloned()
                .collect();
            if !ins.is_empty() {
                insertions.insert(Arc::clone(name), ins);
            }
            if !del.is_empty() {
                deletions.insert(Arc::clone(name), del);
            }
        }
        Ok(InstanceDelta {
            insertions,
            deletions,
        })
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instance of {} {{", self.schema.name())?;
        for (name, rel) in &self.relations {
            writeln!(f, "  {name} ({} tuples):", rel.len())?;
            for t in rel.iter() {
                writeln!(f, "    {t}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use crate::value::ValueType;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new("T")
            .with_relation(
                RelationSchema::from_parts("R", &[("a", ValueType::Int), ("b", ValueType::Int)])
                    .unwrap(),
            )
            .unwrap()
            .with_relation(
                RelationSchema::from_parts_keyed(
                    "S",
                    &[("k", ValueType::Int), ("v", ValueType::Str)],
                    &["k"],
                )
                .unwrap(),
            )
            .unwrap()
    }

    #[test]
    fn empty_instance_has_all_relations() {
        let inst = Instance::new(schema());
        assert!(inst.relation("R").unwrap().is_empty());
        assert!(inst.relation("S").unwrap().is_empty());
        assert!(inst.relation("X").is_err());
        assert_eq!(inst.total_tuples(), 0);
    }

    #[test]
    fn insert_delete_roundtrip() {
        let mut inst = Instance::new(schema());
        assert!(inst.insert("R", tuple![1, 2]).unwrap());
        assert_eq!(inst.total_tuples(), 1);
        assert!(inst.delete("R", &tuple![1, 2]).unwrap());
        assert_eq!(inst.total_tuples(), 0);
    }

    #[test]
    fn upsert_by_key() {
        let mut inst = Instance::new(schema());
        inst.insert("S", tuple![1, "a"]).unwrap();
        let old = inst.upsert("S", tuple![1, "b"]).unwrap();
        assert_eq!(old, Some(tuple![1, "a"]));
        assert_eq!(
            inst.relation("S").unwrap().get_by_key(&tuple![1]),
            Some(&tuple![1, "b"])
        );
    }

    #[test]
    fn diff_detects_insertions_and_deletions() {
        let mut old = Instance::new(schema());
        old.insert("R", tuple![1, 1]).unwrap();
        old.insert("R", tuple![2, 2]).unwrap();
        let mut new = old.clone();
        new.delete("R", &tuple![1, 1]).unwrap();
        new.insert("R", tuple![3, 3]).unwrap();
        new.insert("S", tuple![1, "x"]).unwrap();

        let delta = old.diff(&new).unwrap();
        assert_eq!(delta.insertions["R"], vec![tuple![3, 3]]);
        assert_eq!(delta.insertions["S"], vec![tuple![1, "x"]]);
        assert_eq!(delta.deletions["R"], vec![tuple![1, 1]]);
        assert!(!delta.deletions.contains_key("S"));
        assert_eq!(delta.len(), 3);
        assert!(!delta.is_empty());
    }

    #[test]
    fn diff_of_identical_instances_is_empty() {
        let mut a = Instance::new(schema());
        a.insert("R", tuple![1, 1]).unwrap();
        let delta = a.diff(&a.clone()).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.len(), 0);
    }

    #[test]
    fn diff_sees_modify_as_delete_plus_insert() {
        let mut old = Instance::new(schema());
        old.insert("S", tuple![1, "a"]).unwrap();
        let mut new = Instance::new(schema());
        new.insert("S", tuple![1, "b"]).unwrap();
        let delta = old.diff(&new).unwrap();
        assert_eq!(delta.deletions["S"], vec![tuple![1, "a"]]);
        assert_eq!(delta.insertions["S"], vec![tuple![1, "b"]]);
    }

    #[test]
    fn diff_requires_same_schema() {
        let a = Instance::new(schema());
        let b = Instance::new(DatabaseSchema::new("Other"));
        assert!(a.diff(&b).is_err());
    }

    #[test]
    fn clear_retains_schema() {
        let mut inst = Instance::new(schema());
        inst.insert("R", tuple![1, 1]).unwrap();
        inst.clear();
        assert_eq!(inst.total_tuples(), 0);
        assert!(inst.relation("R").is_ok());
    }

    #[test]
    fn display_renders_tuples() {
        let mut inst = Instance::new(schema());
        inst.insert("R", tuple![1, 2]).unwrap();
        let s = inst.to_string();
        assert!(s.contains("instance of T"));
        assert!(s.contains("(1, 2)"));
    }
}
