//! Keyed relation storage.

use crate::error::RelationalError;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::{BTreeMap, HashMap};

/// One stored relation: a set of tuples keyed by the schema's key columns.
///
/// * Tuples are stored in a `BTreeMap` keyed by the key projection, giving
///   deterministic iteration order everywhere (tests, examples, and
///   experiment output never depend on hash seeds).
/// * Secondary hash indexes on arbitrary column subsets can be built for
///   joins; they are invalidated on mutation and rebuilt lazily.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    tuples: BTreeMap<Tuple, Tuple>,
    /// Lazily built secondary indexes: column set → (key values → matching tuples).
    indexes: HashMap<Vec<usize>, HashMap<Vec<Value>, Vec<Tuple>>>,
}

impl Relation {
    /// Create an empty relation for the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: BTreeMap::new(),
            indexes: HashMap::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over tuples in key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.values()
    }

    /// True iff the exact tuple is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples
            .get(&self.schema.key_of(tuple))
            .is_some_and(|t| t == tuple)
    }

    /// True iff some tuple with the given key projection is present.
    pub fn contains_key(&self, key: &Tuple) -> bool {
        self.tuples.contains_key(key)
    }

    /// The tuple with the given key projection, if any.
    pub fn get_by_key(&self, key: &Tuple) -> Option<&Tuple> {
        self.tuples.get(key)
    }

    /// Insert a tuple.
    ///
    /// * Errors with [`RelationalError::KeyConflict`] if a **different**
    ///   tuple with the same key exists.
    /// * Returns `Ok(false)` if the identical tuple was already present
    ///   (idempotent re-insert), `Ok(true)` if newly inserted.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.schema.validate(&tuple)?;
        let key = self.schema.key_of(&tuple);
        match self.tuples.get(&key) {
            Some(existing) if *existing == tuple => Ok(false),
            Some(_) => Err(RelationalError::KeyConflict {
                relation: self.schema.name().to_string(),
                key: key.to_string(),
            }),
            None => {
                self.tuples.insert(key, tuple);
                self.indexes.clear();
                Ok(true)
            }
        }
    }

    /// Insert, replacing any existing tuple with the same key. Returns the
    /// replaced tuple, if any.
    pub fn upsert(&mut self, tuple: Tuple) -> Result<Option<Tuple>> {
        self.schema.validate(&tuple)?;
        let key = self.schema.key_of(&tuple);
        let old = self.tuples.insert(key, tuple);
        self.indexes.clear();
        Ok(old)
    }

    /// Delete the exact tuple. Returns `true` if it was present. A tuple
    /// with the same key but different non-key values is **not** deleted
    /// (the caller is operating on a stale version — surfacing that matters
    /// for update-translation correctness).
    pub fn delete(&mut self, tuple: &Tuple) -> bool {
        let key = self.schema.key_of(tuple);
        if self.tuples.get(&key).is_some_and(|t| t == tuple) {
            self.tuples.remove(&key);
            self.indexes.clear();
            true
        } else {
            false
        }
    }

    /// Delete whatever tuple has the given key projection. Returns it.
    pub fn delete_by_key(&mut self, key: &Tuple) -> Option<Tuple> {
        let old = self.tuples.remove(key);
        if old.is_some() {
            self.indexes.clear();
        }
        old
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.indexes.clear();
    }

    /// Look up tuples matching `values` on the given columns, building (and
    /// caching) a secondary hash index on first use. Steady-state probes
    /// allocate nothing: the column set and the probe values are borrowed
    /// slices keyed through `Borrow`.
    pub fn lookup(&mut self, cols: &[usize], values: &[Value]) -> &[Tuple] {
        if !self.indexes.contains_key(cols) {
            let mut idx: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
            for t in self.tuples.values() {
                idx.entry(t.key_values(cols)).or_default().push(t.clone());
            }
            self.indexes.insert(cols.to_vec(), idx);
        }
        self.indexes[cols]
            .get(values)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Scan with a filter on one column (no index; linear).
    pub fn scan_eq<'a>(
        &'a self,
        col: usize,
        value: &'a Value,
    ) -> impl Iterator<Item = &'a Tuple> + 'a {
        self.tuples
            .values()
            .filter(move |t| t.get(col) == Some(value))
    }

    /// All tuples, cloned, in key order.
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.tuples.values().cloned().collect()
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use crate::value::ValueType;

    fn keyed() -> Relation {
        Relation::new(
            RelationSchema::from_parts_keyed(
                "S",
                &[
                    ("oid", ValueType::Int),
                    ("pid", ValueType::Int),
                    ("seq", ValueType::Str),
                ],
                &["oid", "pid"],
            )
            .unwrap(),
        )
    }

    fn setsem() -> Relation {
        Relation::new(
            RelationSchema::from_parts("R", &[("a", ValueType::Int), ("b", ValueType::Int)])
                .unwrap(),
        )
    }

    #[test]
    fn insert_and_contains() {
        let mut r = keyed();
        assert!(r.insert(tuple![1, 2, "AAG"]).unwrap());
        assert!(r.contains(&tuple![1, 2, "AAG"]));
        assert!(!r.contains(&tuple![1, 2, "CCG"]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn reinsert_identical_is_idempotent() {
        let mut r = keyed();
        assert!(r.insert(tuple![1, 2, "AAG"]).unwrap());
        assert!(!r.insert(tuple![1, 2, "AAG"]).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn key_conflict_on_different_nonkey() {
        let mut r = keyed();
        r.insert(tuple![1, 2, "AAG"]).unwrap();
        assert!(matches!(
            r.insert(tuple![1, 2, "CCG"]),
            Err(RelationalError::KeyConflict { .. })
        ));
    }

    #[test]
    fn upsert_replaces() {
        let mut r = keyed();
        r.insert(tuple![1, 2, "AAG"]).unwrap();
        let old = r.upsert(tuple![1, 2, "CCG"]).unwrap();
        assert_eq!(old, Some(tuple![1, 2, "AAG"]));
        assert!(r.contains(&tuple![1, 2, "CCG"]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn delete_exact_only() {
        let mut r = keyed();
        r.insert(tuple![1, 2, "AAG"]).unwrap();
        assert!(!r.delete(&tuple![1, 2, "CCG"]), "stale version not deleted");
        assert!(r.delete(&tuple![1, 2, "AAG"]));
        assert!(r.is_empty());
    }

    #[test]
    fn delete_by_key() {
        let mut r = keyed();
        r.insert(tuple![1, 2, "AAG"]).unwrap();
        assert_eq!(r.delete_by_key(&tuple![1, 2]), Some(tuple![1, 2, "AAG"]));
        assert_eq!(r.delete_by_key(&tuple![1, 2]), None);
    }

    #[test]
    fn get_by_key() {
        let mut r = keyed();
        r.insert(tuple![7, 8, "GGC"]).unwrap();
        assert_eq!(r.get_by_key(&tuple![7, 8]), Some(&tuple![7, 8, "GGC"]));
        assert_eq!(r.get_by_key(&tuple![7, 9]), None);
        assert!(r.contains_key(&tuple![7, 8]));
    }

    #[test]
    fn set_semantics_whole_tuple_key() {
        let mut r = setsem();
        r.insert(tuple![1, 2]).unwrap();
        // Same key columns but whole tuple differs => different key => both live.
        r.insert(tuple![1, 3]).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut r = setsem();
        r.insert(tuple![3, 0]).unwrap();
        r.insert(tuple![1, 0]).unwrap();
        r.insert(tuple![2, 0]).unwrap();
        let firsts: Vec<i64> = r.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(firsts, vec![1, 2, 3]);
    }

    #[test]
    fn lookup_uses_index_and_sees_mutations() {
        let mut r = setsem();
        r.insert(tuple![1, 10]).unwrap();
        r.insert(tuple![1, 20]).unwrap();
        r.insert(tuple![2, 30]).unwrap();
        let hits = r.lookup(&[0], &[Value::Int(1)]).to_vec();
        assert_eq!(hits.len(), 2);
        // Mutation invalidates the index.
        r.insert(tuple![1, 40]).unwrap();
        let hits = r.lookup(&[0], &[Value::Int(1)]);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn lookup_missing_key_is_empty() {
        let mut r = setsem();
        r.insert(tuple![1, 10]).unwrap();
        assert!(r.lookup(&[0], &[Value::Int(9)]).is_empty());
    }

    #[test]
    fn scan_eq_filters() {
        let mut r = setsem();
        r.insert(tuple![1, 10]).unwrap();
        r.insert(tuple![2, 10]).unwrap();
        r.insert(tuple![2, 20]).unwrap();
        assert_eq!(r.scan_eq(0, &Value::Int(2)).count(), 2);
        assert_eq!(r.scan_eq(1, &Value::Int(10)).count(), 2);
    }

    #[test]
    fn insert_validates_schema() {
        let mut r = keyed();
        assert!(r.insert(tuple![1, 2]).is_err(), "arity");
        assert!(r.insert(tuple!["x", 2, "s"]).is_err(), "type");
    }

    #[test]
    fn clear_empties() {
        let mut r = setsem();
        r.insert(tuple![1, 1]).unwrap();
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn relation_equality_ignores_index_state() {
        let mut a = setsem();
        let mut b = setsem();
        a.insert(tuple![1, 2]).unwrap();
        b.insert(tuple![1, 2]).unwrap();
        // Build an index on `a` only.
        a.lookup(&[0], &[Value::Int(1)]);
        assert_eq!(a, b);
    }
}
