//! Hash-partitioned relation storage for the parallel evaluation engine.
//!
//! A [`ShardedRel`] splits one relation's tuples into a **fixed** number
//! of shards by a deterministic hash of the relation's *partition
//! columns* (its dominant join/index key, chosen by the engine from the
//! compiled join plans). Each shard owns
//!
//! * a **sequence-ordered** tuple table (`Vec` + position map): scan
//!   order is a pure function of the mutation sequence (appends go to
//!   the back; a removal swaps the last tuple into the hole), so two
//!   instances fed the same mutations iterate identically — unlike
//!   `HashMap` iteration with its per-instance seed — which is what
//!   lets an N-thread evaluation replay byte-identically to a
//!   single-threaded one;
//! * its own secondary **probe tables** (fixed-width `[Sym]` key →
//!   posting list), maintained incrementally through inserts/removals
//!   exactly like the pre-sharding engine index.
//!
//! A probe whose bound columns **cover** the partition columns touches a
//! single shard (the common case — the partition columns *are* the most
//! probed key); any other probe fans out across shards in shard order.
//! Shard routing uses a seedless FNV-1a over the `u32` symbols, so two
//! engines fed the same interning sequence place every tuple identically.
//!
//! Everything a shard needs to absorb a write — the position map, the
//! sequence vector, and its index postings — lives **inside** the shard;
//! the relation level only keeps the registry of which column sets are
//! indexed. That split is what lets [`ShardedRel::shard_writers`] hand
//! out one disjoint `&mut` view per shard, so the engine's merge phase
//! can drain per-shard sinks concurrently without a lock.

use crate::intern::{Sym, SymTuple};
use std::collections::HashMap;

/// Default shard count for partitioned relations.
pub const DEFAULT_SHARDS: usize = 16;

/// One secondary index: fixed-width symbol key → posting list.
type SymIndex = HashMap<Box<[Sym]>, Vec<SymTuple>>;

/// Deterministic, seedless FNV-1a over symbol words.
#[inline]
fn fnv1a(syms: impl Iterator<Item = Sym>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in syms {
        h = (h ^ u64::from(s.0)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[derive(Debug, Clone)]
struct Shard<P> {
    /// Tuple → index into `order`.
    pos: HashMap<SymTuple, u32>,
    /// Live tuples with their payloads, in sequence order: appends at
    /// the back, removals swap the last tuple into the hole — the order
    /// is a pure function of the mutation sequence.
    order: Vec<(SymTuple, P)>,
    /// This shard's slice of every secondary index, parallel to the
    /// relation-level `index_cols` registry. Emptied buckets are dropped
    /// eagerly so churny delete/reinsert workloads cannot grow an index
    /// without bound.
    indexes: Vec<SymIndex>,
}

impl<P: Copy> Shard<P> {
    fn empty() -> Shard<P> {
        Shard {
            pos: HashMap::new(),
            order: Vec::new(),
            indexes: Vec::new(),
        }
    }

    /// The not-present arm of the inserts: index maintenance + append.
    fn insert_fresh(&mut self, index_cols: &[Box<[usize]>], t: SymTuple, payload: P) {
        for (slot, cols) in index_cols.iter().enumerate() {
            self.indexes[slot]
                .entry(key_of(&t, cols))
                .or_default()
                .push(t.clone());
        }
        // analyze: allow(panic) -- u32 per-shard capacity (4B tuples) is an accepted engine limit
        let p = u32::try_from(self.order.len()).expect("shard overflow");
        self.pos.insert(t.clone(), p);
        self.order.push((t, payload));
    }

    fn insert_if_absent(&mut self, index_cols: &[Box<[usize]>], t: SymTuple, payload: P) -> bool {
        if self.pos.contains_key(&t) {
            return false;
        }
        self.insert_fresh(index_cols, t, payload);
        true
    }

    fn remove(&mut self, index_cols: &[Box<[usize]>], t: &SymTuple) -> Option<P> {
        let p = self.pos.remove(t)? as usize;
        let (_, payload) = self.order.swap_remove(p);
        if let Some((moved, _)) = self.order.get(p) {
            // analyze: allow(panic) -- `order` and `pos` are mutated in lockstep; every stored tuple is indexed
            *self.pos.get_mut(moved).expect("moved tuple indexed") = p as u32;
        }
        for (slot, cols) in index_cols.iter().enumerate() {
            let idx = &mut self.indexes[slot];
            let key = key_of(t, cols);
            if let Some(list) = idx.get_mut(&key) {
                if let Some(i) = list.iter().position(|x| x == t) {
                    list.swap_remove(i);
                }
                if list.is_empty() {
                    idx.remove(&key);
                }
            }
        }
        Some(payload)
    }
}

fn key_of(t: &SymTuple, cols: &[usize]) -> Box<[Sym]> {
    cols.iter().map(|&c| t[c]).collect()
}

/// One relation, hash-partitioned into a fixed number of shards (see
/// module docs). `P` is the per-tuple payload (the engine stores the
/// tuple's provenance node id).
#[derive(Debug, Clone)]
pub struct ShardedRel<P> {
    /// Partition columns; empty ⇒ partition on the whole tuple.
    part_cols: Box<[usize]>,
    /// Registry of indexed column sets, in `ensure_index` order; each
    /// shard's `indexes` vector is parallel to this. A fan-out probe
    /// hashes `cols` once against `index_of`, not once per shard.
    index_cols: Vec<Box<[usize]>>,
    index_of: HashMap<Box<[usize]>, usize>,
    shards: Vec<Shard<P>>,
}

/// A disjoint mutable view of **one shard** of a relation, for the
/// engine's partitioned merge: the caller has already routed the tuple
/// (bucket `s` only ever receives tuples whose [`ShardedRel::shard_of`]
/// is `s`), so writes go straight to the shard without re-hashing the
/// partition columns and without touching any other shard.
#[derive(Debug)]
pub struct RelShardWriter<'a, P> {
    index_cols: &'a [Box<[usize]>],
    shard: &'a mut Shard<P>,
}

impl<P: Copy> RelShardWriter<'_, P> {
    /// Insert unless present (the present tuple keeps its payload).
    /// Returns `true` when the tuple was newly inserted. The tuple MUST
    /// route to this writer's shard.
    #[inline]
    pub fn insert_if_absent(&mut self, t: SymTuple, payload: P) -> bool {
        self.shard.insert_if_absent(self.index_cols, t, payload)
    }

    /// The payload stored with a tuple, if present in this shard.
    #[inline]
    pub fn get(&self, t: &SymTuple) -> Option<P> {
        let s = &*self.shard;
        s.pos.get(t).map(|&p| s.order[p as usize].1)
    }
}

impl<P: Copy> ShardedRel<P> {
    /// An empty relation with `shards` partitions, hash-split on
    /// `part_cols` (empty ⇒ the whole tuple).
    pub fn new(shards: usize, part_cols: Vec<usize>) -> ShardedRel<P> {
        let shards = shards.max(1);
        ShardedRel {
            part_cols: part_cols.into(),
            index_cols: Vec::new(),
            index_of: HashMap::new(),
            shards: (0..shards).map(|_| Shard::empty()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partition columns (empty ⇒ whole tuple).
    pub fn part_cols(&self) -> &[usize] {
        &self.part_cols
    }

    /// The shard a tuple belongs to.
    #[inline]
    pub fn shard_of(&self, t: &SymTuple) -> usize {
        let h = if self.part_cols.is_empty() {
            fnv1a(t.syms().iter().copied())
        } else {
            fnv1a(self.part_cols.iter().map(|&c| t[c]))
        };
        (h as usize) % self.shards.len()
    }

    /// The shard that owns any tuple whose partition columns carry the
    /// symbols `key[positions[i]]` — `positions[i]` is the offset of the
    /// i-th partition column inside a probe key. Only meaningful when the
    /// probe covers the partition columns (the caller establishes that).
    #[inline]
    pub fn shard_for_key(&self, positions: &[usize], key: &[Sym]) -> usize {
        let h = fnv1a(positions.iter().map(|&p| key[p]));
        (h as usize) % self.shards.len()
    }

    /// Total live tuples across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.order.len()).sum()
    }

    /// True iff no shard holds a tuple.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.order.is_empty())
    }

    /// True iff the tuple is present.
    pub fn contains(&self, t: &SymTuple) -> bool {
        self.shards[self.shard_of(t)].pos.contains_key(t)
    }

    /// The payload stored with a tuple, if present.
    pub fn get(&self, t: &SymTuple) -> Option<P> {
        let s = &self.shards[self.shard_of(t)];
        s.pos.get(t).map(|&p| s.order[p as usize].1)
    }

    /// Like [`get`](ShardedRel::get) for a caller that already routed the
    /// tuple (`shard` MUST be [`shard_of`](ShardedRel::shard_of) of `t`):
    /// skips re-hashing the partition columns.
    pub fn get_in(&self, shard: usize, t: &SymTuple) -> Option<P> {
        let s = &self.shards[shard];
        s.pos.get(t).map(|&p| s.order[p as usize].1)
    }

    /// Insert a tuple with its payload (idempotent: re-inserting updates
    /// the payload without duplicating index entries).
    pub fn insert(&mut self, t: SymTuple, payload: P) {
        let si = self.shard_of(&t);
        let shard = &mut self.shards[si];
        if let Some(&p) = shard.pos.get(&t) {
            shard.order[p as usize].1 = payload;
            return;
        }
        shard.insert_fresh(&self.index_cols, t, payload);
    }

    /// Insert unless present (the present tuple keeps its payload).
    /// Returns `true` when the tuple was newly inserted — one shard
    /// routing and one membership probe, where a `contains` + `insert`
    /// pair would pay both twice (the engine's merge-phase hot path).
    pub fn insert_if_absent(&mut self, t: SymTuple, payload: P) -> bool {
        let si = self.shard_of(&t);
        self.shards[si].insert_if_absent(&self.index_cols, t, payload)
    }

    /// Remove a tuple, returning its payload if it was present.
    pub fn remove(&mut self, t: &SymTuple) -> Option<P> {
        let si = self.shard_of(t);
        self.shards[si].remove(&self.index_cols, t)
    }

    /// Build the secondary index on `cols` (per shard) if missing.
    /// Returns `true` when the index was newly built.
    pub fn ensure_index(&mut self, cols: &[usize]) -> bool {
        if self.index_of.contains_key(cols) {
            return false;
        }
        let slot = self.index_cols.len();
        self.index_cols.push(Box::from(cols));
        self.index_of.insert(Box::from(cols), slot);
        for s in &mut self.shards {
            let mut idx = SymIndex::new();
            for (t, _) in &s.order {
                idx.entry(key_of(t, cols)).or_default().push(t.clone());
            }
            debug_assert_eq!(s.indexes.len(), slot);
            s.indexes.push(idx);
        }
        true
    }

    /// Probe one shard's index. Missing index or key ⇒ empty. The result
    /// borrows only the relation (`'s`), not the probe key, so callers can
    /// reuse their key buffer while iterating the posting list.
    #[inline]
    pub fn probe_shard<'s>(&'s self, shard: usize, cols: &[usize], key: &[Sym]) -> &'s [SymTuple] {
        self.index_of
            .get(cols)
            .and_then(|&slot| self.shards[shard].indexes[slot].get(key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Probe every shard's index in shard order, appending the non-empty
    /// posting lists to `out` (used when the probe's bound columns do not
    /// cover the partition columns, so no single shard can answer). The
    /// column set is hashed once; only the per-shard key lookups repeat.
    pub fn probe_slices_into<'s>(
        &'s self,
        cols: &[usize],
        key: &[Sym],
        out: &mut Vec<&'s [SymTuple]>,
    ) {
        let Some(&slot) = self.index_of.get(cols) else {
            return;
        };
        for s in &self.shards {
            if let Some(list) = s.indexes[slot].get(key) {
                if !list.is_empty() {
                    out.push(list.as_slice());
                }
            }
        }
    }

    /// One disjoint mutable writer per shard, in shard order. Each writer
    /// can absorb routed inserts independently of every other shard, which
    /// is what the engine's partitioned merge fans out over.
    pub fn shard_writers(&mut self) -> Vec<RelShardWriter<'_, P>> {
        let index_cols = &self.index_cols;
        self.shards
            .iter_mut()
            .map(|shard| RelShardWriter { index_cols, shard })
            .collect()
    }

    /// Iterate all live tuples in shard-major sequence order (**not**
    /// insertion order once anything was removed — removal swaps the
    /// last tuple into the hole). Given the same mutation sequence, two
    /// instances iterate identically — the determinism the parallel
    /// engine's replay parity rests on.
    pub fn iter(&self) -> impl Iterator<Item = (&SymTuple, &P)> {
        self.shards
            .iter()
            .flat_map(|s| s.order.iter().map(|(t, p)| (t, p)))
    }

    /// Iterate all live tuples (without payloads) in shard-major
    /// sequence order (see [`iter`](Self::iter)).
    pub fn iter_tuples(&self) -> impl Iterator<Item = &SymTuple> {
        self.shards
            .iter()
            .flat_map(|s| s.order.iter().map(|(t, _)| t))
    }

    /// Iterate one shard's live tuples in sequence order (see
    /// [`iter`](Self::iter)).
    pub fn iter_shard(&self, shard: usize) -> impl Iterator<Item = (&SymTuple, &P)> {
        self.shards[shard].order.iter().map(|(t, p)| (t, p))
    }

    /// Number of live buckets across all shards' indexes (introspection
    /// hook for the empty-bucket leak regression test).
    pub fn index_buckets(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.indexes.iter())
            .map(HashMap::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::ValueInterner;
    use crate::value::Value;

    fn st(i: &mut ValueInterner, vals: &[i64]) -> SymTuple {
        let t: crate::Tuple = vals.iter().map(|&v| Value::Int(v)).collect();
        i.intern_tuple(&t)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(4, vec![0]);
        let a = st(&mut i, &[1, 10]);
        let b = st(&mut i, &[2, 20]);
        r.insert(a.clone(), 7);
        r.insert(b.clone(), 8);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&a));
        assert_eq!(r.get(&a), Some(7));
        assert_eq!(r.remove(&a), Some(7));
        assert_eq!(r.remove(&a), None);
        assert!(!r.contains(&a));
        assert_eq!(r.get(&b), Some(8));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn reinsert_updates_payload_without_index_duplicates() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(4, vec![0]);
        let a = st(&mut i, &[1, 10]);
        r.ensure_index(&[0]);
        r.insert(a.clone(), 1);
        r.insert(a.clone(), 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&a), Some(2));
        let s = r.shard_of(&a);
        let key = [a[0]];
        assert_eq!(r.probe_shard(s, &[0], &key).len(), 1);
    }

    #[test]
    fn covering_probe_hits_single_shard() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(8, vec![0]);
        for k in 0..50i64 {
            let t = st(&mut i, &[k, k * 2]);
            r.insert(t, k as u32);
        }
        r.ensure_index(&[0]);
        for k in 0..50i64 {
            let t = st(&mut i, &[k, k * 2]);
            let key = [t[0]];
            // Partition col 0 sits at position 0 of the probe key.
            let shard = r.shard_for_key(&[0], &key);
            assert_eq!(shard, r.shard_of(&t));
            let hits = r.probe_shard(shard, &[0], &key);
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0], t);
        }
    }

    #[test]
    fn non_covering_probe_fans_out() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(8, vec![0]);
        // Many keys, same second column.
        let common = 99i64;
        for k in 0..40i64 {
            r.insert(st(&mut i, &[k, common]), 0);
        }
        r.insert(st(&mut i, &[1000, 7]), 0);
        r.ensure_index(&[1]);
        let c = st(&mut i, &[0, common]);
        let key = [c[1]];
        let mut slices: Vec<&[SymTuple]> = Vec::new();
        r.probe_slices_into(&[1], &key, &mut slices);
        let hits: usize = slices.iter().map(|s| s.len()).sum();
        assert_eq!(hits, 40);
    }

    #[test]
    fn iteration_is_shard_major_sequence_order_and_deterministic() {
        let mut i = ValueInterner::new();
        let build = |i: &mut ValueInterner| {
            let mut r: ShardedRel<u32> = ShardedRel::new(4, vec![0]);
            for k in 0..30i64 {
                r.insert(st(i, &[k, 0]), k as u32);
            }
            r.remove(&st(i, &[7, 0]));
            r.remove(&st(i, &[23, 0]));
            r.insert(st(i, &[7, 0]), 77);
            r
        };
        let a = build(&mut i);
        let b = build(&mut i);
        let seq_a: Vec<(SymTuple, u32)> = a.iter().map(|(t, p)| (t.clone(), *p)).collect();
        let seq_b: Vec<(SymTuple, u32)> = b.iter().map(|(t, p)| (t.clone(), *p)).collect();
        assert_eq!(seq_a, seq_b, "same mutations ⇒ same iteration order");
        assert_eq!(a.len(), 29);
    }

    #[test]
    fn per_shard_iteration_covers_everything_once() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(4, vec![0]);
        for k in 0..25i64 {
            r.insert(st(&mut i, &[k, 1]), 0);
        }
        let total: usize = (0..r.shard_count()).map(|s| r.iter_shard(s).count()).sum();
        assert_eq!(total, 25);
        assert_eq!(r.iter().count(), 25);
    }

    #[test]
    fn removal_drops_empty_index_buckets() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(2, vec![0]);
        r.ensure_index(&[0]);
        for k in 0..20i64 {
            r.insert(st(&mut i, &[k, 0]), 0);
        }
        for k in 0..20i64 {
            r.remove(&st(&mut i, &[k, 0]));
        }
        assert_eq!(r.index_buckets(), 0, "no leaked empty buckets");
        assert!(r.is_empty());
    }

    #[test]
    fn whole_tuple_partition_when_no_part_cols() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(4, vec![]);
        for k in 0..10i64 {
            r.insert(st(&mut i, &[k]), 0);
        }
        assert_eq!(r.len(), 10);
        let spread: usize = (0..4).filter(|&s| r.iter_shard(s).count() > 0).count();
        assert!(spread >= 2, "tuples spread across shards");
    }

    #[test]
    fn ensure_index_reports_first_build_only() {
        let mut r: ShardedRel<u32> = ShardedRel::new(2, vec![0]);
        assert!(r.ensure_index(&[1]));
        assert!(!r.ensure_index(&[1]));
        assert!(r.ensure_index(&[0, 1]));
    }

    #[test]
    fn shard_writers_route_free_inserts_match_routed_inserts() {
        let mut i = ValueInterner::new();
        let mut routed: ShardedRel<u32> = ShardedRel::new(4, vec![0]);
        let mut written: ShardedRel<u32> = ShardedRel::new(4, vec![0]);
        routed.ensure_index(&[0]);
        written.ensure_index(&[0]);
        let tuples: Vec<SymTuple> = (0..40i64).map(|k| st(&mut i, &[k, k + 1])).collect();
        for (k, t) in tuples.iter().enumerate() {
            routed.insert_if_absent(t.clone(), k as u32);
        }
        // Pre-route, then write through per-shard writers.
        let mut buckets: Vec<Vec<(SymTuple, u32)>> = vec![Vec::new(); 4];
        for (k, t) in tuples.iter().enumerate() {
            buckets[written.shard_of(t)].push((t.clone(), k as u32));
        }
        let mut writers = written.shard_writers();
        for (s, bucket) in buckets.into_iter().enumerate() {
            for (t, p) in bucket {
                assert!(writers[s].insert_if_absent(t.clone(), p));
                assert!(!writers[s].insert_if_absent(t.clone(), p), "idempotent");
                assert_eq!(writers[s].get(&t), Some(p));
            }
        }
        drop(writers);
        let a: Vec<(SymTuple, u32)> = routed.iter().map(|(t, p)| (t.clone(), *p)).collect();
        let b: Vec<(SymTuple, u32)> = written.iter().map(|(t, p)| (t.clone(), *p)).collect();
        assert_eq!(a, b, "writer path is byte-identical to routed inserts");
        assert_eq!(routed.index_buckets(), written.index_buckets());
    }
}
