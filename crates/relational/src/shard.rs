//! Hash-partitioned relation storage for the parallel evaluation engine.
//!
//! A [`ShardedRel`] splits one relation's tuples into a **fixed** number
//! of shards by a deterministic hash of the relation's *partition
//! columns* (its dominant join/index key, chosen by the engine from the
//! compiled join plans). Each shard owns
//!
//! * a **sequence-ordered** tuple table (`Vec` + position map): scan
//!   order is a pure function of the mutation sequence (appends go to
//!   the back; a removal swaps the last tuple into the hole), so two
//!   instances fed the same mutations iterate identically — unlike
//!   `HashMap` iteration with its per-instance seed — which is what
//!   lets an N-thread evaluation replay byte-identically to a
//!   single-threaded one;
//! * its own secondary **probe tables** (fixed-width `[Sym]` key →
//!   posting list), maintained incrementally through inserts/removals
//!   exactly like the pre-sharding engine index.
//!
//! A probe whose bound columns **cover** the partition columns touches a
//! single shard (the common case — the partition columns *are* the most
//! probed key); any other probe fans out across shards in shard order.
//! Shard routing uses a seedless FNV-1a over the `u32` symbols, so two
//! engines fed the same interning sequence place every tuple identically.

use crate::intern::{Sym, SymTuple};
use std::collections::HashMap;

/// Default shard count for partitioned relations.
pub const DEFAULT_SHARDS: usize = 16;

/// One secondary index: fixed-width symbol key → posting list.
type SymIndex = HashMap<Box<[Sym]>, Vec<SymTuple>>;

/// Deterministic, seedless FNV-1a over symbol words.
#[inline]
fn fnv1a(syms: impl Iterator<Item = Sym>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in syms {
        h = (h ^ u64::from(s.0)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[derive(Debug, Clone)]
struct Shard<P> {
    /// Tuple → index into `order`.
    pos: HashMap<SymTuple, u32>,
    /// Live tuples with their payloads, in sequence order: appends at
    /// the back, removals swap the last tuple into the hole — the order
    /// is a pure function of the mutation sequence.
    order: Vec<(SymTuple, P)>,
}

impl<P: Copy> Shard<P> {
    fn empty() -> Shard<P> {
        Shard {
            pos: HashMap::new(),
            order: Vec::new(),
        }
    }
}

fn key_of(t: &SymTuple, cols: &[usize]) -> Box<[Sym]> {
    cols.iter().map(|&c| t[c]).collect()
}

/// One relation, hash-partitioned into a fixed number of shards (see
/// module docs). `P` is the per-tuple payload (the engine stores the
/// tuple's provenance node id).
#[derive(Debug, Clone)]
pub struct ShardedRel<P> {
    /// Partition columns; empty ⇒ partition on the whole tuple.
    part_cols: Box<[usize]>,
    shards: Vec<Shard<P>>,
    /// Secondary indexes, keyed by column set **once per relation** (a
    /// fan-out probe hashes `cols` once, not once per shard): each entry
    /// holds one `[Sym]`-keyed posting map per shard. Emptied buckets
    /// are dropped eagerly so churny delete/reinsert workloads cannot
    /// grow an index without bound.
    indexes: HashMap<Box<[usize]>, Vec<SymIndex>>,
}

impl<P: Copy> ShardedRel<P> {
    /// An empty relation with `shards` partitions, hash-split on
    /// `part_cols` (empty ⇒ the whole tuple).
    pub fn new(shards: usize, part_cols: Vec<usize>) -> ShardedRel<P> {
        let shards = shards.max(1);
        ShardedRel {
            part_cols: part_cols.into(),
            shards: (0..shards).map(|_| Shard::empty()).collect(),
            indexes: HashMap::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partition columns (empty ⇒ whole tuple).
    pub fn part_cols(&self) -> &[usize] {
        &self.part_cols
    }

    /// The shard a tuple belongs to.
    #[inline]
    pub fn shard_of(&self, t: &SymTuple) -> usize {
        let h = if self.part_cols.is_empty() {
            fnv1a(t.syms().iter().copied())
        } else {
            fnv1a(self.part_cols.iter().map(|&c| t[c]))
        };
        (h as usize) % self.shards.len()
    }

    /// The shard that owns any tuple whose partition columns carry the
    /// symbols `key[positions[i]]` — `positions[i]` is the offset of the
    /// i-th partition column inside a probe key. Only meaningful when the
    /// probe covers the partition columns (the caller establishes that).
    #[inline]
    pub fn shard_for_key(&self, positions: &[usize], key: &[Sym]) -> usize {
        let h = fnv1a(positions.iter().map(|&p| key[p]));
        (h as usize) % self.shards.len()
    }

    /// Total live tuples across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.order.len()).sum()
    }

    /// True iff no shard holds a tuple.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.order.is_empty())
    }

    /// True iff the tuple is present.
    pub fn contains(&self, t: &SymTuple) -> bool {
        self.shards[self.shard_of(t)].pos.contains_key(t)
    }

    /// The payload stored with a tuple, if present.
    pub fn get(&self, t: &SymTuple) -> Option<P> {
        let s = &self.shards[self.shard_of(t)];
        s.pos.get(t).map(|&p| s.order[p as usize].1)
    }

    /// Insert a tuple with its payload (idempotent: re-inserting updates
    /// the payload without duplicating index entries).
    pub fn insert(&mut self, t: SymTuple, payload: P) {
        let si = self.shard_of(&t);
        let shard = &mut self.shards[si];
        if let Some(&p) = shard.pos.get(&t) {
            shard.order[p as usize].1 = payload;
            return;
        }
        self.insert_fresh(si, t, payload);
    }

    /// Insert unless present (the present tuple keeps its payload).
    /// Returns `true` when the tuple was newly inserted — one shard
    /// routing and one membership probe, where a `contains` + `insert`
    /// pair would pay both twice (the engine's merge-phase hot path).
    pub fn insert_if_absent(&mut self, t: SymTuple, payload: P) -> bool {
        let si = self.shard_of(&t);
        if self.shards[si].pos.contains_key(&t) {
            return false;
        }
        self.insert_fresh(si, t, payload);
        true
    }

    /// The not-present arm of the inserts: index maintenance + append.
    fn insert_fresh(&mut self, si: usize, t: SymTuple, payload: P) {
        for (cols, per_shard) in self.indexes.iter_mut() {
            per_shard[si]
                .entry(key_of(&t, cols))
                .or_default()
                .push(t.clone());
        }
        let shard = &mut self.shards[si];
        // analyze: allow(panic) -- u32 per-shard capacity (4B tuples) is an accepted engine limit
        let p = u32::try_from(shard.order.len()).expect("shard overflow");
        shard.pos.insert(t.clone(), p);
        shard.order.push((t, payload));
    }

    /// Remove a tuple, returning its payload if it was present.
    pub fn remove(&mut self, t: &SymTuple) -> Option<P> {
        let si = self.shard_of(t);
        let shard = &mut self.shards[si];
        let p = shard.pos.remove(t)? as usize;
        let (_, payload) = shard.order.swap_remove(p);
        if let Some((moved, _)) = shard.order.get(p) {
            // analyze: allow(panic) -- `order` and `pos` are mutated in lockstep; every stored tuple is indexed
            *shard.pos.get_mut(moved).expect("moved tuple indexed") = p as u32;
        }
        for (cols, per_shard) in self.indexes.iter_mut() {
            let idx = &mut per_shard[si];
            let key = key_of(t, cols);
            if let Some(list) = idx.get_mut(&key) {
                if let Some(i) = list.iter().position(|x| x == t) {
                    list.swap_remove(i);
                }
                if list.is_empty() {
                    idx.remove(&key);
                }
            }
        }
        Some(payload)
    }

    /// Build the secondary index on `cols` (per shard) if missing.
    /// Returns `true` when the index was newly built.
    pub fn ensure_index(&mut self, cols: &[usize]) -> bool {
        if self.indexes.contains_key(cols) {
            return false;
        }
        let mut per_shard: Vec<SymIndex> = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            let mut idx = SymIndex::new();
            for (t, _) in &s.order {
                idx.entry(key_of(t, cols)).or_default().push(t.clone());
            }
            per_shard.push(idx);
        }
        self.indexes.insert(Box::from(cols), per_shard);
        true
    }

    /// Probe one shard's index. Missing index or key ⇒ empty. The result
    /// borrows only the relation (`'s`), not the probe key, so callers can
    /// reuse their key buffer while iterating the posting list.
    #[inline]
    pub fn probe_shard<'s>(&'s self, shard: usize, cols: &[usize], key: &[Sym]) -> &'s [SymTuple] {
        self.indexes
            .get(cols)
            .and_then(|per_shard| per_shard[shard].get(key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Probe every shard's index in shard order, appending the non-empty
    /// posting lists to `out` (used when the probe's bound columns do not
    /// cover the partition columns, so no single shard can answer). The
    /// column set is hashed once; only the per-shard key lookups repeat.
    pub fn probe_slices_into<'s>(
        &'s self,
        cols: &[usize],
        key: &[Sym],
        out: &mut Vec<&'s [SymTuple]>,
    ) {
        let Some(per_shard) = self.indexes.get(cols) else {
            return;
        };
        for idx in per_shard {
            if let Some(list) = idx.get(key) {
                if !list.is_empty() {
                    out.push(list.as_slice());
                }
            }
        }
    }

    /// Iterate all live tuples in shard-major sequence order (**not**
    /// insertion order once anything was removed — removal swaps the
    /// last tuple into the hole). Given the same mutation sequence, two
    /// instances iterate identically — the determinism the parallel
    /// engine's replay parity rests on.
    pub fn iter(&self) -> impl Iterator<Item = (&SymTuple, &P)> {
        self.shards
            .iter()
            .flat_map(|s| s.order.iter().map(|(t, p)| (t, p)))
    }

    /// Iterate all live tuples (without payloads) in shard-major
    /// sequence order (see [`iter`](Self::iter)).
    pub fn iter_tuples(&self) -> impl Iterator<Item = &SymTuple> {
        self.shards
            .iter()
            .flat_map(|s| s.order.iter().map(|(t, _)| t))
    }

    /// Iterate one shard's live tuples in sequence order (see
    /// [`iter`](Self::iter)).
    pub fn iter_shard(&self, shard: usize) -> impl Iterator<Item = (&SymTuple, &P)> {
        self.shards[shard].order.iter().map(|(t, p)| (t, p))
    }

    /// Number of live buckets across all shards' indexes (introspection
    /// hook for the empty-bucket leak regression test).
    pub fn index_buckets(&self) -> usize {
        self.indexes
            .values()
            .flat_map(|per_shard| per_shard.iter())
            .map(HashMap::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::ValueInterner;
    use crate::value::Value;

    fn st(i: &mut ValueInterner, vals: &[i64]) -> SymTuple {
        let t: crate::Tuple = vals.iter().map(|&v| Value::Int(v)).collect();
        i.intern_tuple(&t)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(4, vec![0]);
        let a = st(&mut i, &[1, 10]);
        let b = st(&mut i, &[2, 20]);
        r.insert(a.clone(), 7);
        r.insert(b.clone(), 8);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&a));
        assert_eq!(r.get(&a), Some(7));
        assert_eq!(r.remove(&a), Some(7));
        assert_eq!(r.remove(&a), None);
        assert!(!r.contains(&a));
        assert_eq!(r.get(&b), Some(8));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn reinsert_updates_payload_without_index_duplicates() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(4, vec![0]);
        let a = st(&mut i, &[1, 10]);
        r.ensure_index(&[0]);
        r.insert(a.clone(), 1);
        r.insert(a.clone(), 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&a), Some(2));
        let s = r.shard_of(&a);
        let key = [a[0]];
        assert_eq!(r.probe_shard(s, &[0], &key).len(), 1);
    }

    #[test]
    fn covering_probe_hits_single_shard() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(8, vec![0]);
        for k in 0..50i64 {
            let t = st(&mut i, &[k, k * 2]);
            r.insert(t, k as u32);
        }
        r.ensure_index(&[0]);
        for k in 0..50i64 {
            let t = st(&mut i, &[k, k * 2]);
            let key = [t[0]];
            // Partition col 0 sits at position 0 of the probe key.
            let shard = r.shard_for_key(&[0], &key);
            assert_eq!(shard, r.shard_of(&t));
            let hits = r.probe_shard(shard, &[0], &key);
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0], t);
        }
    }

    #[test]
    fn non_covering_probe_fans_out() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(8, vec![0]);
        // Many keys, same second column.
        let common = 99i64;
        for k in 0..40i64 {
            r.insert(st(&mut i, &[k, common]), 0);
        }
        r.insert(st(&mut i, &[1000, 7]), 0);
        r.ensure_index(&[1]);
        let c = st(&mut i, &[0, common]);
        let key = [c[1]];
        let mut slices: Vec<&[SymTuple]> = Vec::new();
        r.probe_slices_into(&[1], &key, &mut slices);
        let hits: usize = slices.iter().map(|s| s.len()).sum();
        assert_eq!(hits, 40);
    }

    #[test]
    fn iteration_is_shard_major_sequence_order_and_deterministic() {
        let mut i = ValueInterner::new();
        let build = |i: &mut ValueInterner| {
            let mut r: ShardedRel<u32> = ShardedRel::new(4, vec![0]);
            for k in 0..30i64 {
                r.insert(st(i, &[k, 0]), k as u32);
            }
            r.remove(&st(i, &[7, 0]));
            r.remove(&st(i, &[23, 0]));
            r.insert(st(i, &[7, 0]), 77);
            r
        };
        let a = build(&mut i);
        let b = build(&mut i);
        let seq_a: Vec<(SymTuple, u32)> = a.iter().map(|(t, p)| (t.clone(), *p)).collect();
        let seq_b: Vec<(SymTuple, u32)> = b.iter().map(|(t, p)| (t.clone(), *p)).collect();
        assert_eq!(seq_a, seq_b, "same mutations ⇒ same iteration order");
        assert_eq!(a.len(), 29);
    }

    #[test]
    fn per_shard_iteration_covers_everything_once() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(4, vec![0]);
        for k in 0..25i64 {
            r.insert(st(&mut i, &[k, 1]), 0);
        }
        let total: usize = (0..r.shard_count()).map(|s| r.iter_shard(s).count()).sum();
        assert_eq!(total, 25);
        assert_eq!(r.iter().count(), 25);
    }

    #[test]
    fn removal_drops_empty_index_buckets() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(2, vec![0]);
        r.ensure_index(&[0]);
        for k in 0..20i64 {
            r.insert(st(&mut i, &[k, 0]), 0);
        }
        for k in 0..20i64 {
            r.remove(&st(&mut i, &[k, 0]));
        }
        assert_eq!(r.index_buckets(), 0, "no leaked empty buckets");
        assert!(r.is_empty());
    }

    #[test]
    fn whole_tuple_partition_when_no_part_cols() {
        let mut i = ValueInterner::new();
        let mut r: ShardedRel<u32> = ShardedRel::new(4, vec![]);
        for k in 0..10i64 {
            r.insert(st(&mut i, &[k]), 0);
        }
        assert_eq!(r.len(), 10);
        let spread: usize = (0..4).filter(|&s| r.iter_shard(s).count() > 0).count();
        assert!(spread >= 2, "tuples spread across shards");
    }

    #[test]
    fn ensure_index_reports_first_build_only() {
        let mut r: ShardedRel<u32> = ShardedRel::new(2, vec![0]);
        assert!(r.ensure_index(&[1]));
        assert!(!r.ensure_index(&[1]));
        assert!(r.ensure_index(&[0, 1]));
    }
}
