//! Relation and database schemas.
//!
//! Every peer in a CDSS owns a [`DatabaseSchema`]; schema mappings relate
//! relations across peers' schemas. Declared keys matter beyond integrity:
//! the reconciliation algorithm detects conflicts between transactions as
//! *key-equal, value-different* writes, and `modify` updates are identified
//! by key.

use crate::error::RelationalError;
use crate::tuple::Tuple;
use crate::value::ValueType;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnDef {
    /// Column name, unique within its relation.
    pub name: String,
    /// Column type. Labeled nulls and `NULL` inhabit every type.
    pub ty: ValueType,
}

impl ColumnDef {
    /// Build a column definition.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// The signature of one relation: name, typed columns, and key columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: Arc<str>,
    columns: Vec<ColumnDef>,
    /// Indexes of the key columns, strictly increasing. When a relation has
    /// no natural key the key is all columns (set semantics).
    key: Vec<usize>,
}

impl RelationSchema {
    /// Build a schema whose key is **all** columns (set semantics).
    pub fn new(name: impl AsRef<str>, columns: Vec<ColumnDef>) -> Result<Self> {
        let key = (0..columns.len()).collect();
        Self::with_key(name, columns, key)
    }

    /// Build a schema with an explicit key (column indexes).
    pub fn with_key(
        name: impl AsRef<str>,
        columns: Vec<ColumnDef>,
        mut key: Vec<usize>,
    ) -> Result<Self> {
        let name: Arc<str> = Arc::from(name.as_ref());
        if columns.is_empty() {
            return Err(RelationalError::InvalidSchema(format!(
                "relation `{name}` must have at least one column"
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.as_str()) {
                return Err(RelationalError::InvalidSchema(format!(
                    "duplicate column `{}` in relation `{name}`",
                    c.name
                )));
            }
        }
        key.sort_unstable();
        key.dedup();
        if key.is_empty() {
            return Err(RelationalError::InvalidSchema(format!(
                "relation `{name}` key must not be empty"
            )));
        }
        if let Some(&bad) = key.iter().find(|&&k| k >= columns.len()) {
            return Err(RelationalError::InvalidSchema(format!(
                "key column index {bad} out of range for relation `{name}` with {} columns",
                columns.len()
            )));
        }
        Ok(RelationSchema { name, columns, key })
    }

    /// Convenience constructor from `(name, type)` pairs, key = all columns.
    pub fn from_parts(name: impl AsRef<str>, cols: &[(&str, ValueType)]) -> Result<Self> {
        Self::new(
            name,
            cols.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        )
    }

    /// Convenience constructor with explicit key column *names*.
    pub fn from_parts_keyed(
        name: impl AsRef<str>,
        cols: &[(&str, ValueType)],
        key_cols: &[&str],
    ) -> Result<Self> {
        let columns: Vec<ColumnDef> = cols.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect();
        let mut key = Vec::with_capacity(key_cols.len());
        for kc in key_cols {
            let idx = columns.iter().position(|c| c.name == *kc).ok_or_else(|| {
                RelationalError::UnknownColumn {
                    relation: name.as_ref().to_string(),
                    column: kc.to_string(),
                }
            })?;
            key.push(idx);
        }
        Self::with_key(name, columns, key)
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shared handle to the relation name.
    pub fn name_arc(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// Column definitions in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Key column indexes (sorted, deduplicated).
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// True iff the key covers every column (set semantics: whole tuples are
    /// their own identity; modify = delete + insert).
    pub fn key_is_whole_tuple(&self) -> bool {
        self.key.len() == self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate a tuple against this schema: arity and column types.
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name.to_string(),
                expected: self.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, col) in self.columns.iter().enumerate() {
            if !tuple[i].conforms_to(col.ty) {
                return Err(RelationalError::TypeMismatch {
                    relation: self.name.to_string(),
                    column: col.name.clone(),
                    expected: col.ty.to_string(),
                    actual: tuple[i].type_name().into_owned(),
                });
            }
        }
        Ok(())
    }

    /// Project a tuple onto this schema's key columns.
    pub fn key_of(&self, tuple: &Tuple) -> Tuple {
        tuple.project(&self.key)
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let key_marker = if self.key.contains(&i) && !self.key_is_whole_tuple() {
                "*"
            } else {
                ""
            };
            write!(f, "{}{}: {}", key_marker, c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

/// A named collection of relation schemas — one per peer in the CDSS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseSchema {
    name: Arc<str>,
    relations: BTreeMap<Arc<str>, RelationSchema>,
}

impl DatabaseSchema {
    /// Create an empty schema with the given name (e.g. `"Σ1"`).
    pub fn new(name: impl AsRef<str>) -> Self {
        DatabaseSchema {
            name: Arc::from(name.as_ref()),
            relations: BTreeMap::new(),
        }
    }

    /// Schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a relation; errors on duplicate names.
    pub fn add_relation(&mut self, schema: RelationSchema) -> Result<()> {
        let key = schema.name_arc();
        if self.relations.contains_key(&key) {
            return Err(RelationalError::InvalidSchema(format!(
                "duplicate relation `{key}` in schema `{}`",
                self.name
            )));
        }
        self.relations.insert(key, schema);
        Ok(())
    }

    /// Builder-style [`add_relation`](Self::add_relation).
    pub fn with_relation(mut self, schema: RelationSchema) -> Result<Self> {
        self.add_relation(schema)?;
        Ok(self)
    }

    /// Look up a relation schema by name.
    pub fn relation(&self, name: &str) -> Result<&RelationSchema> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// True iff the schema contains the relation.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterate over relation schemas in name order (deterministic).
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl fmt::Display for DatabaseSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema {} {{", self.name)?;
        for r in self.relations.values() {
            writeln!(f, "  {r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::Value;

    fn ops_schema() -> RelationSchema {
        RelationSchema::from_parts_keyed(
            "OPS",
            &[
                ("org", ValueType::Str),
                ("prot", ValueType::Str),
                ("seq", ValueType::Str),
            ],
            &["org", "prot"],
        )
        .unwrap()
    }

    #[test]
    fn schema_construction_defaults_key_to_all_columns() {
        let s = RelationSchema::from_parts("R", &[("a", ValueType::Int), ("b", ValueType::Int)])
            .unwrap();
        assert_eq!(s.key(), &[0, 1]);
        assert!(s.key_is_whole_tuple());
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn keyed_schema() {
        let s = ops_schema();
        assert_eq!(s.key(), &[0, 1]);
        assert!(!s.key_is_whole_tuple());
        assert_eq!(s.column_index("seq"), Some(2));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn rejects_empty_columns() {
        assert!(matches!(
            RelationSchema::from_parts("R", &[]),
            Err(RelationalError::InvalidSchema(_))
        ));
    }

    #[test]
    fn rejects_duplicate_columns() {
        let err = RelationSchema::from_parts("R", &[("a", ValueType::Int), ("a", ValueType::Str)]);
        assert!(matches!(err, Err(RelationalError::InvalidSchema(_))));
    }

    #[test]
    fn rejects_out_of_range_key() {
        let cols = vec![ColumnDef::new("a", ValueType::Int)];
        assert!(RelationSchema::with_key("R", cols, vec![3]).is_err());
    }

    #[test]
    fn rejects_unknown_key_column_name() {
        let err = RelationSchema::from_parts_keyed("R", &[("a", ValueType::Int)], &["z"]);
        assert!(matches!(err, Err(RelationalError::UnknownColumn { .. })));
    }

    #[test]
    fn key_is_deduplicated_and_sorted() {
        let cols = vec![
            ColumnDef::new("a", ValueType::Int),
            ColumnDef::new("b", ValueType::Int),
        ];
        let s = RelationSchema::with_key("R", cols, vec![1, 0, 1]).unwrap();
        assert_eq!(s.key(), &[0, 1]);
    }

    #[test]
    fn validate_accepts_conforming_tuple() {
        let s = ops_schema();
        assert!(s.validate(&tuple!["HIV", "gp120", "MRV..."]).is_ok());
    }

    #[test]
    fn validate_accepts_labeled_nulls_in_any_column() {
        let s = RelationSchema::from_parts("R", &[("a", ValueType::Int)]).unwrap();
        let t = Tuple::new(vec![Value::skolem("f", vec![Value::str("x")])]);
        assert!(s.validate(&t).is_ok());
    }

    #[test]
    fn validate_rejects_arity_mismatch() {
        let s = ops_schema();
        assert!(matches!(
            s.validate(&tuple!["HIV", "gp120"]),
            Err(RelationalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let s = ops_schema();
        assert!(matches!(
            s.validate(&tuple!["HIV", 5, "MRV"]),
            Err(RelationalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn key_projection() {
        let s = ops_schema();
        let t = tuple!["HIV", "gp120", "MRV"];
        assert_eq!(s.key_of(&t), tuple!["HIV", "gp120"]);
    }

    #[test]
    fn database_schema_dedup_and_lookup() {
        let mut db = DatabaseSchema::new("Σ2");
        db.add_relation(ops_schema()).unwrap();
        assert!(db.add_relation(ops_schema()).is_err());
        assert!(db.contains("OPS"));
        assert!(db.relation("OPS").is_ok());
        assert!(matches!(
            db.relation("X"),
            Err(RelationalError::UnknownRelation(_))
        ));
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn database_schema_display_lists_relations() {
        let db = DatabaseSchema::new("S")
            .with_relation(ops_schema())
            .unwrap();
        let shown = db.to_string();
        assert!(shown.contains("schema S"));
        assert!(shown.contains("OPS("));
        assert!(shown.contains("*org"));
    }

    #[test]
    fn relation_schema_display_marks_keys() {
        assert_eq!(
            ops_schema().to_string(),
            "OPS(*org: Str, *prot: Str, seq: Str)"
        );
    }
}
