//! Boolean predicates over tuples.
//!
//! The reconciliation layer's *trust conditions* ("Crete trusts updates
//! where the data concerns organisms it studies") are predicates over update
//! contents; mapping bodies may also carry comparison filters. Predicates
//! compose over [`Expr`]s.

use crate::expr::Expr;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::fmt;

/// Comparison operators. Comparisons between values of different variants
/// (other than equality) use the total value order, so they are always
/// defined — important because trust conditions must never fail at
/// reconciliation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to two values using the total value order.
    pub fn apply(self, l: &Value, r: &Value) -> bool {
        let ord = l.cmp(r);
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean predicate over one tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Compare two expressions.
    Compare {
        /// Left operand.
        left: Expr,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Expr,
    },
    /// Conjunction (empty = true).
    And(Vec<Predicate>),
    /// Disjunction (empty = false).
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = literal`, the workhorse trust-condition form.
    pub fn col_eq(col: usize, v: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            left: Expr::Column(col),
            op: CmpOp::Eq,
            right: Expr::Const(v.into()),
        }
    }

    /// `column <op> literal`.
    pub fn col_cmp(col: usize, op: CmpOp, v: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            left: Expr::Column(col),
            op,
            right: Expr::Const(v.into()),
        }
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::Compare { left, op, right } => {
                Ok(op.apply(&left.eval(tuple)?, &right.eval(tuple)?))
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval(tuple)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval(tuple)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Predicate::Not(p) => Ok(!p.eval(tuple)?),
        }
    }

    /// The largest column index referenced, if any.
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Predicate::True | Predicate::False => None,
            Predicate::Compare { left, right, .. } => {
                match (left.max_column(), right.max_column()) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                }
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().filter_map(Predicate::max_column).max()
            }
            Predicate::Not(p) => p.max_column(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Compare { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::And(ps) => {
                if ps.is_empty() {
                    return write!(f, "true");
                }
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
            Predicate::Or(ps) => {
                if ps.is_empty() {
                    return write!(f, "false");
                }
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
            Predicate::Not(p) => write!(f, "not ({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn constants() {
        let t = tuple![1];
        assert!(Predicate::True.eval(&t).unwrap());
        assert!(!Predicate::False.eval(&t).unwrap());
    }

    #[test]
    fn col_eq() {
        let t = tuple!["HIV", "gp120"];
        assert!(Predicate::col_eq(0, "HIV").eval(&t).unwrap());
        assert!(!Predicate::col_eq(0, "Plasmodium").eval(&t).unwrap());
    }

    #[test]
    fn comparisons() {
        let t = tuple![5];
        assert!(Predicate::col_cmp(0, CmpOp::Gt, 3).eval(&t).unwrap());
        assert!(Predicate::col_cmp(0, CmpOp::Ge, 5).eval(&t).unwrap());
        assert!(Predicate::col_cmp(0, CmpOp::Le, 5).eval(&t).unwrap());
        assert!(!Predicate::col_cmp(0, CmpOp::Lt, 5).eval(&t).unwrap());
        assert!(Predicate::col_cmp(0, CmpOp::Ne, 4).eval(&t).unwrap());
    }

    #[test]
    fn and_or_not() {
        let t = tuple![5, "x"];
        let p = Predicate::And(vec![
            Predicate::col_cmp(0, CmpOp::Gt, 1),
            Predicate::col_eq(1, "x"),
        ]);
        assert!(p.eval(&t).unwrap());
        let q = Predicate::Or(vec![Predicate::col_eq(1, "y"), Predicate::col_eq(0, 5)]);
        assert!(q.eval(&t).unwrap());
        assert!(!Predicate::Not(Box::new(q)).eval(&t).unwrap());
    }

    #[test]
    fn empty_and_is_true_empty_or_is_false() {
        let t = tuple![1];
        assert!(Predicate::And(vec![]).eval(&t).unwrap());
        assert!(!Predicate::Or(vec![]).eval(&t).unwrap());
    }

    #[test]
    fn cross_variant_comparison_uses_total_order() {
        // Int < Str in the total order; never panics.
        let t = tuple![1, "a"];
        let p = Predicate::Compare {
            left: Expr::Column(0),
            op: CmpOp::Lt,
            right: Expr::Column(1),
        };
        assert!(p.eval(&t).unwrap());
    }

    #[test]
    fn short_circuit_avoids_errors_after_decision() {
        // First conjunct false => second (which would error) never evaluated.
        let t = tuple![1];
        let p = Predicate::And(vec![
            Predicate::False,
            Predicate::col_eq(99, 1), // out of range
        ]);
        assert!(!p.eval(&t).unwrap());
    }

    #[test]
    fn error_propagates_when_reached() {
        let t = tuple![1];
        assert!(Predicate::col_eq(99, 1).eval(&t).is_err());
    }

    #[test]
    fn max_column() {
        let p = Predicate::And(vec![
            Predicate::col_eq(2, 1),
            Predicate::Not(Box::new(Predicate::col_eq(7, 1))),
        ]);
        assert_eq!(p.max_column(), Some(7));
        assert_eq!(Predicate::True.max_column(), None);
    }

    #[test]
    fn display() {
        let p = Predicate::And(vec![
            Predicate::col_eq(0, "HIV"),
            Predicate::col_cmp(1, CmpOp::Gt, 2),
        ]);
        assert_eq!(p.to_string(), "($0 = 'HIV') and ($1 > 2)");
    }
}
