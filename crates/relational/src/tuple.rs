//! Immutable tuples (rows).

use crate::value::Value;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// An immutable row of values.
///
/// Backed by `Arc<[Value]>` so clones are a pointer bump — tuples flow
/// through the mapping engine, provenance tables, update logs, and the
/// reconciliation engine, and every layer keeps references to the same rows.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// True iff the tuple has no columns.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value at column `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project onto the given column indexes (panics if any is out of range;
    /// schema validation guarantees ranges before this is reached).
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Project onto the given columns, returning owned values in a plain
    /// `Vec` (used as an index key without the `Tuple` wrapper).
    pub fn key_values(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| self.0[c].clone()).collect()
    }

    /// A new tuple with column `i` replaced by `v`.
    pub fn with_value(&self, i: usize, v: Value) -> Tuple {
        let mut vals: Vec<Value> = self.0.to_vec();
        vals[i] = v;
        Tuple::new(vals)
    }

    /// True iff any column holds a labeled null.
    pub fn has_labeled_null(&self) -> bool {
        self.0.iter().any(Value::is_labeled_null)
    }

    /// Iterate over values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Convenience macro for tuple literals in tests and examples:
/// `tuple!["HIV", 1, 2.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple!["HIV", 42];
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::str("HIV"));
        assert_eq!(t.get(1), Some(&Value::Int(42)));
        assert_eq!(t.get(2), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let t = tuple![1, 2, 3];
        let u = t.clone();
        assert_eq!(t, u);
        assert!(Arc::ptr_eq(&t.0, &u.0));
    }

    #[test]
    fn projection() {
        let t = tuple!["org", 1, "seq"];
        assert_eq!(t.project(&[2, 0]), tuple!["seq", "org"]);
        assert_eq!(t.project(&[]), Tuple::new(vec![]));
        assert_eq!(t.key_values(&[1]), vec![Value::Int(1)]);
    }

    #[test]
    fn with_value_replaces_single_column() {
        let t = tuple![1, 2];
        let u = t.with_value(1, Value::Int(9));
        assert_eq!(u, tuple![1, 9]);
        assert_eq!(t, tuple![1, 2], "original unchanged");
    }

    #[test]
    fn labeled_null_detection() {
        let t = Tuple::new(vec![Value::Int(1), Value::skolem("f", vec![Value::Int(1)])]);
        assert!(t.has_labeled_null());
        assert!(!tuple![1, 2].has_labeled_null());
    }

    #[test]
    fn display() {
        let t = tuple!["a", 1];
        assert_eq!(t.to_string(), "('a', 1)");
        assert_eq!(Tuple::new(vec![]).to_string(), "()");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = tuple![1, 2];
        let b = tuple![1, 3];
        let c = tuple![2, 0];
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = (0..3).map(Value::Int).collect();
        assert_eq!(t, tuple![0, 1, 2]);
        let total: i64 = t.iter().filter_map(Value::as_int).sum();
        assert_eq!(total, 3);
    }
}
