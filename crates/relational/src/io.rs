//! Plain-text (tab-separated) import/export for instances.
//!
//! Peers in a CDSS are long-lived: their local instances outlive any one
//! process. This module gives the substrate a dependency-free durable
//! format — one relation header line, then one line per tuple — with a
//! lossless value encoding that round-trips every [`Value`], including
//! nested labeled nulls.
//!
//! ```text
//! #relation O
//! s:HIV\ti:1
//! s:Rat\tk:oid(s:Rat)
//! ```

use crate::error::RelationalError;
use crate::instance::Instance;
use crate::tuple::Tuple;
use crate::value::{SkolemValue, Value};
use crate::Result;
use std::fmt::Write as _;

/// Encode one value. Strings escape `\`, tab, newline, and `(`/`)`/`,`
/// (the Skolem delimiters), so nested encodings stay unambiguous.
pub fn encode_value(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("NULL"),
        Value::Bool(b) => {
            let _ = write!(out, "b:{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "i:{i}");
        }
        Value::Double(d) => {
            // Bit-exact round trip.
            let _ = write!(out, "d:{:016x}", d.to_bits());
        }
        Value::Str(s) => {
            out.push_str("s:");
            escape_into(out, s);
        }
        Value::Skolem(sk) => {
            out.push_str("k:");
            escape_into(out, &sk.function);
            out.push('(');
            for (i, a) in sk.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, a);
            }
            out.push(')');
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '(' => out.push_str("\\("),
            ')' => out.push_str("\\)"),
            ',' => out.push_str("\\,"),
            other => out.push(other),
        }
    }
}

/// Decode one value (the inverse of [`encode_value`]).
pub fn decode_value(s: &str) -> Result<Value> {
    let (v, rest) = parse_value(s)?;
    if !rest.is_empty() {
        return Err(RelationalError::ExprError(format!(
            "trailing input after value: `{rest}`"
        )));
    }
    Ok(v)
}

fn parse_value(s: &str) -> Result<(Value, &str)> {
    if let Some(rest) = s.strip_prefix("NULL") {
        return Ok((Value::Null, rest));
    }
    if let Some(rest) = s.strip_prefix("b:") {
        if let Some(r) = rest.strip_prefix("true") {
            return Ok((Value::Bool(true), r));
        }
        if let Some(r) = rest.strip_prefix("false") {
            return Ok((Value::Bool(false), r));
        }
        return Err(RelationalError::ExprError("bad bool".into()));
    }
    if let Some(rest) = s.strip_prefix("i:") {
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '-'))
            .unwrap_or(rest.len());
        let n: i64 = rest[..end]
            .parse()
            .map_err(|e| RelationalError::ExprError(format!("bad int: {e}")))?;
        return Ok((Value::Int(n), &rest[end..]));
    }
    if let Some(rest) = s.strip_prefix("d:") {
        if rest.len() < 16 {
            return Err(RelationalError::ExprError("bad double".into()));
        }
        let bits = u64::from_str_radix(&rest[..16], 16)
            .map_err(|e| RelationalError::ExprError(format!("bad double: {e}")))?;
        return Ok((Value::Double(f64::from_bits(bits)), &rest[16..]));
    }
    if let Some(rest) = s.strip_prefix("s:") {
        let (text, r) = unescape_until(rest, &[',', ')'])?;
        return Ok((Value::from(text), r));
    }
    if let Some(rest) = s.strip_prefix("k:") {
        let (function, r) = unescape_until(rest, &['('])?;
        let mut r = r
            .strip_prefix('(')
            .ok_or_else(|| RelationalError::ExprError("skolem missing `(`".into()))?;
        let mut args = Vec::new();
        if let Some(after) = r.strip_prefix(')') {
            return Ok((
                Value::Skolem(std::sync::Arc::new(SkolemValue::new(function, args))),
                after,
            ));
        }
        loop {
            let (arg, rest2) = parse_value(r)?;
            args.push(arg);
            if let Some(after) = rest2.strip_prefix(',') {
                r = after;
            } else if let Some(after) = rest2.strip_prefix(')') {
                return Ok((
                    Value::Skolem(std::sync::Arc::new(SkolemValue::new(function, args))),
                    after,
                ));
            } else {
                return Err(RelationalError::ExprError(
                    "skolem args not terminated".into(),
                ));
            }
        }
    }
    Err(RelationalError::ExprError(format!(
        "unrecognized value encoding: `{s}`"
    )))
}

/// Unescape until an unescaped stop character (or end of input). Returns
/// (text, remaining-including-stop).
fn unescape_until<'a>(s: &'a str, stops: &[char]) -> Result<(String, &'a str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some((_, 't')) => out.push('\t'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, other)) => out.push(other),
                None => return Err(RelationalError::ExprError("dangling escape".into())),
            }
        } else if stops.contains(&c) {
            return Ok((out, &s[i..]));
        } else {
            out.push(c);
        }
    }
    Ok((out, ""))
}

/// Encode a tuple as tab-separated encoded values.
pub fn encode_tuple(t: &Tuple) -> String {
    t.iter().map(encode_value).collect::<Vec<_>>().join("\t")
}

/// Decode a tuple line.
pub fn decode_tuple(line: &str) -> Result<Tuple> {
    if line.is_empty() {
        return Ok(Tuple::new(vec![]));
    }
    line.split('\t').map(decode_value).collect::<Result<_>>()
}

/// Export a whole instance: `#relation <name>` headers followed by tuple
/// lines, relations and tuples in deterministic order.
pub fn export_instance(instance: &Instance) -> String {
    let mut out = String::new();
    for rel in instance.relations() {
        let _ = writeln!(out, "#relation {}", rel.schema().name());
        for t in rel.iter() {
            let _ = writeln!(out, "{}", encode_tuple(t));
        }
    }
    out
}

/// Import tuples into an existing (typically empty) instance of the right
/// schema. Unknown relations and malformed tuples are errors.
pub fn import_instance(instance: &mut Instance, text: &str) -> Result<usize> {
    let mut current: Option<String> = None;
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("#relation ") {
            current = Some(name.to_string());
            continue;
        }
        let rel = current.as_ref().ok_or_else(|| {
            RelationalError::ExprError(format!(
                "line {}: tuple before any #relation header",
                lineno + 1
            ))
        })?;
        let tuple = decode_tuple(line)?;
        instance.insert(rel, tuple)?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DatabaseSchema, RelationSchema};
    use crate::tuple;
    use crate::value::ValueType;
    use proptest::prelude::*;

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Double(3.25),
            Value::Double(f64::NAN),
            Value::str(""),
            Value::str("hello world"),
            Value::str("tabs\tand\nnewlines\\and(parens),commas"),
        ] {
            let enc = encode_value(&v);
            assert_eq!(decode_value(&enc).unwrap(), v, "{enc}");
        }
    }

    #[test]
    fn skolem_roundtrips() {
        let nested = Value::skolem(
            "f(odd)name",
            vec![
                Value::str("Rat,x"),
                Value::skolem("g", vec![Value::Int(1)]),
                Value::Null,
            ],
        );
        let enc = encode_value(&nested);
        assert_eq!(decode_value(&enc).unwrap(), nested);
        let empty = Value::skolem("h", vec![]);
        assert_eq!(decode_value(&encode_value(&empty)).unwrap(), empty);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = tuple!["HIV", 1, 2.5, true];
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
        let empty = Tuple::new(vec![]);
        assert_eq!(decode_tuple(&encode_tuple(&empty)).unwrap(), empty);
    }

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new("T")
            .with_relation(
                RelationSchema::from_parts(
                    "O",
                    &[("org", ValueType::Str), ("oid", ValueType::Int)],
                )
                .unwrap(),
            )
            .unwrap()
            .with_relation(RelationSchema::from_parts("N", &[("v", ValueType::Str)]).unwrap())
            .unwrap()
    }

    #[test]
    fn instance_roundtrip() {
        let mut inst = Instance::new(schema());
        inst.insert("O", tuple!["HIV", 1]).unwrap();
        inst.insert(
            "O",
            Tuple::new(vec![
                Value::str("Rat"),
                Value::skolem("oid", vec![Value::str("Rat")]),
            ]),
        )
        .unwrap();
        inst.insert("N", tuple!["weird\tvalue"]).unwrap();

        let text = export_instance(&inst);
        let mut restored = Instance::new(schema());
        let n = import_instance(&mut restored, &text).unwrap();
        assert_eq!(n, 3);
        assert_eq!(restored, inst);
    }

    #[test]
    fn import_errors() {
        let mut inst = Instance::new(schema());
        assert!(import_instance(&mut inst, "s:x").is_err(), "no header");
        assert!(
            import_instance(&mut inst, "#relation Zed\ns:x").is_err(),
            "unknown relation"
        );
        assert!(
            import_instance(&mut inst, "#relation N\nq:zzz").is_err(),
            "bad encoding"
        );
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        assert!(decode_value("i:1x").is_err());
        assert!(decode_value("NULLx").is_err());
        assert!(decode_value("k:f(").is_err());
        assert!(decode_value("zzz").is_err());
    }

    proptest! {
        #[test]
        fn value_roundtrip_prop(v in value_strategy()) {
            let enc = encode_value(&v);
            prop_assert_eq!(decode_value(&enc).unwrap(), v);
        }

        #[test]
        fn tuple_roundtrip_prop(vals in proptest::collection::vec(value_strategy(), 0..5)) {
            let t = Tuple::new(vals);
            prop_assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
        }
    }

    fn value_strategy() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Double),
            "[a-zA-Z0-9 ,()\\\\\t]{0,12}".prop_map(Value::from),
        ];
        leaf.prop_recursive(2, 8, 3, |inner| {
            ("[a-z]{1,6}", proptest::collection::vec(inner, 0..3))
                .prop_map(|(f, args)| Value::skolem(f, args))
        })
    }
}
