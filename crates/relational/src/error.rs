//! Error type shared by the relational substrate.

use std::fmt;

/// Errors raised by the relational layer.
///
/// The CDSS layers above convert these into their own error domains; keeping
/// the set small and structural (rather than stringly-typed) lets callers
/// match on the failure mode, e.g. reconciliation treats [`KeyConflict`]
/// specially when applying accepted transactions.
///
/// [`KeyConflict`]: RelationalError::KeyConflict
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A relation name was not found in a schema or instance.
    UnknownRelation(String),
    /// A column name was not found in a relation schema.
    UnknownColumn { relation: String, column: String },
    /// A tuple's arity does not match its relation schema.
    ArityMismatch {
        relation: String,
        expected: usize,
        actual: usize,
    },
    /// A value's type does not match the declared column type.
    TypeMismatch {
        relation: String,
        column: String,
        expected: String,
        actual: String,
    },
    /// An insert would violate the relation's key: a different tuple with the
    /// same key projection already exists.
    KeyConflict { relation: String, key: String },
    /// A tuple targeted by a delete/modify does not exist.
    NoSuchTuple { relation: String, key: String },
    /// A schema was declared inconsistently (duplicate columns, key columns
    /// out of range, duplicate relation names, ...).
    InvalidSchema(String),
    /// An expression referenced a column index outside the tuple arity, or
    /// was evaluated against incompatible operand types.
    ExprError(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}`")
            }
            RelationalError::UnknownColumn { relation, column } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            RelationalError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for `{relation}`: schema has {expected} columns, tuple has {actual}"
            ),
            RelationalError::TypeMismatch {
                relation,
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch for `{relation}.{column}`: expected {expected}, got {actual}"
            ),
            RelationalError::KeyConflict { relation, key } => {
                write!(f, "key conflict in `{relation}` on key {key}")
            }
            RelationalError::NoSuchTuple { relation, key } => {
                write!(f, "no tuple in `{relation}` with key {key}")
            }
            RelationalError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            RelationalError::ExprError(msg) => write!(f, "expression error: {msg}"),
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_relation() {
        let e = RelationalError::UnknownRelation("R".into());
        assert_eq!(e.to_string(), "unknown relation `R`");
    }

    #[test]
    fn display_arity_mismatch() {
        let e = RelationalError::ArityMismatch {
            relation: "R".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("schema has 3 columns"));
        assert!(e.to_string().contains("tuple has 2"));
    }

    #[test]
    fn display_key_conflict_and_type_mismatch() {
        let e = RelationalError::KeyConflict {
            relation: "R".into(),
            key: "(1)".into(),
        };
        assert!(e.to_string().contains("key conflict"));
        let e = RelationalError::TypeMismatch {
            relation: "R".into(),
            column: "a".into(),
            expected: "Int".into(),
            actual: "Str".into(),
        };
        assert!(e.to_string().contains("expected Int, got Str"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(RelationalError::ExprError("bad".into()));
        assert!(e.to_string().contains("bad"));
    }
}
