//! Scalar expressions over tuples.
//!
//! Trust conditions in the reconciliation layer ("trust updates to `OPS`
//! where `org = 'HIV'` with priority 2") and filters in mapping bodies are
//! built from these expressions.

use crate::error::RelationalError;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::fmt;

/// A scalar expression evaluated against a single tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// The value in column `i` of the input tuple.
    Column(usize),
    /// A literal value.
    Const(Value),
    /// Integer/float addition; string concatenation when both sides are strings.
    Add(Box<Expr>, Box<Expr>),
    /// Integer/float subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Integer/float multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Length of a string column, as `Int`.
    StrLen(Box<Expr>),
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Column(i) => tuple.get(*i).cloned().ok_or_else(|| {
                RelationalError::ExprError(format!(
                    "column {i} out of range for tuple of arity {}",
                    tuple.arity()
                ))
            }),
            Expr::Const(v) => Ok(v.clone()),
            Expr::Add(l, r) => binop(l.eval(tuple)?, r.eval(tuple)?, "+"),
            Expr::Sub(l, r) => binop(l.eval(tuple)?, r.eval(tuple)?, "-"),
            Expr::Mul(l, r) => binop(l.eval(tuple)?, r.eval(tuple)?, "*"),
            Expr::StrLen(e) => match e.eval(tuple)? {
                Value::Str(s) => Ok(Value::Int(s.len() as i64)),
                other => Err(RelationalError::ExprError(format!(
                    "strlen expects Str, got {}",
                    other.type_name()
                ))),
            },
        }
    }

    /// The largest column index referenced, if any (used to validate an
    /// expression against a schema arity ahead of evaluation).
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Expr::Column(i) => Some(*i),
            Expr::Const(_) => None,
            Expr::Add(l, r) | Expr::Sub(l, r) | Expr::Mul(l, r) => {
                match (l.max_column(), r.max_column()) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                }
            }
            Expr::StrLen(e) => e.max_column(),
        }
    }
}

fn binop(l: Value, r: Value, op: &str) -> Result<Value> {
    match (op, &l, &r) {
        ("+", Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
        ("-", Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
        ("*", Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
        ("+", Value::Double(a), Value::Double(b)) => Ok(Value::Double(a + b)),
        ("-", Value::Double(a), Value::Double(b)) => Ok(Value::Double(a - b)),
        ("*", Value::Double(a), Value::Double(b)) => Ok(Value::Double(a * b)),
        ("+", Value::Str(a), Value::Str(b)) => {
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(a);
            s.push_str(b);
            Ok(Value::from(s))
        }
        _ => Err(RelationalError::ExprError(format!(
            "cannot apply `{op}` to {} and {}",
            l.type_name(),
            r.type_name()
        ))),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "${i}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Add(l, r) => write!(f, "({l} + {r})"),
            Expr::Sub(l, r) => write!(f, "({l} - {r})"),
            Expr::Mul(l, r) => write!(f, "({l} * {r})"),
            Expr::StrLen(e) => write!(f, "strlen({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn column_and_const() {
        let t = tuple![10, "x"];
        assert_eq!(Expr::col(0).eval(&t).unwrap(), Value::Int(10));
        assert_eq!(Expr::lit(5).eval(&t).unwrap(), Value::Int(5));
    }

    #[test]
    fn column_out_of_range_errors() {
        let t = tuple![1];
        assert!(Expr::col(3).eval(&t).is_err());
    }

    #[test]
    fn integer_arithmetic() {
        let t = tuple![10, 3];
        let add = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        let sub = Expr::Sub(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        let mul = Expr::Mul(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert_eq!(add.eval(&t).unwrap(), Value::Int(13));
        assert_eq!(sub.eval(&t).unwrap(), Value::Int(7));
        assert_eq!(mul.eval(&t).unwrap(), Value::Int(30));
    }

    #[test]
    fn double_arithmetic() {
        let t = tuple![1.5, 2.0];
        let add = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert_eq!(add.eval(&t).unwrap(), Value::Double(3.5));
    }

    #[test]
    fn string_concat() {
        let t = tuple!["ab", "cd"];
        let cat = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert_eq!(cat.eval(&t).unwrap(), Value::str("abcd"));
    }

    #[test]
    fn mixed_types_error() {
        let t = tuple![1, "x"];
        let add = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert!(matches!(add.eval(&t), Err(RelationalError::ExprError(_))));
    }

    #[test]
    fn strlen() {
        let t = tuple!["hello"];
        assert_eq!(
            Expr::StrLen(Box::new(Expr::col(0))).eval(&t).unwrap(),
            Value::Int(5)
        );
        let t2 = tuple![7];
        assert!(Expr::StrLen(Box::new(Expr::col(0))).eval(&t2).is_err());
    }

    #[test]
    fn wrapping_semantics() {
        let t = tuple![i64::MAX, 1];
        let add = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert_eq!(add.eval(&t).unwrap(), Value::Int(i64::MIN));
    }

    #[test]
    fn max_column() {
        let e = Expr::Add(
            Box::new(Expr::col(2)),
            Box::new(Expr::Mul(Box::new(Expr::col(5)), Box::new(Expr::lit(1)))),
        );
        assert_eq!(e.max_column(), Some(5));
        assert_eq!(Expr::lit(1).max_column(), None);
        assert_eq!(Expr::StrLen(Box::new(Expr::col(1))).max_column(), Some(1));
    }

    #[test]
    fn display() {
        let e = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::lit(3)));
        assert_eq!(e.to_string(), "($0 + 3)");
    }
}
