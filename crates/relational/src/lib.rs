//! # orchestra-relational
//!
//! The in-memory relational storage substrate underneath the Orchestra CDSS.
//!
//! The original Orchestra prototype (SIGMOD 2007 demonstration) ran its update
//! exchange programs over a commercial RDBMS. This crate replaces that backend
//! with a self-contained, deterministic, laptop-scale engine providing exactly
//! the pieces the CDSS layers need:
//!
//! * [`Value`] — a typed value domain including **labeled nulls** (Skolem
//!   values), which the mapping layer invents for existentially quantified
//!   variables in tuple-generating dependencies (e.g. `MC→A` in the paper's
//!   Figure 2 must invent `oid`/`pid` identifiers when splitting `OPS` back
//!   into `O`, `P`, `S`).
//! * [`Tuple`] — an immutable, cheaply clonable row.
//! * [`RelationSchema`] / [`DatabaseSchema`] — named, typed relation
//!   signatures with declared keys (keys drive update semantics and conflict
//!   detection in reconciliation).
//! * [`Relation`] — a keyed tuple store with secondary hash indexes.
//! * [`Instance`] — a database instance (one per peer), with snapshot
//!   diffing used by `publish`.
//! * [`Predicate`] / [`Expr`] — scalar expressions and predicates evaluated
//!   over tuples; trust conditions in the reconciliation layer are built from
//!   these.
//! * [`ValueInterner`] / [`Sym`] / [`SymTuple`] — dense `u32` symbols for
//!   values, the representation the datalog engine's join pipeline runs on
//!   (integer equality/hashing, fixed-width index keys).
//! * [`ShardedRel`] — hash-partitioned, insertion-ordered relation shards
//!   with per-shard `[Sym]` probe tables, the storage the shard-parallel
//!   evaluation engine runs on.
//! * [`WorkerPool`] ([`exec`]) — the reusable `std::thread` pool that
//!   executes shard tasks (crates.io is unreachable, so no rayon).

pub mod error;
pub mod exec;
pub mod expr;
pub mod instance;
pub mod intern;
pub mod io;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod shard;
pub mod tuple;
pub mod value;

pub use error::RelationalError;
pub use exec::{default_threads, host_parallelism, Job, WorkerPool};
pub use expr::Expr;
pub use instance::Instance;
pub use intern::{InternerStats, Sym, SymTuple, ValueInterner};
pub use predicate::{CmpOp, Predicate};
pub use relation::Relation;
pub use schema::{ColumnDef, DatabaseSchema, RelationSchema};
pub use shard::{RelShardWriter, ShardedRel, DEFAULT_SHARDS};
pub use tuple::Tuple;
pub use value::{SkolemValue, Value, ValueType};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RelationalError>;
