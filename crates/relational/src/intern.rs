//! Value interning: `Value` ⇄ dense `u32` symbols.
//!
//! The update-exchange engine's inner loops — semi-naive join probes,
//! fixpoint membership checks, provenance-node interning — previously paid
//! deep structural hashing on every `Value` (strings walk their bytes,
//! labeled nulls walk their whole argument tree) and cloned `Arc<str>`s to
//! build per-probe index keys. [`ValueInterner`] collapses every distinct
//! value to one dense [`Sym`] so that, inside the engine:
//!
//! * tuple equality and hashing are word-wide integer operations
//!   ([`SymTuple`]);
//! * index keys are fixed-width `[Sym]` slices — no per-probe `Vec<Value>`
//!   materialization;
//! * inventing a labeled null during rule firing is one hash-map probe
//!   over `(function, arg syms)` instead of allocating a `SkolemValue`
//!   tree ([`ValueInterner::intern_skolem`]).
//!
//! Symbols are **process-local**: they encode insertion order, so they
//! must never be persisted. Durable layers (the WAL codec) serialize the
//! resolved [`Value`] structurally; on recovery a fresh interner may
//! assign completely different symbols and the engine state is still
//! identical (see `crates/core/tests/durable_intern_roundtrip.rs`).

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dense symbol for an interned [`Value`]. Two symbols from the same
/// interner are equal iff their values are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// Sentinel for "no symbol" (unbound join variable). Never returned
    /// by an interner.
    pub const NONE: Sym = Sym(u32::MAX);

    /// True iff this is the [`Sym::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }

    /// The dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An immutable row of interned symbols — the engine-internal twin of
/// [`Tuple`]. Clones are a pointer bump; equality and hashing touch only
/// `u32`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymTuple(Arc<[Sym]>);

impl SymTuple {
    /// Build from symbols.
    pub fn new(syms: Vec<Sym>) -> Self {
        SymTuple(syms.into())
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// True iff the tuple has no columns.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// All symbols as a slice.
    #[inline]
    pub fn syms(&self) -> &[Sym] {
        &self.0
    }

    /// The symbol at column `i`, if in range.
    pub fn get(&self, i: usize) -> Option<Sym> {
        self.0.get(i).copied()
    }
}

impl std::ops::Index<usize> for SymTuple {
    type Output = Sym;
    #[inline]
    fn index(&self, i: usize) -> &Sym {
        &self.0[i]
    }
}

impl FromIterator<Sym> for SymTuple {
    fn from_iter<T: IntoIterator<Item = Sym>>(iter: T) -> Self {
        SymTuple(iter.into_iter().collect())
    }
}

/// Interner counters, surfaced through `EngineStats` into the experiment
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InternerStats {
    /// Distinct values interned (current size of the symbol table).
    pub symbols: u64,
    /// `intern` calls answered from the table (no new symbol).
    pub hits: u64,
    /// Labeled nulls invented through the skolem fast path.
    pub skolem_fast_path: u64,
}

/// The `Value` ⇄ [`Sym`] table.
///
/// Interning is injective: `intern(a) == intern(b)` iff `a == b`, so the
/// engine compares symbols where it used to compare values. Resolution
/// (`Sym` → `&Value`) is a dense-vector index.
#[derive(Debug, Clone, Default)]
pub struct ValueInterner {
    by_id: Vec<Value>,
    by_value: HashMap<Value, Sym>,
    /// Fast path for labeled nulls invented during rule firing: function
    /// symbol → (arg symbols → labeled-null symbol). Two levels so a hit
    /// probes with borrowed `&str` / `&[Sym]` keys — no allocation in the
    /// hot loop, and no `SkolemValue` tree rebuilt just to look it up.
    skolems: HashMap<Arc<str>, HashMap<Box<[Sym]>, Sym>>,
    hits: u64,
    skolem_fast_path: u64,
}

impl ValueInterner {
    /// An empty interner.
    pub fn new() -> Self {
        ValueInterner::default()
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Current counters.
    pub fn stats(&self) -> InternerStats {
        InternerStats {
            symbols: self.by_id.len() as u64,
            hits: self.hits,
            skolem_fast_path: self.skolem_fast_path,
        }
    }

    /// Intern a value, returning its symbol (existing or fresh).
    pub fn intern(&mut self, v: &Value) -> Sym {
        if let Some(&s) = self.by_value.get(v) {
            self.hits += 1;
            return s;
        }
        self.insert_new(v.clone())
    }

    fn insert_new(&mut self, v: Value) -> Sym {
        // analyze: allow(panic) -- u32 symbol capacity (4B interned values) is an accepted engine limit
        let s = Sym(u32::try_from(self.by_id.len()).expect("interner overflow"));
        self.by_id.push(v.clone());
        self.by_value.insert(v, s);
        s
    }

    /// Look up a value's symbol without interning.
    pub fn get(&self, v: &Value) -> Option<Sym> {
        self.by_value.get(v).copied()
    }

    /// The value behind a symbol. Panics on a foreign/sentinel symbol —
    /// symbols only come from this interner.
    #[inline]
    pub fn resolve(&self, s: Sym) -> &Value {
        &self.by_id[s.index()]
    }

    /// Intern every column of a tuple.
    pub fn intern_tuple(&mut self, t: &Tuple) -> SymTuple {
        t.values().iter().map(|v| self.intern(v)).collect()
    }

    /// Look up a tuple without interning: `None` if **any** column was
    /// never interned (then no stored tuple can equal it).
    pub fn get_tuple(&self, t: &Tuple) -> Option<SymTuple> {
        t.values()
            .iter()
            .map(|v| self.get(v))
            .collect::<Option<_>>()
    }

    /// Resolve a symbol tuple back to values.
    pub fn resolve_tuple(&self, st: &SymTuple) -> Tuple {
        st.syms().iter().map(|&s| self.resolve(s).clone()).collect()
    }

    /// Look up the labeled null `function(args…)` **without** interning
    /// and without touching any counter: `Some` iff this exact null was
    /// invented before. This is the read-only arm of the skolem fast path
    /// that parallel merge workers run against the round-start snapshot —
    /// a hit is reported back and folded through
    /// [`note_skolem_hits`](Self::note_skolem_hits) so the counters stay
    /// byte-identical to the sequential path; a miss defers the firing to
    /// the sequential pre-pass, the only place that mutates the interner.
    #[inline]
    pub fn get_skolem(&self, function: &Arc<str>, args: &[Sym]) -> Option<Sym> {
        self.skolems
            .get(function.as_ref() as &str)
            .and_then(|by_args| by_args.get(args))
            .copied()
    }

    /// Fold `n` read-only skolem fast-path hits (observed by workers via
    /// [`get_skolem`](Self::get_skolem)) into the counter, keeping
    /// [`InternerStats`] identical to a run where every firing went
    /// through [`intern_skolem`](Self::intern_skolem) sequentially.
    pub fn note_skolem_hits(&mut self, n: u64) {
        self.skolem_fast_path += n;
    }

    /// Intern the labeled null `function(args…)` from already-interned
    /// argument symbols. After the first invention of a given null, this
    /// is a single hash probe over integers — the hot path of Skolem-head
    /// rule firing.
    pub fn intern_skolem(&mut self, function: &Arc<str>, args: &[Sym]) -> Sym {
        // Borrowed-key probes (`&str`, then `&[Sym]`): a hit allocates
        // nothing.
        if let Some(&s) = self
            .skolems
            .get(function.as_ref() as &str)
            .and_then(|by_args| by_args.get(args))
        {
            self.skolem_fast_path += 1;
            return s;
        }
        let value = Value::Skolem(Arc::new(crate::value::SkolemValue::new(
            Arc::clone(function),
            args.iter().map(|&a| self.resolve(a).clone()).collect(),
        )));
        let s = self.intern(&value);
        self.skolems
            .entry(Arc::clone(function))
            .or_default()
            .insert(Box::from(args), s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn intern_is_injective_and_idempotent() {
        let mut i = ValueInterner::new();
        let a = i.intern(&Value::str("x"));
        let b = i.intern(&Value::str("x"));
        let c = i.intern(&Value::str("y"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert_eq!(i.stats().hits, 1);
        assert_eq!(i.resolve(a), &Value::str("x"));
    }

    #[test]
    fn tuple_roundtrip() {
        let mut i = ValueInterner::new();
        let t = tuple!["HIV", 42, 2.5];
        let st = i.intern_tuple(&t);
        assert_eq!(st.arity(), 3);
        assert_eq!(i.resolve_tuple(&st), t);
        // Same values → same symbols → equal SymTuples.
        assert_eq!(i.intern_tuple(&tuple!["HIV", 42, 2.5]), st);
    }

    #[test]
    fn get_tuple_without_interning() {
        let mut i = ValueInterner::new();
        assert_eq!(i.get_tuple(&tuple![1]), None);
        let st = i.intern_tuple(&tuple![1, 2]);
        assert_eq!(i.get_tuple(&tuple![1, 2]), Some(st));
        assert_eq!(i.get_tuple(&tuple![1, 3]), None, "3 never interned");
        assert_eq!(i.len(), 2, "get does not intern");
    }

    #[test]
    fn skolem_fast_path_matches_structural_interning() {
        let mut i = ValueInterner::new();
        let f: Arc<str> = Arc::from("f_m1_oid");
        let a1 = i.intern(&Value::str("HIV"));
        let a2 = i.intern(&Value::Int(3));
        let fast = i.intern_skolem(&f, &[a1, a2]);
        // Structural interning of the same labeled null must agree.
        let structural = i.intern(&Value::skolem(
            Arc::clone(&f),
            vec![Value::str("HIV"), Value::Int(3)],
        ));
        assert_eq!(fast, structural);
        // Second invention takes the integer fast path.
        let again = i.intern_skolem(&f, &[a1, a2]);
        assert_eq!(again, fast);
        assert_eq!(i.stats().skolem_fast_path, 1);
        // Different args → different null.
        assert_ne!(i.intern_skolem(&f, &[a2, a1]), fast);
    }

    #[test]
    fn get_skolem_is_read_only_and_counter_neutral() {
        let mut i = ValueInterner::new();
        let f: Arc<str> = Arc::from("f");
        let a = i.intern(&Value::Int(1));
        assert_eq!(i.get_skolem(&f, &[a]), None, "never invented");
        let s = i.intern_skolem(&f, &[a]);
        let before = i.stats();
        assert_eq!(i.get_skolem(&f, &[a]), Some(s));
        assert_eq!(i.stats(), before, "lookup bumps no counter");
        i.note_skolem_hits(3);
        assert_eq!(i.stats().skolem_fast_path, before.skolem_fast_path + 3);
    }

    #[test]
    fn sym_tuple_is_integer_keyed() {
        let mut i = ValueInterner::new();
        let a = i.intern_tuple(&tuple!["a", "b"]);
        let b = i.intern_tuple(&tuple!["a", "b"]);
        assert_eq!(a, b);
        assert_eq!(a[0], b[0]);
        assert!(a.get(2).is_none());
        assert!(!a.is_empty());
        assert_eq!(a.syms().len(), 2);
    }

    #[test]
    fn none_sentinel() {
        assert!(Sym::NONE.is_none());
        assert!(!Sym(0).is_none());
        assert_eq!(Sym(7).to_string(), "s7");
    }

    #[test]
    fn nested_skolem_values_intern() {
        let mut i = ValueInterner::new();
        let inner = Value::skolem("g", vec![Value::Int(7)]);
        let outer = Value::skolem("f", vec![inner.clone(), Value::str("x")]);
        let s_outer = i.intern(&outer);
        let s_inner = i.intern(&inner);
        assert_ne!(s_outer, s_inner);
        assert_eq!(i.resolve(s_outer), &outer);
    }
}
