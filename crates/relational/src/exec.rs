//! A reusable `std::thread` worker pool for shard-parallel evaluation.
//!
//! crates.io is unreachable from the build environment, so instead of
//! rayon this module hand-rolls the one primitive the engine needs: run a
//! batch of borrowed closures to completion across a fixed set of
//! threads, with the **caller participating** as one of the workers.
//!
//! A [`WorkerPool`] of size `n` spawns `n - 1` helper threads once and
//! parks them between batches; [`WorkerPool::run`] pushes the batch onto a
//! shared queue, works the queue from the calling thread until the batch
//! drains, then blocks until every job has *finished* (not merely been
//! popped). Because `run` never returns before the last job completes, it
//! can safely execute closures that borrow the caller's stack — the
//! lifetime erasure below is sound by that barrier.
//!
//! Panics inside a job are caught on the executing thread and re-raised
//! from `run`, so a failing parallel task fails the evaluation loudly
//! instead of poisoning a worker.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One unit of parallel work. Borrows are allowed (`'a`): the pool
/// guarantees the job has finished before [`WorkerPool::run`] returns.
pub type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

type ErasedJob = Box<dyn FnOnce() + Send + 'static>;

/// Completion state of one `run` batch.
struct Batch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Batch {
    fn new(n: usize) -> Arc<Batch> {
        Arc::new(Batch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        })
    }

    /// Execute one job of this batch, recording panics and signalling the
    /// batch when the last job finishes.
    fn execute(&self, job: ErasedJob) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        if result.is_err() {
            self.panicked.store(true, Ordering::SeqCst);
        }
        let mut left = self.remaining.lock().expect("batch lock"); // analyze: allow(panic) -- a poisoned lock means a worker already panicked; unwinding propagates it
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }
}

struct QueueState {
    jobs: VecDeque<(ErasedJob, Arc<Batch>)>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
}

/// A fixed-size pool of reusable worker threads (see module docs).
///
/// The pool's *size* counts the calling thread: `WorkerPool::new(4)`
/// spawns three helpers and `run` supplies the fourth lane itself, so an
/// engine configured for `n` threads uses exactly `n` cores at peak.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .finish()
    }
}

impl WorkerPool {
    /// A pool executing up to `size` jobs concurrently (`size - 1` helper
    /// threads plus the caller). `size` is clamped to at least 1; a pool
    /// of size 1 spawns nothing and `run` degenerates to a plain loop.
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let handles = (1..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orchestra-eval-{i}"))
                    .spawn(move || helper_loop(&shared))
                    // analyze: allow(panic) -- pool construction happens at startup; no spawn means no evaluator at all
                    .expect("spawn eval worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            size,
        }
    }

    /// Number of concurrent lanes (helpers + the caller).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run every job to completion, using the helper threads plus the
    /// calling thread. Returns only after the **last** job has finished;
    /// re-raises the first panic observed in any job.
    pub fn run(&self, jobs: Vec<Job<'_>>) {
        if jobs.is_empty() {
            return;
        }
        let batch = Batch::new(jobs.len());
        {
            let mut q = self.shared.queue.lock().expect("queue lock"); // analyze: allow(panic) -- a poisoned lock means a worker already panicked; unwinding propagates it
            for job in jobs {
                // SAFETY: `run` blocks below until `batch.remaining == 0`,
                // i.e. until every erased job has returned. The borrows
                // inside the job therefore strictly outlive its execution.
                let erased: ErasedJob = unsafe { std::mem::transmute::<Job<'_>, ErasedJob>(job) };
                q.jobs.push_back((erased, Arc::clone(&batch)));
            }
        }
        self.shared.available.notify_all();
        // Work the queue from this thread until nothing is left to pop,
        // then wait for in-flight jobs on other threads to finish.
        loop {
            let popped = {
                let mut q = self.shared.queue.lock().expect("queue lock"); // analyze: allow(panic) -- a poisoned lock means a worker already panicked; unwinding propagates it
                q.jobs.pop_front()
            };
            match popped {
                Some((job, b)) => b.execute(job),
                None => break,
            }
        }
        let mut left = batch.remaining.lock().expect("batch lock"); // analyze: allow(panic) -- a poisoned lock means a worker already panicked; unwinding propagates it
        while *left > 0 {
            left = batch.done.wait(left).expect("batch wait"); // analyze: allow(panic) -- a poisoned lock means a worker already panicked; unwinding propagates it
        }
        drop(left);
        if batch.panicked.load(Ordering::SeqCst) {
            // analyze: allow(panic) -- deliberate: re-raises a worker panic on the caller's thread instead of losing it
            panic!("a parallel evaluation task panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue lock"); // analyze: allow(panic) -- a poisoned lock means a worker already panicked; unwinding propagates it
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn helper_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock"); // analyze: allow(panic) -- a poisoned lock means a worker already panicked; unwinding propagates it
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.available.wait(q).expect("queue wait"); // analyze: allow(panic) -- a poisoned lock means a worker already panicked; unwinding propagates it
            }
        };
        match job {
            Some((job, batch)) => batch.execute(job),
            None => return,
        }
    }
}

/// The host's available parallelism (at least 1). The engine's *default*
/// thread count is clamped to this: the deterministic pipeline gains
/// nothing from oversubscription, and merge-heavy workloads measurably
/// regress when more lanes than cores contend for the same round barrier
/// (E11). Explicitly configured thread counts are never clamped.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The default evaluation thread count: `ORCHESTRA_EVAL_THREADS` when set
/// to a positive integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ORCHESTRA_EVAL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    host_parallelism()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Job<'_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn jobs_may_borrow_the_callers_stack() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let mut slots: Vec<u64> = vec![0; 4];
        {
            let chunks: Vec<&[u64]> = data.chunks(25).collect();
            let jobs: Vec<Job<'_>> = slots
                .iter_mut()
                .zip(chunks)
                .map(|(slot, chunk)| {
                    Box::new(move || {
                        *slot = chunk.iter().sum();
                    }) as Job<'_>
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(slots.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.size(), 1);
        let mut hit = false;
        pool.run(vec![Box::new(|| {
            hit = true;
        })]);
        assert!(hit);
    }

    #[test]
    fn reusable_across_batches() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            let jobs: Vec<Job<'_>> = (0..8)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }) as Job<'_>
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 80);
    }

    #[test]
    fn panic_in_job_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(vec![Box::new(|| panic!("boom")) as Job<'_>]);
        }));
        assert!(caught.is_err());
        // The pool still works after a panicked batch.
        let counter = AtomicUsize::new(0);
        pool.run(vec![Box::new(|| {
            counter.fetch_add(1, Ordering::SeqCst);
        }) as Job<'_>]);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
