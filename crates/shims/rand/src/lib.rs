//! Offline shim for the subset of `rand` this workspace uses.
//!
//! Workloads only need a deterministic, seedable generator with uniform
//! range sampling — statistical quality beyond splitmix64 is irrelevant
//! here, and the build environment cannot fetch the real crate.

/// Seedable construction (the only entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over a raw `u64` source.
pub trait RngExt {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 bits of mantissa gives a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p.clamp(0.0, 1.0)
    }
}

/// A half-open range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one sample.
    fn sample<R: RngExt>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngExt>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(3..17u32);
            assert!((3..17).contains(&v));
            let v = r.random_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let f = r.random_range(0.0..2.0f64);
            assert!((0.0..2.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
        // p = 0.5 mixes.
        let heads = (0..1000).filter(|_| r.random_bool(0.5)).count();
        assert!((300..700).contains(&heads), "{heads}");
    }
}
