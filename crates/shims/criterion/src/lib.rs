//! Offline shim for the subset of `criterion` the workspace's benches use.
//!
//! The real crate cannot be fetched in this build environment. This harness
//! keeps the same source-level API (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_with_input`, `Bencher::iter`) and
//! reports min/mean/max wall-clock per iteration to stdout. It has no
//! statistical machinery — numbers are indicative, and the BENCH tables in
//! the repo treat them as such.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context (one per binary run).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Measure a single standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A parameterized benchmark identifier (`group/param` in the output).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from a function name plus parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// A named set of measurements sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Run one benchmark with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finish the group (purely cosmetic here).
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// this harness always runs setup once per timed sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collects timed samples of one routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time `sample_size` runs of `routine` (after one warmup run).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    /// Time `routine` over inputs produced by `setup`; only the routine
    /// is inside the timed window.
    pub fn iter_batched<I, T, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> T,
    {
        black_box(routine(setup()));
        self.samples = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples — iter was never called)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{label:<40} min {:>10} mean {:>10} max {:>10} ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declare a bench group function invoking each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        g.finish();
        // one warmup + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}
