//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate one value covering the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises negative zero, subnormals, infinities
        // and NaNs — exactly what bit-exact codecs must survive.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_generate() {
        let mut rng = TestRng::from_seed(9);
        let mut bools = std::collections::BTreeSet::new();
        for _ in 0..64 {
            bools.insert(any::<bool>().generate(&mut rng));
        }
        assert_eq!(bools.len(), 2);
        // i64 full range: both signs appear quickly.
        let mut signs = std::collections::BTreeSet::new();
        for _ in 0..64 {
            signs.insert(any::<i64>().generate(&mut rng).signum());
        }
        assert!(signs.contains(&1) && signs.contains(&-1));
        let _ = any::<f64>().generate(&mut rng);
        let _ = any::<char>().generate(&mut rng);
    }
}
