//! The glob-import surface mirroring `proptest::prelude`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Alias so `prop::sample::Index`, `prop::collection::vec`, … resolve
/// after a prelude glob import (as in real proptest).
pub use crate as prop;
