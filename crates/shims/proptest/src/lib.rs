//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot fetch the real crate, so this implements
//! the same *source-level* API — the [`Strategy`] trait with `prop_map` /
//! `prop_recursive`, range/tuple/collection/regex-string strategies, and
//! the `proptest!` / `prop_assert*` / `prop_oneof!` macros — over a small
//! deterministic generator. Differences from real proptest:
//!
//! * **No shrinking**: a failing case reports its inputs (via the panic
//!   message) but is not minimized.
//! * **Deterministic seeding**: the RNG seed is derived from the test
//!   function's name, so failures reproduce exactly across runs.
//! * Regex string strategies support the character-class-with-repetition
//!   subset actually used (`"[a-z0-9]{m,n}"`).

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Assert a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Choose uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $crate::__proptest_bind! { rng; $($args)* }
                    #[allow(unused_mut)]
                    let mut run = move ||
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(err) = run() {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}
