//! The deterministic generator and per-test configuration.

use std::fmt;

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (carried as a `Result` so `prop_assert!` can abort
/// one case without panicking through arbitrary user frames).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// splitmix64, seeded from the test's name: deterministic across runs and
/// machines, distinct between tests.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Seed directly (used by the shim's own tests).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let a1: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("beta");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn error_display() {
        assert_eq!(TestCaseError::fail("boom").to_string(), "boom");
    }
}
