//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `recurse`
    /// lifts a strategy for depth-`n` values into one for depth-`n+1`
    /// values. `depth` bounds the nesting; the sizing hints are accepted
    /// for API compatibility but unused.
    fn prop_recursive<F, R>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Each level is an even choice between bottoming out at a leaf
            // and recursing one level deeper, so generated depths vary.
            current = Union::new(vec![leaf.clone(), recurse(current).boxed()]).boxed();
        }
        current
    }

    /// Erase the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies of one value type (what
/// `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (nonempty) list of arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len());
        self.arms[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Closed upper end: scale a [0, 1] sample (unit_f64 is [0, 1), so
        // nudge the top on a second draw occasionally hitting exactly 1).
        let u = if rng.below(1 << 16) == 0 {
            1.0
        } else {
            rng.unit_f64()
        };
        self.start() + u * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_map() {
        let mut rng = TestRng::from_seed(1);
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut rng = TestRng::from_seed(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert((0u8..=3).generate(&mut rng));
        }
        assert_eq!(seen, (0..=3).collect());
    }

    #[test]
    fn union_covers_arms() {
        let mut rng = TestRng::from_seed(3);
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed()]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen, [1, 2].into_iter().collect());
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_seed(4);
        let (a, b, c) = (0u32..5, 10i64..12, Just("x")).generate(&mut rng);
        assert!(a < 5);
        assert!((10..12).contains(&b));
        assert_eq!(c, "x");
    }

    #[test]
    fn recursive_depth_is_bounded() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_seed(5);
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&s.generate(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion actually happens");
        assert!(max_depth <= 3, "depth bound respected");
    }
}
