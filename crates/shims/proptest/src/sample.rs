//! Sampling helpers (`prop::sample::Index`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An index into a collection whose length is only known at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(usize);

impl Index {
    /// Resolve against a collection of `len` elements (`len` must be
    /// nonzero).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index(0)");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_into_bounds() {
        let i = Index(17);
        assert_eq!(i.index(5), 2);
        assert_eq!(i.index(1), 0);
    }
}
