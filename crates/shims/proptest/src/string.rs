//! Regex-pattern string strategies: `"[a-z0-9]{1,8}"` as a `Strategy`.
//!
//! Supports the subset of regex syntax the workspace's tests use: literal
//! characters, character classes with ranges and `\t`/`\n`/`\\` escapes,
//! and `{n}` / `{m,n}` repetition suffixes. Anything unparsable falls back
//! to generating the pattern verbatim (matching real proptest's behavior
//! of treating the string as a regex is out of scope for a shim).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = match parse(pattern) {
        Some(a) => a,
        None => return pattern.to_string(),
    };
    let mut out = String::new();
    for atom in &atoms {
        let n = atom.min + rng.below(atom.max - atom.min + 1);
        for _ in 0..n {
            out.push(atom.chars[rng.below(atom.chars.len())]);
        }
    }
    out
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Option<Vec<Atom>> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = if chars[i] == '[' {
            let close = find_class_end(&chars, i + 1)?;
            let alphabet = parse_class(&chars[i + 1..close])?;
            i = close + 1;
            alphabet
        } else if chars[i] == '\\' {
            let c = unescape(*chars.get(i + 1)?);
            i += 2;
            vec![c]
        } else if "(){}|*+?^$.".contains(chars[i]) {
            // Unsupported metacharacter outside a class.
            return None;
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}')? + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                None => {
                    let n = body.trim().parse().ok()?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if max < min || alphabet.is_empty() {
            return None;
        }
        atoms.push(Atom {
            chars: alphabet,
            min,
            max,
        });
    }
    Some(atoms)
}

fn find_class_end(chars: &[char], mut i: usize) -> Option<usize> {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            ']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn parse_class(body: &[char]) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let c = if body[i] == '\\' {
            let c = unescape(*body.get(i + 1)?);
            i += 2;
            c
        } else {
            let c = body[i];
            i += 1;
            c
        };
        // A range like `a-z` (a trailing `-` is a literal).
        if i + 1 < body.len() && body[i] == '-' && body[i + 1] != ']' {
            let hi = if body[i + 1] == '\\' {
                let h = unescape(*body.get(i + 2)?);
                i += 3;
                h
            } else {
                let h = body[i + 1];
                i += 2;
                h
            };
            if (hi as u32) < (c as u32) {
                return None;
            }
            for u in c as u32..=hi as u32 {
                out.push(char::from_u32(u)?);
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn unescape(c: char) -> char {
    match c {
        't' => '\t',
        'n' => '\n',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_ranges_and_repetition() {
        let mut rng = TestRng::from_seed(21);
        let pat = "[a-z]{1,6}";
        for _ in 0..200 {
            let s = pat.generate(&mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn class_with_escapes_and_zero_min() {
        let mut rng = TestRng::from_seed(22);
        let pat = "[a-zA-Z0-9 ,()\\\\\t]{0,12}";
        let mut saw_empty = false;
        for _ in 0..300 {
            let s = pat.generate(&mut rng);
            assert!(s.chars().count() <= 12);
            saw_empty |= s.is_empty();
            for c in s.chars() {
                assert!(c.is_ascii_alphanumeric() || " ,()\\\t".contains(c), "{c:?}");
            }
        }
        assert!(saw_empty);
    }

    #[test]
    fn fixed_count_and_literals() {
        let mut rng = TestRng::from_seed(23);
        assert_eq!("[x]{3}".generate(&mut rng), "xxx");
        assert_eq!("abc".generate(&mut rng), "abc");
    }

    #[test]
    fn unsupported_patterns_fall_back_verbatim() {
        let mut rng = TestRng::from_seed(24);
        assert_eq!("(a|b)+".generate(&mut rng), "(a|b)+");
    }
}
