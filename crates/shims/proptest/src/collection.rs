//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A `Vec` of `size.start..size.end` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let n = self.size.start + rng.below(span.max(1));
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` of *up to* `size.end - 1` elements (duplicates collapse,
/// as in real proptest's set strategies).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty size range");
    BTreeSetStrategy { element, size }
}

/// The strategy returned by [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = self.size.end - self.size.start;
        let n = self.size.start + rng.below(span.max(1));
        let mut out = BTreeSet::new();
        // Bounded retries: small element domains may not have n distinct
        // values, in which case a smaller set is acceptable.
        let mut attempts = 0;
        while out.len() < n && attempts < n * 8 + 8 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_and_elements() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let v = vec(0u32..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_respects_minimum_when_domain_allows() {
        let mut rng = TestRng::from_seed(12);
        for _ in 0..100 {
            let s = btree_set(0u32..100, 3..6).generate(&mut rng);
            assert!(s.len() >= 3 && s.len() < 6);
        }
        // Tiny domain: sets shrink gracefully instead of spinning.
        let s = btree_set(0u32..2, 3..6).generate(&mut rng);
        assert!(s.len() <= 2);
    }
}
