//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim wraps `std::sync` primitives behind `parking_lot`'s
//! non-poisoning API (`read()`/`write()`/`lock()` return guards directly).
//! Poisoned locks are recovered rather than propagated: a panic while
//! holding a lock in one test must not cascade into unrelated tests.

use std::fmt;
use std::sync::PoisonError;

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// A mutex with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII mutex guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", RwLock::new(7)), "RwLock(7)");
        assert_eq!(format!("{:?}", Mutex::new(7)), "Mutex(7)");
    }
}
