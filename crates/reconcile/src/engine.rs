//! The greedy reconciliation algorithm with deferral and manual resolution.

use crate::candidate::Candidate;
use crate::error::ReconcileError;
use crate::state::Decision;
use crate::trust::TrustPolicy;
use crate::{Priority, Result, DISTRUSTED};
use orchestra_relational::{DatabaseSchema, Tuple};
use orchestra_updates::{DepGraph, Transaction, TxnId, WriteOutcome};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// One transaction's write set: (relation, key) → final outcome.
type WriteSet = BTreeMap<(Arc<str>, Tuple), WriteOutcome>;

/// What one reconciliation pass decided.
#[derive(Debug, Clone, Default)]
pub struct ReconcileOutcome {
    /// Transactions to apply, in dependency (topological) order. Includes
    /// distrusted antecedents pulled in by trusted dependents.
    pub accepted: Vec<Transaction>,
    /// Newly rejected transactions.
    pub rejected: Vec<TxnId>,
    /// Newly deferred transactions (await [`Reconciler::resolve`]).
    pub deferred: Vec<TxnId>,
}

/// What a manual resolution decided.
#[derive(Debug, Clone, Default)]
pub struct ResolveOutcome {
    /// Transactions to apply now, in dependency order (the winner plus its
    /// previously deferred dependents).
    pub accepted: Vec<Transaction>,
    /// Transactions rejected (the losers plus their dependents).
    pub rejected: Vec<TxnId>,
}

/// Per-peer reconciliation engine. Owns the peer's persistent decision
/// state across epochs: decisions, the transaction dependency graph, the
/// pool of seen candidates, accepted write history, and open conflicts.
#[derive(Debug, Clone)]
pub struct Reconciler {
    schema: DatabaseSchema,
    decisions: BTreeMap<TxnId, Decision>,
    graph: DepGraph,
    pool: BTreeMap<TxnId, Candidate>,
    /// (relation, key) → (last accepted writer, outcome).
    accepted_writes: BTreeMap<(Arc<str>, Tuple), (TxnId, WriteOutcome)>,
    /// Open same-priority conflicts awaiting the administrator.
    conflicts: Vec<(TxnId, TxnId)>,
    /// Memoized per-transaction write sets (immutable once computed: the
    /// transaction and schema never change). Saves recomputing key
    /// projections in every phase that looks at the same candidate.
    write_sets: HashMap<TxnId, Arc<WriteSet>>,
}

/// Per-pass memo of antecedent closures. Sound for the duration of any
/// region where no new transactions enter the dependency graph (closures
/// depend only on graph edges, never on decisions): one reconciliation
/// level, or one manual resolution. Without it, conflict detection on a
/// hot key recomputes the same closure for every one of O(writers²)
/// candidate pairs.
#[derive(Default)]
struct ClosureCache(HashMap<TxnId, Arc<BTreeSet<TxnId>>>);

impl ClosureCache {
    fn get(&mut self, graph: &DepGraph, id: &TxnId) -> Result<Arc<BTreeSet<TxnId>>> {
        if let Some(c) = self.0.get(id) {
            return Ok(Arc::clone(c));
        }
        let c = Arc::new(graph.antecedent_closure(id).map_err(ReconcileError::from)?);
        self.0.insert(id.clone(), Arc::clone(&c));
        Ok(c)
    }
}

impl Reconciler {
    /// A fresh reconciler for a peer with the given (local) schema.
    pub fn new(schema: DatabaseSchema) -> Self {
        Reconciler {
            schema,
            decisions: BTreeMap::new(),
            graph: DepGraph::new(),
            pool: BTreeMap::new(),
            accepted_writes: BTreeMap::new(),
            conflicts: Vec::new(),
            write_sets: HashMap::new(),
        }
    }

    /// The memoized write set of a pooled candidate.
    fn write_set_of(&mut self, id: &TxnId) -> Result<Arc<WriteSet>> {
        if let Some(ws) = self.write_sets.get(id) {
            return Ok(Arc::clone(ws));
        }
        let ws = Arc::new(
            self.pool[id]
                .txn
                .write_set(&self.schema)
                .map_err(ReconcileError::from)?,
        );
        self.write_sets.insert(id.clone(), Arc::clone(&ws));
        Ok(ws)
    }

    /// The recorded decision for a transaction, if any. Distrusted
    /// candidates stay undecided.
    pub fn decision(&self, id: &TxnId) -> Option<Decision> {
        self.decisions.get(id).copied()
    }

    /// Currently deferred transactions, in id order.
    pub fn deferred(&self) -> Vec<TxnId> {
        self.decisions
            .iter()
            .filter(|(_, d)| **d == Decision::Deferred)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Open conflict pairs awaiting resolution.
    pub fn open_conflicts(&self) -> &[(TxnId, TxnId)] {
        &self.conflicts
    }

    /// Register one of the peer's **own** published transactions: it is
    /// already applied locally, so it enters the decision state as
    /// accepted (with its writes in the accepted history) and the
    /// dependency graph as a node other peers' transactions may reference
    /// as an antecedent.
    ///
    /// Without this, a foreign transaction that modifies data this peer
    /// itself published would classify its antecedent as *missing* and be
    /// deferred forever.
    pub fn note_local(&mut self, txn: &Transaction) -> Result<()> {
        if self.decisions.contains_key(&txn.id) {
            return Err(ReconcileError::DuplicateCandidate(txn.id.to_string()));
        }
        self.graph
            .insert(txn.id.clone(), txn.antecedents.clone())
            .map_err(ReconcileError::from)?;
        self.record(txn.id.clone(), Decision::Accepted);
        let ws = txn.write_set(&self.schema).map_err(ReconcileError::from)?;
        for (key, outcome) in ws {
            self.accepted_writes.insert(key, (txn.id.clone(), outcome));
        }
        Ok(())
    }

    /// One reconciliation pass over newly translated candidates, under the
    /// peer's trust policy (Taylor & Ives' greedy algorithm).
    pub fn reconcile(
        &mut self,
        candidates: Vec<Candidate>,
        policy: &TrustPolicy,
    ) -> Result<ReconcileOutcome> {
        // Register candidates: pool + dependency graph.
        let mut level_map: BTreeMap<Priority, Vec<TxnId>> = BTreeMap::new();
        for c in candidates {
            let id = c.id().clone();
            if self.pool.contains_key(&id) {
                return Err(ReconcileError::DuplicateCandidate(id.to_string()));
            }
            self.graph
                .insert(id.clone(), c.txn.antecedents.clone())
                .map_err(ReconcileError::from)?;
            let priority = policy.txn_priority(&c);
            self.pool.insert(id.clone(), c);
            if priority > DISTRUSTED {
                level_map.entry(priority).or_default().push(id);
            }
        }

        let mut outcome = ReconcileOutcome::default();
        // Process levels from highest to lowest priority.
        for (_priority, ids) in level_map.into_iter().rev() {
            self.process_level(&ids, &mut outcome)?;
        }
        Ok(outcome)
    }

    fn process_level(&mut self, ids: &[TxnId], outcome: &mut ReconcileOutcome) -> Result<()> {
        // No transaction enters the graph during a level, so antecedent
        // closures can be computed once and shared by every phase.
        let mut closures = ClosureCache::default();
        // Phase a: classify candidates by antecedent state; build groups
        // (with their net write maps, computed once) for the eligible ones.
        let mut eligible: Vec<(TxnId, BTreeSet<TxnId>, GroupWrites)> = Vec::new();
        for id in ids {
            if self.decisions.contains_key(id) {
                continue; // Pulled in (or cascaded) earlier this pass.
            }
            match self.classify_antecedents(id)? {
                AntecedentState::Rejected => {
                    self.record(id.clone(), Decision::Rejected);
                    outcome.rejected.push(id.clone());
                }
                AntecedentState::Deferred | AntecedentState::Missing => {
                    self.record(id.clone(), Decision::Deferred);
                    outcome.deferred.push(id.clone());
                }
                AntecedentState::Ready(group) => {
                    let writes = self.group_writes(&group)?;
                    eligible.push((id.clone(), group, writes));
                }
            }
        }

        // Phase b: conflicts among same-level groups → defer both (the
        // administrator must pick — paper §3). Rather than all-pairs
        // write-set comparison, index writers by key: only groups writing
        // a common key can conflict.
        let mut deferred_now: BTreeSet<TxnId> = BTreeSet::new();
        {
            // key → [(eligible index, writer, outcome)].
            type WritersByKey<'a> =
                BTreeMap<&'a (Arc<str>, Tuple), Vec<(usize, &'a TxnId, &'a WriteOutcome)>>;
            let mut by_key: WritersByKey<'_> = BTreeMap::new();
            for (idx, (_, _, writes)) in eligible.iter().enumerate() {
                for (key, (writer, w_outcome)) in writes {
                    by_key
                        .entry(key)
                        .or_default()
                        .push((idx, writer, w_outcome));
                }
            }
            // Hot keys make this loop quadratic in their writer count, so
            // keep the per-pair work integer-cheap: fetch each writer's
            // antecedent closure once per key (not once per pair), collect
            // conflicting index pairs into a Vec, and sort+dedup at the
            // end (same set and order a BTreeSet would have produced).
            let mut conflicting_pairs: Vec<(usize, usize)> = Vec::new();
            for writers in by_key.values() {
                if writers.len() < 2 {
                    continue;
                }
                let writer_closures: Vec<Arc<BTreeSet<TxnId>>> = writers
                    .iter()
                    .map(|(_, w, _)| closures.get(&self.graph, w))
                    .collect::<Result<_>>()?;
                for a in 0..writers.len() {
                    for b in (a + 1)..writers.len() {
                        let (ia, wa, oa) = writers[a];
                        let (ib, wb, ob) = writers[b];
                        if ia == ib || oa == ob {
                            continue;
                        }
                        let related = wa == wb
                            || writer_closures[a].contains(wb)
                            || writer_closures[b].contains(wa);
                        if !related {
                            conflicting_pairs.push((ia.min(ib), ia.max(ib)));
                        }
                    }
                }
            }
            conflicting_pairs.sort_unstable();
            conflicting_pairs.dedup();
            for (ia, ib) in conflicting_pairs {
                let id_a = eligible[ia].0.clone();
                let id_b = eligible[ib].0.clone();
                self.conflicts.push((id_a.clone(), id_b.clone()));
                deferred_now.insert(id_a);
                deferred_now.insert(id_b);
            }
        }
        for id in &deferred_now {
            self.record(id.clone(), Decision::Deferred);
            outcome.deferred.push(id.clone());
        }

        // Phase c: accept survivors greedily (deterministic id order from
        // phase a), rejecting those that conflict with accepted history.
        for (id, group, writes) in eligible {
            if deferred_now.contains(&id) {
                continue;
            }
            if self.decisions.contains_key(&id) {
                continue; // Became accepted as part of an earlier group.
            }
            if self.writes_conflict_with_history(&mut closures, &writes)? {
                self.record(id.clone(), Decision::Rejected);
                outcome.rejected.push(id);
                continue;
            }
            self.accept_group(&group, outcome)?;
        }
        Ok(())
    }

    /// Classify a candidate by the decisions on its antecedent closure.
    ///
    /// Computes the closure directly rather than through a [`ClosureCache`]:
    /// classification touches each candidate exactly once per level, so
    /// caching here would only add insert overhead on conflict-free
    /// workloads (the cache pays off in the conflict phases, where hot
    /// keys revisit the same writers quadratically).
    fn classify_antecedents(&self, id: &TxnId) -> Result<AntecedentState> {
        let closure = self
            .graph
            .antecedent_closure(id)
            .map_err(ReconcileError::from)?;
        let mut group: BTreeSet<TxnId> = BTreeSet::from([id.clone()]);
        for ant in closure {
            match self.decisions.get(&ant) {
                Some(Decision::Rejected) => return Ok(AntecedentState::Rejected),
                Some(Decision::Deferred) => return Ok(AntecedentState::Deferred),
                Some(Decision::Accepted) => {} // Already applied; not in group.
                None => {
                    if self.pool.contains_key(&ant) {
                        group.insert(ant); // Undecided candidate: pull in.
                    } else {
                        // Forward reference to a transaction never seen.
                        return Ok(AntecedentState::Missing);
                    }
                }
            }
        }
        Ok(AntecedentState::Ready(group))
    }

    /// The net writes of a group: apply members in dependency order,
    /// last-writer-wins per key. Returns (key → (writer, outcome)).
    fn group_writes(&mut self, group: &BTreeSet<TxnId>) -> Result<GroupWrites> {
        let mut out: GroupWrites = BTreeMap::new();
        // Fast path: singleton groups (the common case) need no
        // ordering. An empty group falls through to the general path,
        // which yields an empty write set.
        if group.len() == 1 {
            if let Some(id) = group.iter().next().cloned() {
                for (key, outcome) in self.write_set_of(&id)?.iter() {
                    out.insert(key.clone(), (id.clone(), outcome.clone()));
                }
                return Ok(out);
            }
        }
        let order = subgraph_topo_order(&self.graph, group)?;
        for id in order {
            let ws = self.write_set_of(&id)?;
            for (key, outcome) in ws.iter() {
                out.insert(key.clone(), (id.clone(), outcome.clone()));
            }
        }
        Ok(out)
    }

    fn causally_related(&self, closures: &mut ClosureCache, a: &TxnId, b: &TxnId) -> Result<bool> {
        if a == b {
            return Ok(true);
        }
        if closures.get(&self.graph, a)?.contains(b) {
            return Ok(true);
        }
        Ok(closures.get(&self.graph, b)?.contains(a))
    }

    /// Does the group clash with the already-accepted write history?
    /// A dependent overwriting its accepted antecedent's data is fine.
    fn group_conflicts_with_history(
        &mut self,
        closures: &mut ClosureCache,
        group: &BTreeSet<TxnId>,
    ) -> Result<bool> {
        let writes = self.group_writes(group)?;
        self.writes_conflict_with_history(closures, &writes)
    }

    fn writes_conflict_with_history(
        &self,
        closures: &mut ClosureCache,
        writes: &GroupWrites,
    ) -> Result<bool> {
        for (key, (writer, outcome)) in writes {
            if let Some((accepted_writer, accepted_outcome)) = self.accepted_writes.get(key) {
                if outcome != accepted_outcome
                    && !self.causally_related(closures, writer, accepted_writer)?
                {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Accept every member of a group, in dependency order.
    fn accept_group(
        &mut self,
        group: &BTreeSet<TxnId>,
        outcome: &mut ReconcileOutcome,
    ) -> Result<()> {
        let order = subgraph_topo_order(&self.graph, group)?;
        for id in order {
            if self.decisions.get(&id) == Some(&Decision::Accepted) {
                continue;
            }
            self.record(id.clone(), Decision::Accepted);
            let ws = self.write_set_of(&id)?;
            for (key, w_outcome) in ws.iter() {
                self.accepted_writes
                    .insert(key.clone(), (id.clone(), w_outcome.clone()));
            }
            outcome.accepted.push(self.pool[&id].txn.clone());
        }
        Ok(())
    }

    fn record(&mut self, id: TxnId, d: Decision) {
        self.decisions.insert(id, d);
    }

    /// Manually resolve deferred conflicts in favor of `winner`.
    ///
    /// Per the paper: the winner is applied; deferred transactions that
    /// transitively depend on it are applied automatically; the losers
    /// (deferred transactions in open conflict with the winner) and all
    /// their dependents are rejected.
    pub fn resolve(&mut self, winner: &TxnId) -> Result<ResolveOutcome> {
        if self.decisions.get(winner) != Some(&Decision::Deferred) {
            return Err(ReconcileError::NotDeferred(winner.to_string()));
        }
        let mut out = ResolveOutcome::default();
        // The graph gains no transactions during a resolution.
        let mut closures = ClosureCache::default();

        // Losers: deferred counterparts in open conflicts with the winner.
        let mut losers: BTreeSet<TxnId> = BTreeSet::new();
        for (a, b) in &self.conflicts {
            if a == winner && self.decisions.get(b) == Some(&Decision::Deferred) {
                losers.insert(b.clone());
            } else if b == winner && self.decisions.get(a) == Some(&Decision::Deferred) {
                losers.insert(a.clone());
            }
        }

        // Reject losers and their dependents (deferred or undecided).
        for loser in &losers {
            self.record(loser.clone(), Decision::Rejected);
            out.rejected.push(loser.clone());
            let deps = self
                .graph
                .dependent_closure(loser)
                .map_err(ReconcileError::from)?;
            for d in deps {
                match self.decisions.get(&d) {
                    Some(Decision::Deferred) | None
                        if (self.pool.contains_key(&d) || self.decisions.contains_key(&d)) =>
                    {
                        self.record(d.clone(), Decision::Rejected);
                        out.rejected.push(d);
                    }
                    _ => {}
                }
            }
        }
        // Drop resolved conflict pairs.
        self.conflicts.retain(|(a, b)| {
            self.decisions.get(a) == Some(&Decision::Deferred)
                && self.decisions.get(b) == Some(&Decision::Deferred)
        });

        // Accept the winner (group semantics: pull undecided antecedents).
        self.decisions.remove(winner); // Allow classify/accept to re-run.
        match self.classify_antecedents(winner)? {
            AntecedentState::Ready(group) => {
                let mut tmp = ReconcileOutcome::default();
                self.accept_group(&group, &mut tmp)?;
                out.accepted.extend(tmp.accepted);
            }
            _ => {
                // Antecedents rejected/missing even after resolution: the
                // administrator's choice cannot be applied.
                self.record(winner.clone(), Decision::Rejected);
                out.rejected.push(winner.clone());
                return Ok(out);
            }
        }

        // Cascade: deferred dependents of the winner, in dependency order.
        let deps = self
            .graph
            .dependent_closure(winner)
            .map_err(ReconcileError::from)?;
        let deferred_deps: BTreeSet<TxnId> = deps
            .into_iter()
            .filter(|d| self.decisions.get(d) == Some(&Decision::Deferred))
            .collect();
        let order = subgraph_topo_order(&self.graph, &deferred_deps)?;
        for dep in order {
            if self.decisions.get(&dep) != Some(&Decision::Deferred) {
                continue;
            }
            self.decisions.remove(&dep);
            match self.classify_antecedents(&dep)? {
                AntecedentState::Ready(group) => {
                    if self.group_conflicts_with_history(&mut closures, &group)? {
                        self.record(dep.clone(), Decision::Rejected);
                        out.rejected.push(dep);
                    } else {
                        let mut tmp = ReconcileOutcome::default();
                        self.accept_group(&group, &mut tmp)?;
                        out.accepted.extend(tmp.accepted);
                    }
                }
                AntecedentState::Rejected => {
                    self.record(dep.clone(), Decision::Rejected);
                    out.rejected.push(dep);
                }
                AntecedentState::Deferred | AntecedentState::Missing => {
                    self.record(dep.clone(), Decision::Deferred);
                }
            }
        }
        Ok(out)
    }
}

enum AntecedentState {
    /// Some antecedent is rejected → candidate must be rejected.
    Rejected,
    /// Some antecedent is deferred → candidate must be deferred.
    Deferred,
    /// Some antecedent was never seen → cannot apply yet.
    Missing,
    /// Applicable: the group of the candidate plus undecided antecedents.
    Ready(BTreeSet<TxnId>),
}

/// A group's net writes: key → (last writer within the group, outcome).
type GroupWrites = BTreeMap<(Arc<str>, Tuple), (TxnId, WriteOutcome)>;

/// Topological order of `subset` using only dependency edges *within* the
/// subset — O(|subset| + edges) instead of ordering the whole graph.
fn subgraph_topo_order(
    graph: &orchestra_updates::DepGraph,
    subset: &BTreeSet<TxnId>,
) -> Result<Vec<TxnId>> {
    let mut in_deg: BTreeMap<&TxnId, usize> = BTreeMap::new();
    for id in subset {
        let ants = graph.antecedents_of(id).map_err(ReconcileError::from)?;
        in_deg.insert(id, ants.iter().filter(|a| subset.contains(*a)).count());
    }
    let mut ready: std::collections::VecDeque<&TxnId> = in_deg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(id, _)| *id)
        .collect();
    let mut out: Vec<TxnId> = Vec::with_capacity(subset.len());
    while let Some(id) = ready.pop_front() {
        out.push(id.clone());
        for dep in graph.dependents_of(id).map_err(ReconcileError::from)? {
            if let Some(d) = in_deg.get_mut(dep) {
                *d = d.saturating_sub(1);
                if *d == 0 {
                    ready.push_back(dep);
                }
            }
        }
    }
    if out.len() != subset.len() {
        return Err(ReconcileError::Updates(
            "dependency cycle among transactions".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trust::TrustCondition;
    use orchestra_relational::{tuple, RelationSchema, ValueType};
    use orchestra_updates::{Epoch, PeerId, Update};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new("Σ2")
            .with_relation(
                RelationSchema::from_parts_keyed(
                    "OPS",
                    &[
                        ("org", ValueType::Str),
                        ("prot", ValueType::Str),
                        ("seq", ValueType::Str),
                    ],
                    &["org", "prot"],
                )
                .unwrap(),
            )
            .unwrap()
    }

    fn txn(peer: &str, seq: u64, updates: Vec<Update>) -> Transaction {
        Transaction::new(TxnId::new(PeerId::new(peer), seq), Epoch::new(1), updates)
    }

    fn id(peer: &str, seq: u64) -> TxnId {
        TxnId::new(PeerId::new(peer), seq)
    }

    fn ins(org: &str, prot: &str, seq: &str) -> Update {
        Update::insert("OPS", tuple![org, prot, seq])
    }

    fn open_policy() -> TrustPolicy {
        TrustPolicy::open(1)
    }

    /// Crete's policy from the paper.
    fn crete_policy() -> TrustPolicy {
        TrustPolicy::closed()
            .with(TrustCondition::peer(PeerId::new("Beijing"), 2))
            .with(TrustCondition::peer(PeerId::new("Dresden"), 1))
    }

    #[test]
    fn accepts_nonconflicting_updates() {
        let mut r = Reconciler::new(schema());
        let out = r
            .reconcile(
                vec![
                    Candidate::from_txn(txn("A", 1, vec![ins("HIV", "gp120", "MRV")])),
                    Candidate::from_txn(txn("B", 1, vec![ins("HIV", "gp41", "AVG")])),
                ],
                &open_policy(),
            )
            .unwrap();
        assert_eq!(out.accepted.len(), 2);
        assert!(out.rejected.is_empty());
        assert!(out.deferred.is_empty());
        assert_eq!(r.decision(&id("A", 1)), Some(Decision::Accepted));
    }

    /// Scenario 2 (first half): higher priority wins a conflict outright.
    #[test]
    fn priority_resolves_conflict_beijing_over_dresden() {
        let mut r = Reconciler::new(schema());
        let out = r
            .reconcile(
                vec![
                    Candidate::from_txn(txn("Beijing", 1, vec![ins("HIV", "gp120", "SEQ-B")])),
                    Candidate::from_txn(txn("Dresden", 1, vec![ins("HIV", "gp120", "SEQ-D")])),
                ],
                &crete_policy(),
            )
            .unwrap();
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(out.accepted[0].id, id("Beijing", 1));
        assert_eq!(out.rejected, vec![id("Dresden", 1)]);
        assert_eq!(r.decision(&id("Dresden", 1)), Some(Decision::Rejected));
    }

    /// Scenario 2 (second half): dependents of rejected txns are rejected.
    #[test]
    fn rejection_cascades_to_dependents() {
        let mut r = Reconciler::new(schema());
        r.reconcile(
            vec![
                Candidate::from_txn(txn("Beijing", 1, vec![ins("HIV", "gp120", "SEQ-B")])),
                Candidate::from_txn(txn("Dresden", 1, vec![ins("HIV", "gp120", "SEQ-D")])),
            ],
            &crete_policy(),
        )
        .unwrap();
        // Dresden's follow-up depends on its rejected txn.
        let follow_up = Candidate::from_txn(
            txn(
                "Dresden",
                2,
                vec![Update::modify(
                    "OPS",
                    tuple!["HIV", "gp120", "SEQ-D"],
                    tuple!["HIV", "gp120", "SEQ-D2"],
                )],
            )
            .with_antecedents([id("Dresden", 1)]),
        );
        let out = r.reconcile(vec![follow_up], &crete_policy()).unwrap();
        assert!(out.accepted.is_empty());
        assert_eq!(out.rejected, vec![id("Dresden", 2)]);
    }

    /// Scenario 3: a trusted modification pulls in its distrusted
    /// antecedent.
    #[test]
    fn trusted_dependent_pulls_distrusted_antecedent() {
        let mut r = Reconciler::new(schema());
        // Alaska inserts several data points in one transaction; Crete
        // does not trust Alaska.
        let alaska = Candidate::from_txn(txn(
            "Alaska",
            1,
            vec![ins("HIV", "gp120", "SEQ-1"), ins("HIV", "gp41", "SEQ-2")],
        ));
        let out = r.reconcile(vec![alaska], &crete_policy()).unwrap();
        assert!(out.accepted.is_empty(), "distrusted: not applied");
        assert_eq!(r.decision(&id("Alaska", 1)), None, "no decision recorded");

        // Beijing modifies one of Alaska's points.
        let beijing = Candidate::from_txn(
            txn(
                "Beijing",
                1,
                vec![Update::modify(
                    "OPS",
                    tuple!["HIV", "gp120", "SEQ-1"],
                    tuple!["HIV", "gp120", "SEQ-1B"],
                )],
            )
            .with_antecedents([id("Alaska", 1)]),
        );
        let out = r.reconcile(vec![beijing], &crete_policy()).unwrap();
        // Both accepted, Alaska first (dependency order).
        assert_eq!(out.accepted.len(), 2);
        assert_eq!(out.accepted[0].id, id("Alaska", 1));
        assert_eq!(out.accepted[1].id, id("Beijing", 1));
        assert_eq!(r.decision(&id("Alaska", 1)), Some(Decision::Accepted));
    }

    /// Scenario 4: same-priority conflicts defer; resolution accepts the
    /// winner's chain and rejects the loser's.
    #[test]
    fn same_priority_conflict_defers_then_resolves() {
        let mut r = Reconciler::new(schema());
        // Beijing and Alaska publish conflicting updates; Dresden trusts
        // everyone equally.
        let out = r
            .reconcile(
                vec![
                    Candidate::from_txn(txn("Beijing", 1, vec![ins("HIV", "gp120", "SEQ-B")])),
                    Candidate::from_txn(txn("Alaska", 1, vec![ins("HIV", "gp120", "SEQ-A")])),
                ],
                &open_policy(),
            )
            .unwrap();
        assert!(out.accepted.is_empty());
        assert_eq!(out.deferred.len(), 2);
        assert_eq!(r.open_conflicts().len(), 1);

        // Crete publishes a modification of Beijing's update; it must be
        // deferred too (depends on a deferred txn).
        let crete = Candidate::from_txn(
            txn(
                "Crete",
                1,
                vec![Update::modify(
                    "OPS",
                    tuple!["HIV", "gp120", "SEQ-B"],
                    tuple!["HIV", "gp120", "SEQ-C"],
                )],
            )
            .with_antecedents([id("Beijing", 1)]),
        );
        let out = r.reconcile(vec![crete], &open_policy()).unwrap();
        assert_eq!(out.deferred, vec![id("Crete", 1)]);

        // Resolve in favor of Beijing: Beijing + Crete accepted, Alaska
        // rejected.
        let res = r.resolve(&id("Beijing", 1)).unwrap();
        let accepted_ids: Vec<TxnId> = res.accepted.iter().map(|t| t.id.clone()).collect();
        assert_eq!(accepted_ids, vec![id("Beijing", 1), id("Crete", 1)]);
        assert_eq!(res.rejected, vec![id("Alaska", 1)]);
        assert!(r.open_conflicts().is_empty());
        assert_eq!(r.decision(&id("Crete", 1)), Some(Decision::Accepted));
    }

    #[test]
    fn resolve_requires_deferred() {
        let mut r = Reconciler::new(schema());
        r.reconcile(
            vec![Candidate::from_txn(txn("A", 1, vec![ins("x", "y", "z")]))],
            &open_policy(),
        )
        .unwrap();
        assert!(matches!(
            r.resolve(&id("A", 1)),
            Err(ReconcileError::NotDeferred(_))
        ));
        assert!(matches!(
            r.resolve(&id("Z", 9)),
            Err(ReconcileError::NotDeferred(_))
        ));
    }

    #[test]
    fn duplicate_candidate_rejected() {
        let mut r = Reconciler::new(schema());
        r.reconcile(
            vec![Candidate::from_txn(txn("A", 1, vec![ins("x", "y", "z")]))],
            &open_policy(),
        )
        .unwrap();
        assert!(matches!(
            r.reconcile(
                vec![Candidate::from_txn(txn("A", 1, vec![ins("x", "y", "z")]))],
                &open_policy()
            ),
            Err(ReconcileError::DuplicateCandidate(_))
        ));
    }

    #[test]
    fn identical_writes_do_not_conflict() {
        // Two peers publish the same tuple: compatible, both accepted.
        let mut r = Reconciler::new(schema());
        let out = r
            .reconcile(
                vec![
                    Candidate::from_txn(txn("A", 1, vec![ins("HIV", "gp120", "SAME")])),
                    Candidate::from_txn(txn("B", 1, vec![ins("HIV", "gp120", "SAME")])),
                ],
                &open_policy(),
            )
            .unwrap();
        assert_eq!(out.accepted.len(), 2);
        assert!(out.deferred.is_empty());
    }

    #[test]
    fn dependent_modification_is_not_a_conflict() {
        // B modifies A's tuple in the same batch: causally related, both
        // accepted in order.
        let mut r = Reconciler::new(schema());
        let a = Candidate::from_txn(txn("A", 1, vec![ins("HIV", "gp120", "V1")]));
        let b = Candidate::from_txn(
            txn(
                "B",
                1,
                vec![Update::modify(
                    "OPS",
                    tuple!["HIV", "gp120", "V1"],
                    tuple!["HIV", "gp120", "V2"],
                )],
            )
            .with_antecedents([id("A", 1)]),
        );
        let out = r.reconcile(vec![a, b], &open_policy()).unwrap();
        assert_eq!(out.accepted.len(), 2);
        assert_eq!(out.accepted[0].id, id("A", 1));
        assert!(out.deferred.is_empty());
    }

    #[test]
    fn later_epoch_conflict_with_accepted_history_rejects() {
        let mut r = Reconciler::new(schema());
        r.reconcile(
            vec![Candidate::from_txn(txn(
                "A",
                1,
                vec![ins("HIV", "gp120", "V1")],
            ))],
            &open_policy(),
        )
        .unwrap();
        // Later, B writes the same key differently with no dependency.
        let out = r
            .reconcile(
                vec![Candidate::from_txn(txn(
                    "B",
                    1,
                    vec![ins("HIV", "gp120", "V2")],
                ))],
                &open_policy(),
            )
            .unwrap();
        assert_eq!(out.rejected, vec![id("B", 1)]);
    }

    #[test]
    fn dependent_update_on_accepted_antecedent_is_applied() {
        let mut r = Reconciler::new(schema());
        r.reconcile(
            vec![Candidate::from_txn(txn(
                "A",
                1,
                vec![ins("HIV", "gp120", "V1")],
            ))],
            &open_policy(),
        )
        .unwrap();
        let b = Candidate::from_txn(
            txn(
                "B",
                1,
                vec![Update::modify(
                    "OPS",
                    tuple!["HIV", "gp120", "V1"],
                    tuple!["HIV", "gp120", "V2"],
                )],
            )
            .with_antecedents([id("A", 1)]),
        );
        let out = r.reconcile(vec![b], &open_policy()).unwrap();
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(out.accepted[0].id, id("B", 1));
    }

    #[test]
    fn missing_antecedent_defers() {
        let mut r = Reconciler::new(schema());
        let orphan = Candidate::from_txn(
            txn("B", 2, vec![ins("HIV", "gp120", "V2")]).with_antecedents([id("Ghost", 1)]),
        );
        let out = r.reconcile(vec![orphan], &open_policy()).unwrap();
        assert_eq!(out.deferred, vec![id("B", 2)]);
    }

    #[test]
    fn deferred_dependent_still_deferred_if_other_blocker_remains() {
        let mut r = Reconciler::new(schema());
        // Two independent conflicts: (A1 vs B1) and (C1 vs D1).
        r.reconcile(
            vec![
                Candidate::from_txn(txn("A", 1, vec![ins("k1", "p", "va")])),
                Candidate::from_txn(txn("B", 1, vec![ins("k1", "p", "vb")])),
                Candidate::from_txn(txn("C", 1, vec![ins("k2", "p", "vc")])),
                Candidate::from_txn(txn("D", 1, vec![ins("k2", "p", "vd")])),
            ],
            &open_policy(),
        )
        .unwrap();
        // E depends on both deferred A1 and deferred C1.
        let e = Candidate::from_txn(
            txn("E", 1, vec![ins("k3", "p", "ve")]).with_antecedents([id("A", 1), id("C", 1)]),
        );
        r.reconcile(vec![e], &open_policy()).unwrap();
        assert_eq!(r.decision(&id("E", 1)), Some(Decision::Deferred));
        // Resolving only the first conflict leaves E deferred (C1 still is).
        let res = r.resolve(&id("A", 1)).unwrap();
        assert!(res.accepted.iter().any(|t| t.id == id("A", 1)));
        assert_eq!(r.decision(&id("E", 1)), Some(Decision::Deferred));
        // Resolving the second conflict releases E.
        let res = r.resolve(&id("C", 1)).unwrap();
        assert!(res.accepted.iter().any(|t| t.id == id("E", 1)));
    }

    #[test]
    fn resolution_rejects_losers_dependents() {
        let mut r = Reconciler::new(schema());
        r.reconcile(
            vec![
                Candidate::from_txn(txn("A", 1, vec![ins("k", "p", "va")])),
                Candidate::from_txn(txn("B", 1, vec![ins("k", "p", "vb")])),
            ],
            &open_policy(),
        )
        .unwrap();
        // C depends on the soon-to-lose B.
        let c = Candidate::from_txn(
            txn("C", 1, vec![ins("k9", "p", "vc")]).with_antecedents([id("B", 1)]),
        );
        r.reconcile(vec![c], &open_policy()).unwrap();
        let res = r.resolve(&id("A", 1)).unwrap();
        assert!(res.rejected.contains(&id("B", 1)));
        assert!(res.rejected.contains(&id("C", 1)));
        assert_eq!(r.decision(&id("C", 1)), Some(Decision::Rejected));
    }

    #[test]
    fn three_way_same_priority_conflict_defers_all() {
        let mut r = Reconciler::new(schema());
        let out = r
            .reconcile(
                vec![
                    Candidate::from_txn(txn("A", 1, vec![ins("k", "p", "v1")])),
                    Candidate::from_txn(txn("B", 1, vec![ins("k", "p", "v2")])),
                    Candidate::from_txn(txn("C", 1, vec![ins("k", "p", "v3")])),
                ],
                &open_policy(),
            )
            .unwrap();
        assert_eq!(out.deferred.len(), 3);
        assert!(r.open_conflicts().len() >= 2);
    }

    #[test]
    fn note_local_enables_foreign_dependents() {
        let mut r = Reconciler::new(schema());
        // The peer's own published transaction.
        let local = txn("Me", 1, vec![ins("HIV", "gp120", "V1")]);
        r.note_local(&local).unwrap();
        assert_eq!(r.decision(&id("Me", 1)), Some(Decision::Accepted));
        // Registering it twice is an error.
        assert!(matches!(
            r.note_local(&local),
            Err(ReconcileError::DuplicateCandidate(_))
        ));
        // A foreign modification of the local data resolves its
        // antecedent and applies.
        let foreign = Candidate::from_txn(
            txn(
                "B",
                1,
                vec![Update::modify(
                    "OPS",
                    tuple!["HIV", "gp120", "V1"],
                    tuple!["HIV", "gp120", "V2"],
                )],
            )
            .with_antecedents([id("Me", 1)]),
        );
        let out = r.reconcile(vec![foreign], &open_policy()).unwrap();
        assert_eq!(out.accepted.len(), 1);
        assert!(out.deferred.is_empty());
    }

    #[test]
    fn note_local_writes_guard_history() {
        let mut r = Reconciler::new(schema());
        r.note_local(&txn("Me", 1, vec![ins("HIV", "gp120", "MINE")]))
            .unwrap();
        // A causally unrelated foreign write to the same key conflicts
        // with the local data and is rejected — "selective disagreement":
        // the local instance wins.
        let foreign = Candidate::from_txn(txn("B", 1, vec![ins("HIV", "gp120", "THEIRS")]));
        let out = r.reconcile(vec![foreign], &open_policy()).unwrap();
        assert_eq!(out.rejected, vec![id("B", 1)]);
    }

    #[test]
    fn three_priority_levels_process_high_to_low() {
        use crate::trust::TrustCondition;
        let policy = TrustPolicy::closed()
            .with(TrustCondition::peer(PeerId::new("Gold"), 3))
            .with(TrustCondition::peer(PeerId::new("Silver"), 2))
            .with(TrustCondition::peer(PeerId::new("Bronze"), 1));
        let mut r = Reconciler::new(schema());
        // All three write the same key with different values.
        let out = r
            .reconcile(
                vec![
                    Candidate::from_txn(txn("Bronze", 1, vec![ins("k", "p", "bronze")])),
                    Candidate::from_txn(txn("Gold", 1, vec![ins("k", "p", "gold")])),
                    Candidate::from_txn(txn("Silver", 1, vec![ins("k", "p", "silver")])),
                ],
                &policy,
            )
            .unwrap();
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(out.accepted[0].id, id("Gold", 1));
        // Both lower levels lose to accepted history — no deferrals.
        assert_eq!(out.rejected.len(), 2);
        assert!(out.deferred.is_empty());
    }

    #[test]
    fn deferred_list_and_decisions() {
        let mut r = Reconciler::new(schema());
        r.reconcile(
            vec![
                Candidate::from_txn(txn("A", 1, vec![ins("k", "p", "v1")])),
                Candidate::from_txn(txn("B", 1, vec![ins("k", "p", "v2")])),
            ],
            &open_policy(),
        )
        .unwrap();
        let deferred = r.deferred();
        assert_eq!(deferred.len(), 2);
        assert!(deferred.contains(&id("A", 1)));
    }
}
