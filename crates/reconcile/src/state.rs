//! Persistent per-peer reconciliation state.

use std::fmt;

/// The decision a peer has recorded for a transaction.
///
/// Distrusted transactions get **no** decision: they are not applied, but
/// remain eligible to be pulled in later as antecedents of trusted
/// transactions (demonstration scenario 3) — which is why `Decision` has
/// no `Distrusted` variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Applied to the local instance.
    Accepted,
    /// Permanently rejected (conflict lost, or antecedent rejected).
    Rejected,
    /// Awaiting manual conflict resolution by the administrator.
    Deferred,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Decision::Accepted => "accepted",
            Decision::Rejected => "rejected",
            Decision::Deferred => "deferred",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Decision::Accepted.to_string(), "accepted");
        assert_eq!(Decision::Rejected.to_string(), "rejected");
        assert_eq!(Decision::Deferred.to_string(), "deferred");
    }
}
