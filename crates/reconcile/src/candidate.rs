//! Candidate transactions: what update translation hands to reconciliation.

use orchestra_updates::{PeerId, Transaction, TxnId, Update};
use std::collections::BTreeSet;
use std::fmt;

/// One translated update together with its origin provenance: the set of
/// peers whose published data the update derives from (the lineage of the
/// translated tuple, projected to peers).
///
/// Trust conditions test both the update's *contents* and these *origins* —
/// "in many cases, a site will assign a value judgment to a modification
/// based on where it originated or how it was assembled" (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateUpdate {
    /// The translated tuple-level update, in the reconciling peer's schema.
    pub update: Update,
    /// Peers whose base data this update derives from (always contains at
    /// least the publishing peer).
    pub origins: BTreeSet<PeerId>,
}

impl CandidateUpdate {
    /// Build a candidate update with origins.
    pub fn new<I: IntoIterator<Item = PeerId>>(update: Update, origins: I) -> Self {
        CandidateUpdate {
            update,
            origins: origins.into_iter().collect(),
        }
    }
}

/// A candidate transaction: the translated form of one published
/// transaction, in the reconciling peer's schema, with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The translated transaction (id and antecedents preserved from the
    /// published original).
    pub txn: Transaction,
    /// Per-update origins, aligned with `txn.updates`.
    pub origins: Vec<BTreeSet<PeerId>>,
}

impl Candidate {
    /// Build a candidate from per-update pairs.
    pub fn from_updates(
        id: TxnId,
        epoch: orchestra_updates::Epoch,
        updates: Vec<CandidateUpdate>,
        antecedents: BTreeSet<TxnId>,
    ) -> Self {
        let (raw, origins): (Vec<Update>, Vec<BTreeSet<PeerId>>) = updates
            .into_iter()
            .map(|cu| (cu.update, cu.origins))
            .unzip();
        Candidate {
            txn: Transaction::new(id, epoch, raw).with_antecedents(antecedents),
            origins,
        }
    }

    /// Build a candidate whose every update originates solely from the
    /// publishing peer (the common case for identity mappings).
    pub fn from_txn(txn: Transaction) -> Self {
        let origin = txn.id.peer.clone();
        let origins = txn
            .updates
            .iter()
            .map(|_| BTreeSet::from([origin.clone()]))
            .collect();
        Candidate { txn, origins }
    }

    /// The candidate's id.
    pub fn id(&self) -> &TxnId {
        &self.txn.id
    }

    /// Iterate `(update, origins)` pairs.
    pub fn updates(&self) -> impl Iterator<Item = (&Update, &BTreeSet<PeerId>)> {
        self.txn.updates.iter().zip(self.origins.iter())
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "candidate {}", self.txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;
    use orchestra_updates::Epoch;

    #[test]
    fn from_txn_defaults_origins_to_publisher() {
        let t = Transaction::new(
            TxnId::new(PeerId::new("Alaska"), 1),
            Epoch::new(1),
            vec![
                Update::insert("OPS", tuple!["HIV", "gp120", "MRV"]),
                Update::insert("OPS", tuple!["HIV", "gp41", "AVG"]),
            ],
        );
        let c = Candidate::from_txn(t);
        assert_eq!(c.origins.len(), 2);
        assert!(c
            .origins
            .iter()
            .all(|o| o == &BTreeSet::from([PeerId::new("Alaska")])));
        assert_eq!(c.id(), &TxnId::new(PeerId::new("Alaska"), 1));
    }

    #[test]
    fn from_updates_carries_mixed_origins() {
        let cu1 = CandidateUpdate::new(
            Update::insert("OPS", tuple!["HIV", "gp120", "MRV"]),
            [PeerId::new("Alaska"), PeerId::new("Beijing")],
        );
        let cu2 = CandidateUpdate::new(
            Update::insert("OPS", tuple!["HIV", "gp41", "AVG"]),
            [PeerId::new("Beijing")],
        );
        let c = Candidate::from_updates(
            TxnId::new(PeerId::new("Beijing"), 3),
            Epoch::new(2),
            vec![cu1, cu2],
            BTreeSet::from([TxnId::new(PeerId::new("Alaska"), 1)]),
        );
        assert_eq!(c.txn.updates.len(), 2);
        assert_eq!(c.origins[0].len(), 2);
        assert_eq!(c.origins[1].len(), 1);
        assert!(c
            .txn
            .antecedents
            .contains(&TxnId::new(PeerId::new("Alaska"), 1)));
        let pairs: Vec<_> = c.updates().collect();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn display_includes_txn() {
        let c = Candidate::from_txn(Transaction::new(
            TxnId::new(PeerId::new("A"), 1),
            Epoch::new(1),
            vec![],
        ));
        assert!(c.to_string().contains("candidate txn A#1"));
    }
}
