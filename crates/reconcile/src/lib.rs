//! # orchestra-reconcile
//!
//! The reconciliation engine of the Orchestra CDSS, implementing the
//! algorithm of Taylor & Ives, *Reconciling while tolerating disagreement
//! in collaborative data sharing* (SIGMOD 2006) — the paper's reference
//! \[11\] — as summarized in §3 of the demonstration paper:
//!
//! 1. Update translation produces **candidate transactions** that may be
//!    mutually incompatible, inapplicable (rejected/missing antecedents),
//!    or untrusted.
//! 2. Candidates are combined with the antecedent transactions needed to
//!    apply them into **applicable transaction groups**.
//! 3. **Trust conditions** — predicates over the contents and provenance
//!    of updates — assign numeric priorities to applicable groups.
//! 4. A **greedy algorithm** accepts the highest-priority mutually
//!    consistent set; same-priority conflicting transactions are
//!    **deferred** for the administrator, and transactions that modify
//!    data from deferred transactions are deferred transitively.
//! 5. The administrator later **resolves** a deferred conflict by choosing
//!    a winner: deferred transactions transitively depending on the winner
//!    are applied automatically, and those depending on the loser are
//!    rejected.
//!
//! The engine is deliberately independent of the mapping layer: it
//! consumes [`Candidate`]s (translated transactions plus per-update origin
//! provenance) and produces apply-ready decisions, so it can be tested and
//! benchmarked in isolation (experiment E7).

pub mod candidate;
pub mod engine;
pub mod error;
pub mod state;
pub mod trust;

pub use candidate::{Candidate, CandidateUpdate};
pub use engine::{ReconcileOutcome, Reconciler, ResolveOutcome};
pub use error::ReconcileError;
pub use state::Decision;
pub use trust::{TrustCondition, TrustPolicy};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ReconcileError>;

/// Priority level assigned by trust policies. Zero means *distrusted*: the
/// transaction is never applied on its own (it can still be pulled in as
/// the antecedent of a trusted transaction — demonstration scenario 3).
pub type Priority = u32;

/// The priority meaning "distrusted".
pub const DISTRUSTED: Priority = 0;
