//! Trust conditions and policies.
//!
//! "It uses user preferences, encoded as trust conditions, to associate
//! numerical priorities with applicable transaction groups. These trust
//! conditions are based on predicates over the contents and provenance of
//! updates." (§3)
//!
//! Encoding: a [`TrustPolicy`] is an ordered list of [`TrustCondition`]s
//! plus a default priority. Each update's priority is the **maximum** over
//! matching conditions (or the default when none match); a transaction's
//! priority is the **minimum** over its updates — a transaction is only as
//! trusted as its least trusted write. Priority [`DISTRUSTED`] (0) means
//! the transaction is never applied on its own.
//!
//! [`DISTRUSTED`]: crate::DISTRUSTED

use crate::candidate::Candidate;
use crate::Priority;
use orchestra_relational::{Predicate, Tuple};
use orchestra_updates::PeerId;
use std::fmt;
use std::sync::Arc;

/// One trust condition: if an update matches all constraints, it is
/// eligible for `priority`.
///
/// Peer constraints come in two strengths, and the distinction matters
/// (demonstration scenarios 2 and 3 pin it down):
///
/// * [`published_by`](Self::published_by) matches the peer that
///   **published** the transaction being reconciled. Crete's "trusts only
///   Beijing and Dresden" is about publishers: a modification published by
///   Beijing is trusted even when it touches data that originated at
///   (distrusted) Alaska — the Alaska antecedent is pulled in by the
///   dependency mechanism, not by trust.
/// * [`derived_from`](Self::derived_from) matches the **deep origins** of
///   the translated update — the peers whose base data appears in its
///   provenance lineage. Use this for conditions like "trust sequence data
///   only if it was assembled from UniProt-derived tables". Note that deep
///   lineage includes *every* alternative derivation, so a condition keyed
///   on `derived_from` can match an update that is also derivable from
///   other peers' data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustCondition {
    /// Restrict to updates against this relation (`None` = any relation).
    pub relation: Option<Arc<str>>,
    /// Restrict to transactions published by this peer.
    pub published_by: Option<PeerId>,
    /// Restrict to updates whose provenance lineage includes this peer.
    pub derived_from: Option<PeerId>,
    /// Predicate over the update's *written* tuple (for deletes, the
    /// removed tuple). [`Predicate::True`] matches everything.
    pub predicate: Predicate,
    /// Priority granted when the condition matches.
    pub priority: Priority,
}

impl TrustCondition {
    /// Trust everything **published by** a peer at a priority (the paper's
    /// "Crete trusts only Beijing and Dresden").
    pub fn peer(peer: impl Into<PeerId>, priority: Priority) -> Self {
        TrustCondition {
            relation: None,
            published_by: Some(peer.into()),
            derived_from: None,
            predicate: Predicate::True,
            priority,
        }
    }

    /// Trust everything whose provenance **derives from** a peer's data.
    pub fn derived_from(peer: impl Into<PeerId>, priority: Priority) -> Self {
        TrustCondition {
            relation: None,
            published_by: None,
            derived_from: Some(peer.into()),
            predicate: Predicate::True,
            priority,
        }
    }

    /// Trust updates to one relation at a priority.
    pub fn relation(relation: impl AsRef<str>, priority: Priority) -> Self {
        TrustCondition {
            relation: Some(Arc::from(relation.as_ref())),
            published_by: None,
            derived_from: None,
            predicate: Predicate::True,
            priority,
        }
    }

    /// Trust updates matching a content predicate at a priority.
    pub fn content(relation: impl AsRef<str>, predicate: Predicate, priority: Priority) -> Self {
        TrustCondition {
            relation: Some(Arc::from(relation.as_ref())),
            published_by: None,
            derived_from: None,
            predicate,
            priority,
        }
    }

    /// Builder: additionally require a publisher.
    pub fn with_publisher(mut self, peer: impl Into<PeerId>) -> Self {
        self.published_by = Some(peer.into());
        self
    }

    /// Builder: additionally require a deep origin.
    pub fn with_derived_from(mut self, peer: impl Into<PeerId>) -> Self {
        self.derived_from = Some(peer.into());
        self
    }

    /// Does this condition match an update (by relation, publisher, deep
    /// origins, and content)? Predicate evaluation errors count as
    /// non-matching: a malformed trust condition must never block
    /// reconciliation.
    pub fn matches(
        &self,
        relation: &str,
        tuple: Option<&Tuple>,
        publisher: &PeerId,
        origins: &std::collections::BTreeSet<PeerId>,
    ) -> bool {
        if let Some(rel) = &self.relation {
            if &**rel != relation {
                return false;
            }
        }
        if let Some(peer) = &self.published_by {
            if peer != publisher {
                return false;
            }
        }
        if let Some(peer) = &self.derived_from {
            if !origins.contains(peer) {
                return false;
            }
        }
        match tuple {
            Some(t) => self.predicate.eval(t).unwrap_or(false),
            // No tuple to test (should not happen: every update has a
            // written or read version) — only content-free conditions match.
            None => self.predicate == Predicate::True,
        }
    }
}

impl fmt::Display for TrustCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trust")?;
        if let Some(r) = &self.relation {
            write!(f, " {r}")?;
        }
        if let Some(p) = &self.published_by {
            write!(f, " published by {p}")?;
        }
        if let Some(p) = &self.derived_from {
            write!(f, " derived from {p}")?;
        }
        if self.predicate != Predicate::True {
            write!(f, " where {}", self.predicate)?;
        }
        write!(f, " priority {}", self.priority)
    }
}

/// A peer's trust policy: ordered conditions plus a default priority for
/// unmatched updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustPolicy {
    /// The conditions.
    pub conditions: Vec<TrustCondition>,
    /// Priority of updates matching no condition. `DISTRUSTED` by default
    /// for a closed policy (paper's Crete), or a positive value for an
    /// open one (Alaska/Beijing/Dresden trust everyone equally).
    pub default_priority: Priority,
}

impl TrustPolicy {
    /// Trust everything at one priority (the paper's Alaska, Beijing and
    /// Dresden trust all other participants equally).
    pub fn open(priority: Priority) -> Self {
        TrustPolicy {
            conditions: vec![],
            default_priority: priority,
        }
    }

    /// Trust nothing except what conditions grant (the paper's Crete).
    pub fn closed() -> Self {
        TrustPolicy {
            conditions: vec![],
            default_priority: crate::DISTRUSTED,
        }
    }

    /// Builder: add a condition.
    pub fn with(mut self, cond: TrustCondition) -> Self {
        self.conditions.push(cond);
        self
    }

    /// Priority of a single update: max over matching conditions, else the
    /// default.
    pub fn update_priority(
        &self,
        update: &orchestra_updates::Update,
        publisher: &PeerId,
        origins: &std::collections::BTreeSet<PeerId>,
    ) -> Priority {
        let tuple = update.written_version().or_else(|| update.read_version());
        let best = self
            .conditions
            .iter()
            .filter(|c| c.matches(update.relation(), tuple, publisher, origins))
            .map(|c| c.priority)
            .max();
        best.unwrap_or(self.default_priority)
    }

    /// Priority of a candidate transaction: min over its updates (an empty
    /// transaction gets the default priority) — a transaction is only as
    /// trusted as its least trusted write.
    pub fn txn_priority(&self, candidate: &Candidate) -> Priority {
        let publisher = &candidate.txn.id.peer;
        candidate
            .updates()
            .map(|(u, origins)| self.update_priority(u, publisher, origins))
            .min()
            .unwrap_or(self.default_priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;
    use orchestra_updates::{Epoch, Transaction, TxnId, Update};
    use std::collections::BTreeSet;

    fn cand(peer: &str, updates: Vec<Update>) -> Candidate {
        Candidate::from_txn(Transaction::new(
            TxnId::new(PeerId::new(peer), 1),
            Epoch::new(1),
            updates,
        ))
    }

    #[test]
    fn open_policy_trusts_everyone() {
        let p = TrustPolicy::open(1);
        let c = cand("Anyone", vec![Update::insert("OPS", tuple!["a", "b", "c"])]);
        assert_eq!(p.txn_priority(&c), 1);
    }

    #[test]
    fn closed_policy_distrusts_unknown() {
        let p = TrustPolicy::closed();
        let c = cand("Alaska", vec![Update::insert("OPS", tuple!["a", "b", "c"])]);
        assert_eq!(p.txn_priority(&c), crate::DISTRUSTED);
    }

    #[test]
    fn crete_policy_prefers_beijing_over_dresden() {
        // The paper: "Crete trusts only Beijing and Dresden (but prefers
        // Beijing to Dresden in the event of a conflict)."
        let p = TrustPolicy::closed()
            .with(TrustCondition::peer(PeerId::new("Beijing"), 2))
            .with(TrustCondition::peer(PeerId::new("Dresden"), 1));
        let from_beijing = cand(
            "Beijing",
            vec![Update::insert("OPS", tuple!["a", "b", "c"])],
        );
        let from_dresden = cand(
            "Dresden",
            vec![Update::insert("OPS", tuple!["a", "b", "c"])],
        );
        let from_alaska = cand("Alaska", vec![Update::insert("OPS", tuple!["a", "b", "c"])]);
        assert_eq!(p.txn_priority(&from_beijing), 2);
        assert_eq!(p.txn_priority(&from_dresden), 1);
        assert_eq!(p.txn_priority(&from_alaska), crate::DISTRUSTED);
    }

    #[test]
    fn content_conditions() {
        use orchestra_relational::Predicate;
        let p = TrustPolicy::closed().with(TrustCondition::content(
            "OPS",
            Predicate::col_eq(0, "HIV"),
            3,
        ));
        let hiv = cand("X", vec![Update::insert("OPS", tuple!["HIV", "p", "s"])]);
        let other = cand("X", vec![Update::insert("OPS", tuple!["Rat", "p", "s"])]);
        assert_eq!(p.txn_priority(&hiv), 3);
        assert_eq!(p.txn_priority(&other), crate::DISTRUSTED);
    }

    #[test]
    fn relation_condition_and_max_over_conditions() {
        let p = TrustPolicy::closed()
            .with(TrustCondition::relation("OPS", 1))
            .with(TrustCondition::peer(PeerId::new("Beijing"), 2));
        let c = cand(
            "Beijing",
            vec![Update::insert("OPS", tuple!["a", "b", "c"])],
        );
        // Matches both; takes the max (2).
        assert_eq!(p.txn_priority(&c), 2);
    }

    #[test]
    fn txn_priority_is_min_over_updates() {
        let p = TrustPolicy::closed().with(TrustCondition::content(
            "OPS",
            Predicate::col_eq(0, "HIV"),
            2,
        ));
        use orchestra_relational::Predicate;
        let c = cand(
            "X",
            vec![
                Update::insert("OPS", tuple!["HIV", "p", "s"]), // priority 2
                Update::insert("OPS", tuple!["Rat", "p", "s"]), // priority 0
            ],
        );
        assert_eq!(p.txn_priority(&c), crate::DISTRUSTED);
    }

    #[test]
    fn delete_updates_test_removed_tuple() {
        let p = TrustPolicy::closed().with(TrustCondition::content(
            "OPS",
            Predicate::col_eq(0, "HIV"),
            1,
        ));
        use orchestra_relational::Predicate;
        let c = cand("X", vec![Update::delete("OPS", tuple!["HIV", "p", "s"])]);
        assert_eq!(p.txn_priority(&c), 1);
    }

    #[test]
    fn condition_with_publisher_and_relation() {
        let cond = TrustCondition::relation("OPS", 2).with_publisher(PeerId::new("Beijing"));
        let origins = BTreeSet::from([PeerId::new("Beijing")]);
        assert!(cond.matches(
            "OPS",
            Some(&tuple!["a", "b", "c"]),
            &PeerId::new("Beijing"),
            &origins
        ));
        assert!(!cond.matches(
            "OPS",
            Some(&tuple!["a", "b", "c"]),
            &PeerId::new("Alaska"),
            &origins
        ));
        assert!(!cond.matches(
            "O",
            Some(&tuple!["a", "b"]),
            &PeerId::new("Beijing"),
            &origins
        ));
    }

    #[test]
    fn malformed_predicate_never_matches() {
        use orchestra_relational::Predicate;
        // Column 99 does not exist: eval errors → no match (not a panic).
        let cond = TrustCondition::content("OPS", Predicate::col_eq(99, 1), 5);
        assert!(!cond.matches(
            "OPS",
            Some(&tuple!["a", "b", "c"]),
            &PeerId::new("X"),
            &BTreeSet::from([PeerId::new("X")])
        ));
    }

    #[test]
    fn publisher_trust_ignores_deep_origins() {
        // The scenario-3 semantics: a Beijing-published update over data
        // assembled from Alaska's tables is trusted because *Beijing
        // published it* — the distrusted antecedent is handled by the
        // dependency mechanism, not by trust.
        let p = TrustPolicy::closed().with(TrustCondition::peer(PeerId::new("Beijing"), 2));
        let c = Candidate::from_updates(
            TxnId::new(PeerId::new("Beijing"), 1),
            Epoch::new(1),
            vec![crate::candidate::CandidateUpdate::new(
                Update::insert("OPS", tuple!["a", "b", "c"]),
                [PeerId::new("Alaska"), PeerId::new("Beijing")],
            )],
            BTreeSet::new(),
        );
        assert_eq!(p.txn_priority(&c), 2);
    }

    #[test]
    fn derived_from_matches_deep_origins() {
        // A condition on deep lineage matches regardless of publisher.
        let p = TrustPolicy::closed().with(TrustCondition::derived_from(PeerId::new("Beijing"), 1));
        let via_beijing = Candidate::from_updates(
            TxnId::new(PeerId::new("Alaska"), 1),
            Epoch::new(1),
            vec![crate::candidate::CandidateUpdate::new(
                Update::insert("OPS", tuple!["a", "b", "c"]),
                [PeerId::new("Alaska"), PeerId::new("Beijing")],
            )],
            BTreeSet::new(),
        );
        assert_eq!(p.txn_priority(&via_beijing), 1);
        let not_via_beijing = Candidate::from_updates(
            TxnId::new(PeerId::new("Alaska"), 2),
            Epoch::new(1),
            vec![crate::candidate::CandidateUpdate::new(
                Update::insert("OPS", tuple!["a", "b", "d"]),
                [PeerId::new("Alaska")],
            )],
            BTreeSet::new(),
        );
        assert_eq!(p.txn_priority(&not_via_beijing), crate::DISTRUSTED);
    }

    #[test]
    fn display() {
        let cond = TrustCondition::peer(PeerId::new("Beijing"), 2);
        assert_eq!(cond.to_string(), "trust published by Beijing priority 2");
        let cond = TrustCondition::derived_from(PeerId::new("Alaska"), 1);
        assert_eq!(cond.to_string(), "trust derived from Alaska priority 1");
    }
}
