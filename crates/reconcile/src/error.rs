//! Errors for the reconciliation layer.

use std::fmt;

/// Errors raised during reconciliation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconcileError {
    /// The same transaction was offered as a candidate twice.
    DuplicateCandidate(String),
    /// `resolve` was called on a transaction that is not deferred.
    NotDeferred(String),
    /// A schema/update error bubbled up.
    Updates(String),
}

impl fmt::Display for ReconcileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconcileError::DuplicateCandidate(id) => {
                write!(f, "transaction `{id}` already offered for reconciliation")
            }
            ReconcileError::NotDeferred(id) => {
                write!(f, "transaction `{id}` is not deferred; cannot resolve")
            }
            ReconcileError::Updates(msg) => write!(f, "update error: {msg}"),
        }
    }
}

impl std::error::Error for ReconcileError {}

impl From<orchestra_updates::UpdateError> for ReconcileError {
    fn from(e: orchestra_updates::UpdateError) -> Self {
        ReconcileError::Updates(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(ReconcileError::DuplicateCandidate("A#1".into())
            .to_string()
            .contains("already offered"));
        assert!(ReconcileError::NotDeferred("A#1".into())
            .to_string()
            .contains("not deferred"));
    }

    #[test]
    fn from_update_error() {
        let e: ReconcileError = orchestra_updates::UpdateError::UnknownRelation("R".into()).into();
        assert!(matches!(e, ReconcileError::Updates(_)));
    }
}
