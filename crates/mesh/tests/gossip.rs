//! Gossip integration: real mesh nodes on loopback sockets.
//!
//! * A three-node line topology `A – B – C` (no direct A↔C link)
//!   converges to identical archives from randomized publish
//!   interleavings, at 1 and 4 evaluation threads — epidemic pull moves
//!   history across hops neither endpoint shares.
//! * Interest-based partial replication: nodes store and ship only the
//!   backward mapping closure of their hosted peers' relations;
//!   uninteresting history never lands on them.
//! * Fault handling: a neighbor dying mid-scan freezes the cursor, the
//!   round still completes against the remaining neighbors, and the
//!   rejoined neighbor is drained from the frozen cursor with zero
//!   duplicate applies.

use orchestra_core::{Cdss, CoreError};
use orchestra_datalog::{Atom, Tgd};
use orchestra_mesh::{InterestMode, MeshNode, MeshOptions};
use orchestra_net::RemoteOptions;
use orchestra_reconcile::TrustPolicy;
use orchestra_relational::{tuple, DatabaseSchema, RelationSchema, ValueType};
use orchestra_store::{AbsorbReport, FetchCursor, FetchPage, StoreDigest, StoreStats, UpdateStore};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Two keyed relations; mappings only ever read `R`, so `S` stays
/// node-local under derived interest.
fn schema() -> DatabaseSchema {
    DatabaseSchema::new("kv")
        .with_relation(
            RelationSchema::from_parts_keyed(
                "R",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap()
        .with_relation(
            RelationSchema::from_parts_keyed(
                "S",
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap()
}

/// Copy mapping `src.R → dst.R` (the line topology's hop).
fn copy_r(src: &str, dst: &str) -> Tgd {
    Tgd::new(
        format!("M{src}->{dst}/R"),
        vec![Atom::vars(format!("{src}.R"), &["k", "v"])],
        vec![Atom::vars(format!("{dst}.R"), &["k", "v"])],
    )
    .unwrap()
}

/// Every mesh participant declares the same global picture: peers A, B,
/// C and the chain of `R` mappings A→B→C. Each *node* then hosts one.
fn line_cdss(threads: usize) -> Cdss {
    Cdss::builder()
        .peer("A", schema(), TrustPolicy::open(1))
        .peer("B", schema(), TrustPolicy::open(1))
        .peer("C", schema(), TrustPolicy::open(1))
        .mapping(copy_r("A", "B"))
        .mapping(copy_r("B", "C"))
        .eval_threads(threads)
        .build()
        .unwrap()
}

fn fast_remote() -> RemoteOptions {
    RemoteOptions {
        connect_timeout: Duration::from_millis(300),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        pool_capacity: 2,
        retries: 0,
        ..RemoteOptions::default()
    }
}

fn mesh_opts(seed: u64, interest: InterestMode) -> MeshOptions {
    MeshOptions {
        fanout: 2,
        page_limit: 3, // Force multi-page drains at test scale.
        seed,
        interest,
        remote: fast_remote(),
        ..MeshOptions::default()
    }
}

/// Start node `host` (hosting only that peer), wire the line topology
/// later via `join`.
fn node(host: &str, threads: usize, seed: u64, interest: InterestMode) -> MeshNode {
    MeshNode::start_hosting(
        host,
        line_cdss(threads),
        vec![PeerId::new(host)],
        "127.0.0.1:0",
        mesh_opts(seed, interest),
    )
    .unwrap()
}

/// All ids in an archive, in scan order.
fn archive_ids(store: &dyn UpdateStore) -> Vec<TxnId> {
    store
        .fetch_since(Epoch::zero())
        .unwrap()
        .into_iter()
        .map(|t| t.id)
        .collect()
}

/// The line topology converges to byte-identical archives on every node
/// from randomized publish interleavings — property-tested over seeds,
/// at one and at four evaluation threads. Each case spins up three real
/// TCP-serving nodes, so the case count stays small.
mod line_topology_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn line_topology_converges_from_random_interleavings(seed in 0u64..1024) {
            for threads in [1usize, 4] {
                line_round_trip(threads, seed);
            }
        }
    }
}

fn line_round_trip(threads: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed * 7919 + threads as u64);
    let mut a = node("A", threads, seed, InterestMode::Everything);
    let mut b = node("B", threads, seed, InterestMode::Everything);
    let mut c = node("C", threads, seed, InterestMode::Everything);
    // Line topology: A–B and B–C, never A–C.
    a.join(b.addr().to_string()).unwrap();
    b.join(a.addr().to_string()).unwrap();
    b.join(c.addr().to_string()).unwrap();
    c.join(b.addr().to_string()).unwrap();

    // Random interleaving of publishes (each node through its hosted
    // peer) and gossip rounds.
    let mut published = 0u64;
    for step in 0..30 {
        let which = rng.random_range(0..4u32);
        match which {
            0..=2 => {
                let n: &mut MeshNode = match which {
                    0 => &mut a,
                    1 => &mut b,
                    _ => &mut c,
                };
                let host = n.hosted()[0].clone();
                let rel = if rng.random_bool(0.75) { "R" } else { "S" };
                n.cdss_mut()
                    .publish_transaction(
                        &host,
                        vec![Update::insert(rel, tuple![step as i64, seed as i64])],
                    )
                    .unwrap();
                published += 1;
            }
            _ => {
                for n in [&mut a, &mut b, &mut c] {
                    n.run_round().unwrap();
                }
            }
        }
    }
    assert!(published > 0, "interleaving published something");

    // Epidemic convergence: a bounded number of further rounds makes all
    // three archives identical.
    let mut converged = false;
    for _ in 0..12 {
        for n in [&mut a, &mut b, &mut c] {
            n.run_round().unwrap();
        }
        let ids = archive_ids(a.cdss().store());
        if ids.len() as u64 == published
            && ids == archive_ids(b.cdss().store())
            && ids == archive_ids(c.cdss().store())
        {
            converged = true;
            break;
        }
    }
    assert!(
        converged,
        "threads={threads} seed={seed}: archives diverged: A={} B={} C={} want={published}",
        a.cdss().store().len(),
        b.cdss().store().len(),
        c.cdss().store().len(),
    );

    // Instances converge too: C's hosted peer sees every `R` row that A
    // published, translated down the mapping chain A→B→C.
    for n in [&mut a, &mut b, &mut c] {
        let hosted = n.hosted()[0].clone();
        n.cdss_mut().reconcile(&hosted).unwrap();
    }
    let a_r = a
        .cdss()
        .peer(&PeerId::new("A"))
        .unwrap()
        .instance()
        .relation("R")
        .map(|r| r.len())
        .unwrap_or(0);
    let c_r = c
        .cdss()
        .peer(&PeerId::new("C"))
        .unwrap()
        .instance()
        .relation("R")
        .map(|r| r.len())
        .unwrap_or(0);
    assert!(
        c_r >= a_r,
        "threads={threads} seed={seed}: C's R instance misses A's rows ({c_r} < {a_r})"
    );
}

/// Derived interest keeps uninteresting history off a node entirely: the
/// chain's tail never stores `S` transactions (no mapping reads them),
/// and the mesh ships strictly fewer transactions to it than to a
/// full-replication node.
#[test]
fn interest_filtering_keeps_unmapped_history_off_the_node() {
    let mut a = node("A", 1, 11, InterestMode::Everything);
    let mut b = node("B", 1, 12, InterestMode::Derived);
    let mut c = node("C", 1, 13, InterestMode::Derived);
    a.join(b.addr().to_string()).unwrap();
    b.join(a.addr().to_string()).unwrap();
    b.join(c.addr().to_string()).unwrap();
    c.join(b.addr().to_string()).unwrap();

    // The derived interest is the backward mapping closure.
    let mut want_b = vec!["A.R".to_string(), "B.R".to_string(), "B.S".to_string()];
    want_b.sort();
    let mut got_b = b.interest().to_vec();
    got_b.sort();
    assert_eq!(got_b, want_b);
    assert!(
        c.interest().contains(&"A.R".to_string()),
        "{:?}",
        c.interest()
    );
    assert!(!c.interest().contains(&"A.S".to_string()));

    // A publishes both mapped (R) and unmapped (S) history.
    let pa = PeerId::new("A");
    for k in 0..6i64 {
        a.cdss_mut()
            .publish_transaction(&pa, vec![Update::insert("R", tuple![k, k])])
            .unwrap();
        a.cdss_mut()
            .publish_transaction(&pa, vec![Update::insert("S", tuple![k, k])])
            .unwrap();
    }

    for _ in 0..6 {
        for n in [&mut a, &mut b, &mut c] {
            n.run_round().unwrap();
        }
    }

    // Everything interesting arrived…
    let c_digest = c.cdss().store().digest().unwrap();
    assert_eq!(c_digest.relation_txns("A.R"), 6, "{c_digest:?}");
    // …and nothing else: the unmapped S history never landed on B or C.
    assert_eq!(c_digest.relation_txns("A.S"), 0);
    assert_eq!(c.cdss().store().len(), 6);
    let b_digest = b.cdss().store().digest().unwrap();
    assert_eq!(b_digest.relation_txns("A.S"), 0);
    assert!(
        (b.cdss().store().len() as u64) < a.cdss().store().digest().unwrap().len,
        "partial replica stores strictly less than the publisher"
    );

    // C's instance still derives every mapped row through the chain.
    let pc = PeerId::new("C");
    c.cdss_mut().reconcile(&pc).unwrap();
    let c_rows = c
        .cdss()
        .peer(&pc)
        .unwrap()
        .instance()
        .relation("R")
        .map(|r| r.len())
        .unwrap_or(0);
    assert_eq!(c_rows, 6, "mapped history reached the tail instance");
}

/// An archive wrapper that plays dead on command: after `arm()`, every
/// page scan fails as `Unavailable` — the same surface a crashed
/// neighbor process presents over the wire.
#[derive(Debug)]
struct FlakyStore {
    inner: orchestra_store::InMemoryStore,
    /// Pages still allowed to succeed; negative = unlimited.
    budget: AtomicI64,
}

impl FlakyStore {
    fn new() -> Self {
        FlakyStore {
            inner: orchestra_store::InMemoryStore::new(),
            budget: AtomicI64::new(-1),
        }
    }
    fn arm(&self, pages: i64) {
        self.budget.store(pages, Ordering::SeqCst);
    }
    fn heal(&self) {
        self.budget.store(-1, Ordering::SeqCst);
    }
}

impl UpdateStore for FlakyStore {
    fn publish(&self, epoch: Epoch, txns: Vec<Transaction>) -> orchestra_store::Result<()> {
        self.inner.publish(epoch, txns)
    }
    fn fetch_page(&self, cursor: &FetchCursor, limit: usize) -> orchestra_store::Result<FetchPage> {
        let left = self.budget.load(Ordering::SeqCst);
        if left == 0 {
            return Err(orchestra_store::StoreError::Unavailable {
                txn: "<flaky archive down>".to_string(),
            });
        }
        if left > 0 {
            self.budget.fetch_sub(1, Ordering::SeqCst);
        }
        self.inner.fetch_page(cursor, limit)
    }
    fn fetch(&self, id: &TxnId) -> orchestra_store::Result<Option<Transaction>> {
        self.inner.fetch(id)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn latest_epoch(&self) -> Option<Epoch> {
        self.inner.latest_epoch()
    }
    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
    fn digest(&self) -> orchestra_store::Result<StoreDigest> {
        self.inner.digest()
    }
    fn absorb(&self, txns: Vec<Transaction>) -> orchestra_store::Result<AbsorbReport> {
        self.inner.absorb(txns)
    }
}

/// Kill a neighbor mid-scan: the round completes against the remaining
/// neighbor, the dead neighbor's cursor freezes at the gap, and after
/// the neighbor heals the drain resumes from the frozen cursor — zero
/// duplicate absorbs, zero duplicate applies.
#[test]
fn dead_neighbor_freezes_cursor_and_resumes_clean() {
    let flaky = Arc::new(FlakyStore::new());
    let b_cdss = Cdss::builder()
        .peer("A", schema(), TrustPolicy::open(1))
        .peer("B", schema(), TrustPolicy::open(1))
        .peer("C", schema(), TrustPolicy::open(1))
        .mapping(copy_r("A", "B"))
        .mapping(copy_r("B", "C"))
        .build_with_shared(flaky.clone())
        .unwrap();
    let mut b = MeshNode::start_hosting(
        "B",
        b_cdss,
        vec![PeerId::new("B")],
        "127.0.0.1:0",
        mesh_opts(2, InterestMode::Everything),
    )
    .unwrap();
    let mut a = node("A", 1, 1, InterestMode::Everything);
    let mut c = node("C", 1, 3, InterestMode::Everything);
    let (b_addr, c_addr) = (b.addr().to_string(), c.addr().to_string());
    a.join(b_addr.clone()).unwrap();
    a.join(c_addr.clone()).unwrap();

    // B holds 7 transactions (3 pages at page_limit=3), C holds 2.
    let (pb, pc) = (PeerId::new("B"), PeerId::new("C"));
    for k in 0..7i64 {
        b.cdss_mut()
            .publish_transaction(&pb, vec![Update::insert("R", tuple![k, k])])
            .unwrap();
    }
    for k in 100..102i64 {
        c.cdss_mut()
            .publish_transaction(&pc, vec![Update::insert("R", tuple![k, k])])
            .unwrap();
    }

    // B dies after serving one page of the scan.
    flaky.arm(1);
    let report = a.run_round().unwrap();
    assert_eq!(report.contacted, 2, "both neighbors contacted");
    assert_eq!(report.failures, 1, "B died mid-scan");
    assert_eq!(
        report.absorbed,
        3 + 2,
        "one page from B plus all of C landed despite the failure"
    );
    let frozen = a
        .neighbor_cursor(&b_addr)
        .expect("cursor frozen mid-scan at the gap");
    assert!(
        matches!(
            a.neighbor_error(&b_addr),
            Some(orchestra_store::StoreError::Unavailable { .. })
        ),
        "failure recorded as unavailability"
    );

    // Still dead: the cursor does not move.
    flaky.arm(0);
    let report = a.run_round().unwrap();
    assert_eq!(report.failures, 1);
    assert_eq!(report.absorbed, 0);
    assert_eq!(a.neighbor_cursor(&b_addr), Some(frozen.clone()));

    // B heals (rejoin): the drain resumes from the frozen cursor and
    // ships only the missing tail — nothing is absorbed twice.
    flaky.heal();
    let report = a.run_round().unwrap();
    assert_eq!(report.failures, 0);
    assert_eq!(report.absorbed, 4, "exactly the unseen tail");
    assert_eq!(report.duplicates, 0, "zero duplicate absorbs on resume");
    assert_eq!(a.neighbor_cursor(&b_addr), None, "drain completed");
    assert_eq!(a.cdss().store().len(), 9);

    // Zero duplicate applies: across every reconcile, no transaction is
    // accepted twice.
    let pa = PeerId::new("A");
    let mut seen: BTreeSet<TxnId> = BTreeSet::new();
    for _ in 0..3 {
        let report = a.cdss_mut().reconcile(&pa).unwrap();
        for id in &report.outcome.accepted {
            assert!(seen.insert(id.clone()), "{id} applied twice");
        }
    }
    assert_eq!(seen.len(), 9, "every transaction applied exactly once");

    // A healthy mesh keeps converging end to end.
    let step: Result<_, CoreError> = a.converge_step();
    assert!(step.is_ok(), "{step:?}");
}

/// Self-healing over the mesh: bit rot in a node's durable archive is
/// quarantined by the scrubber, gossiped as a gap, and repaired with
/// checksum-verified bytes pulled from a neighbor — without a single
/// transaction being re-applied to any peer instance.
#[test]
fn quarantined_positions_heal_from_a_neighbor_without_reapplying() {
    use orchestra_store::durable::segment::{list_segments, segment_file_name};
    use orchestra_store::{DurableOptions, DurableStore, StoreError};

    let dir = std::env::temp_dir().join(format!("orchestra-mesh-heal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = Arc::new(
        DurableStore::open_with(
            &dir,
            DurableOptions {
                segment_max_bytes: 64, // Seal a segment per publish.
                ..DurableOptions::default()
            },
        )
        .unwrap(),
    );
    let a_cdss = Cdss::builder()
        .peer("A", schema(), TrustPolicy::open(1))
        .peer("B", schema(), TrustPolicy::open(1))
        .peer("C", schema(), TrustPolicy::open(1))
        .mapping(copy_r("A", "B"))
        .mapping(copy_r("B", "C"))
        .build_with_shared(durable.clone())
        .unwrap();
    let mut a = MeshNode::start_hosting(
        "A",
        a_cdss,
        vec![PeerId::new("A")],
        "127.0.0.1:0",
        mesh_opts(11, InterestMode::Everything),
    )
    .unwrap();
    let mut b = node("B", 1, 12, InterestMode::Everything);
    a.join(b.addr().to_string()).unwrap();
    b.join(a.addr().to_string()).unwrap();

    let pa = PeerId::new("A");
    for k in 0..6i64 {
        a.cdss_mut()
            .publish_transaction(&pa, vec![Update::insert("R", tuple![k, k])])
            .unwrap();
    }
    a.cdss_mut().reconcile(&pa).unwrap();
    for _ in 0..4 {
        b.run_round().unwrap();
        if b.cdss().store().len() == 6 {
            break;
        }
    }
    assert_eq!(b.cdss().store().len(), 6, "B replicated A's history");

    // Bit rot in A's first sealed segment; the scrub quarantines the
    // affected positions instead of erroring.
    let first = dir.join(segment_file_name(
        *list_segments(&dir).unwrap().first().unwrap(),
    ));
    let mut bytes = std::fs::read(&first).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&first, &bytes).unwrap();
    let scrub = durable.scrub().unwrap();
    assert!(scrub.quarantined > 0, "{scrub:?}");
    let holes = durable.quarantined();
    assert_eq!(holes.len(), scrub.quarantined);
    let (_, gap) = holes[0].clone();
    assert!(matches!(
        durable.fetch(&gap),
        Err(StoreError::Unavailable { .. })
    ));

    // Gossip treats the quarantined positions as gaps and splices the
    // repair bytes back in — re-indexed, not re-absorbed.
    let mut healed = 0u64;
    for _ in 0..4 {
        let report = a.run_round().unwrap();
        healed += report.healed;
        assert_eq!(report.absorbed, 0, "nothing new absorbed: {report:?}");
        if durable.quarantined().is_empty() {
            break;
        }
    }
    assert_eq!(healed as usize, holes.len(), "every hole healed");
    assert!(durable.quarantined().is_empty());
    assert_eq!(a.stats().healed, healed);
    assert_eq!(durable.fetch(&gap).unwrap().unwrap().id, gap);
    assert_eq!(
        archive_ids(a.cdss().store()),
        archive_ids(b.cdss().store()),
        "archives converged after the repair"
    );

    // Zero duplicate applies: the healed positions never left the epoch
    // scan order, so reconciliation has nothing new to accept.
    for _ in 0..2 {
        let report = a.cdss_mut().reconcile(&pa).unwrap();
        assert!(
            report.outcome.accepted.is_empty(),
            "healed bytes re-applied: {:?}",
            report.outcome.accepted
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// PR 9 acceptance: a three-node cluster answers `METRICS` over the
/// wire mid-gossip, and a single propagated trace id reconstructs one
/// cross-peer exchange end to end — B's round phases, A's serving-side
/// page scan (recorded on A's server thread), and the durable WAL
/// fsync of the page B absorbed.
#[test]
fn metrics_poll_and_one_trace_reconstruct_a_cross_peer_exchange() {
    use orchestra_net::RemoteStore;
    use orchestra_store::{DurableOptions, DurableStore};

    let dir = std::env::temp_dir().join(format!("orchestra-mesh-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = Arc::new(DurableStore::open_with(&dir, DurableOptions::default()).unwrap());
    // B's archive is durable, so absorbing A's history crosses the WAL
    // and the traced exchange includes fsync spans.
    let b_cdss = Cdss::builder()
        .peer("A", schema(), TrustPolicy::open(1))
        .peer("B", schema(), TrustPolicy::open(1))
        .peer("C", schema(), TrustPolicy::open(1))
        .mapping(copy_r("A", "B"))
        .mapping(copy_r("B", "C"))
        .build_with_shared(durable)
        .unwrap();
    let mut a = node("A", 1, 31, InterestMode::Everything);
    let mut b = MeshNode::start_hosting(
        "B",
        b_cdss,
        vec![PeerId::new("B")],
        "127.0.0.1:0",
        mesh_opts(32, InterestMode::Everything),
    )
    .unwrap();
    let mut c = node("C", 1, 33, InterestMode::Everything);
    a.join(b.addr().to_string()).unwrap();
    b.join(a.addr().to_string()).unwrap();
    b.join(c.addr().to_string()).unwrap();
    c.join(b.addr().to_string()).unwrap();

    let pa = PeerId::new("A");
    for k in 0..5i64 {
        a.cdss_mut()
            .publish_transaction(&pa, vec![Update::insert("R", tuple![k, k])])
            .unwrap();
    }

    // `run_round` executes on this thread, so every client-side span of
    // the exchange shares this thread's ring. A marker span pins down
    // which ring that is, since other tests' threads also record.
    let my_thread = {
        drop(orchestra_obs::span!("test.mesh.thread_marker"));
        orchestra_obs::snapshot()
            .spans
            .iter()
            .rev()
            .find(|s| s.name == "test.mesh.thread_marker")
            .expect("marker span recorded")
            .thread
    };

    let mut absorbed = false;
    for _ in 0..6 {
        if b.run_round().unwrap().absorbed > 0 {
            absorbed = true;
            break;
        }
    }
    assert!(absorbed, "B never pulled A's history");

    // Mid-gossip, every node answers METRICS over the wire (the nodes
    // share this process's registry, but each reply crosses its own
    // socket and exercises its own server).
    for n in [&a, &b, &c] {
        let remote = RemoteStore::connect_with(n.addr(), fast_remote()).unwrap();
        let snap = remote.metrics().unwrap();
        assert!(
            snap.counters
                .iter()
                .any(|(name, v)| name == "mesh.round.pages_pulled" && *v > 0),
            "node {} snapshot misses pull counters",
            n.name()
        );
    }

    // The newest round span on this thread is the absorbing round; its
    // trace id stitches the whole exchange.
    let snap = orchestra_obs::snapshot();
    let round = snap
        .spans
        .iter()
        .filter(|s| s.name == "mesh.round" && s.thread == my_thread && s.trace != 0)
        .max_by_key(|s| s.seq)
        .expect("B's round span recorded");
    let trace = round.trace;
    let in_trace: Vec<&str> = snap
        .spans
        .iter()
        .filter(|s| s.trace == trace)
        .map(|s| s.name.as_str())
        .collect();
    for phase in [
        "mesh.round",
        "mesh.digest",
        "mesh.pull",
        "server.pull_pages",
        "store.absorb",
        "store.wal.fsync",
    ] {
        assert!(
            in_trace.contains(&phase),
            "trace {trace:#x} misses `{phase}`: {in_trace:?}"
        );
    }
    // The serving half really ran elsewhere: A's server thread adopted
    // the id off the wire.
    let served = snap
        .spans
        .iter()
        .find(|s| s.trace == trace && s.name == "server.pull_pages")
        .expect("serving span present");
    assert_ne!(served.thread, round.thread, "pull served in-thread?");

    let _ = a.shutdown();
    let _ = b.shutdown();
    let _ = c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
