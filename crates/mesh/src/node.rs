//! [`MeshNode`]: one gossiping participant — a CDSS, its served archive,
//! a membership list, and the anti-entropy round engine.

use orchestra_core::{Cdss, CoreError, ReconcileReport};
use orchestra_net::{PeerServer, PullPage, RemoteOptions, RemoteStore, ServerOptions};
use orchestra_store::{FetchCursor, StoreDigest, StoreError, UpdateStore};
use orchestra_updates::{Epoch, PeerId, TxnId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::sync::Arc;

/// What a node declares interest in — and therefore stores and ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterestMode {
    /// Replicate only the backward closure of the hosted peers'
    /// relations over the mapping program ([`Cdss::interest_set`]):
    /// updates to any other relation can never reach a hosted instance,
    /// so they are neither stored nor shipped here.
    #[default]
    Derived,
    /// Replicate the full published history (an archival node).
    Everything,
}

/// Tunables for a [`MeshNode`].
#[derive(Debug, Clone)]
pub struct MeshOptions {
    /// Neighbors contacted per anti-entropy round.
    pub fanout: usize,
    /// Scan positions per `PullPages` request.
    pub page_limit: u64,
    /// Seed for neighbor selection — rounds are deterministic under it.
    pub seed: u64,
    /// Partial or full replication.
    pub interest: InterestMode,
    /// Client-side transport tunables for neighbor connections.
    pub remote: RemoteOptions,
    /// Tunables for the served archive.
    pub server: ServerOptions,
}

impl Default for MeshOptions {
    fn default() -> Self {
        MeshOptions {
            fanout: 2,
            page_limit: orchestra_store::DEFAULT_PAGE_LIMIT as u64,
            seed: 0,
            interest: InterestMode::default(),
            remote: RemoteOptions::default(),
            server: ServerOptions::default(),
        }
    }
}

/// Cumulative counters for one node's gossip activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Anti-entropy rounds run.
    pub rounds: u64,
    /// Neighbor digests fetched.
    pub digests_fetched: u64,
    /// `PullPages` requests issued.
    pub pulls: u64,
    /// Transactions merged into the local archive.
    pub txns_absorbed: u64,
    /// Transactions pulled that the archive already held.
    pub duplicates: u64,
    /// Scan positions returned as skipped ids instead of payloads.
    pub skipped_positions: u64,
    /// Exchanges abandoned on a neighbor failure (cursor frozen).
    pub neighbor_failures: u64,
    /// Interest registrations sent.
    pub subscriptions_sent: u64,
    /// Locally quarantined positions repaired with bytes pulled from a
    /// neighbor (re-indexed in place, not re-applied).
    pub healed: u64,
}

/// What one [`MeshNode::run_round`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// Neighbors contacted this round.
    pub contacted: usize,
    /// Neighbors that failed mid-exchange (their cursors froze).
    pub failures: usize,
    /// Transactions newly merged into the local archive.
    pub absorbed: u64,
    /// Pulled transactions the archive already held.
    pub duplicates: u64,
    /// Quarantined positions repaired from pulled bytes.
    pub healed: u64,
}

/// A neighbor scan in progress: where to resume, and which sources this
/// scan has already seen a hole for (their floors freeze until the next
/// from-the-top rescan).
#[derive(Debug)]
struct Scan {
    cursor: FetchCursor,
    broken: BTreeSet<String>,
}

/// One membership entry and everything learned from it.
struct Neighbor {
    addr: String,
    remote: RemoteStore,
    /// Interest registered on this neighbor (re-sent after a failure —
    /// the registry does not survive a server restart).
    subscribed: bool,
    /// `Some` while a scan is mid-drain; frozen in place on a failure so
    /// the next round resumes at the gap, exactly like a reconcile
    /// cursor. `None` means the next pull starts from the top — which is
    /// also how backfill absorbed *behind* a finished scan gets seen.
    scan: Option<Scan>,
    /// Per-source contiguous prefix of positions witnessed on this
    /// neighbor (shipped or skipped). Monotone; feeds the node-wide
    /// considered floors.
    floors: BTreeMap<String, u64>,
    /// Digest recorded when a scan last ran to the end: anything not
    /// beyond it is known undeliverable from this neighbor (held by us,
    /// outside our interest, or unavailable), so it never re-triggers a
    /// pull — the termination guarantee.
    drained: Option<StoreDigest>,
    failures: u64,
    last_error: Option<StoreError>,
}

/// A gossiping CDSS node: serves its own archive over TCP and runs
/// pull-based anti-entropy rounds against a few random neighbors.
pub struct MeshNode {
    name: String,
    cdss: Cdss,
    archive: Arc<dyn UpdateStore>,
    server: PeerServer,
    interest: Vec<String>,
    own_sources: Vec<PeerId>,
    neighbors: Vec<Neighbor>,
    rng: StdRng,
    /// The mixed (name-salted) seed the round RNG started from — logged
    /// by harnesses so any run is replayable.
    seed: u64,
    opts: MeshOptions,
    stats: MeshStats,
}

impl MeshNode {
    /// Wrap a CDSS in a mesh node hosting **all** of its declared peers:
    /// serve its archive on `bind` and derive the interest set from its
    /// mappings.
    pub fn start(
        name: impl Into<String>,
        cdss: Cdss,
        bind: impl std::net::ToSocketAddrs,
        opts: MeshOptions,
    ) -> std::io::Result<MeshNode> {
        let hosted = cdss.peer_ids();
        MeshNode::start_hosting(name, cdss, hosted, bind, opts)
    }

    /// Wrap a CDSS in a mesh node that **hosts** only `hosted` of its
    /// declared peers. The schema and mapping program are global
    /// knowledge — every mesh participant's CDSS declares all peers so
    /// mappings compile — but only the hosted peers publish, reconcile,
    /// and materialize instances on this node, and only their backward
    /// mapping closure is replicated here (under
    /// [`InterestMode::Derived`]).
    pub fn start_hosting(
        name: impl Into<String>,
        cdss: Cdss,
        hosted: Vec<PeerId>,
        bind: impl std::net::ToSocketAddrs,
        opts: MeshOptions,
    ) -> std::io::Result<MeshNode> {
        let name = name.into();
        let archive = cdss.shared_store();
        let server = PeerServer::bind_with(bind, Arc::clone(&archive), opts.server)?;
        let interest = match opts.interest {
            InterestMode::Derived => cdss.interest_set_for(&hosted).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            })?,
            InterestMode::Everything => Vec::new(),
        };
        let own_sources = hosted;
        // Distinct seeds per node even when the caller reuses one: mix
        // the node name in, deterministically.
        let mut seed = opts.seed;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
        }
        Ok(MeshNode {
            name,
            cdss,
            archive,
            server,
            interest,
            own_sources,
            neighbors: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            seed,
            opts,
            stats: MeshStats::default(),
        })
    }

    /// This node's name on the mesh.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The effective neighbor-selection seed (the configured seed mixed
    /// with the node name). Feeding it back through `MeshOptions::seed`
    /// on a node with an empty name replays this node's round choices.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The address the node's archive is served on.
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The owner-qualified relations this node replicates (empty = all).
    pub fn interest(&self) -> &[String] {
        &self.interest
    }

    /// The wrapped CDSS.
    pub fn cdss(&self) -> &Cdss {
        &self.cdss
    }

    /// The wrapped CDSS, mutably — publish and reconcile through this.
    pub fn cdss_mut(&mut self) -> &mut Cdss {
        &mut self.cdss
    }

    /// The shared archive this node serves and merges into.
    pub fn archive(&self) -> &Arc<dyn UpdateStore> {
        &self.archive
    }

    /// The served archive's per-message counters.
    pub fn server_stats(&self) -> orchestra_net::ServerStats {
        self.server.stats()
    }

    /// Gossip counters.
    pub fn stats(&self) -> MeshStats {
        self.stats
    }

    /// Transport counters summed across all neighbor links — the
    /// backoff/breaker fields are how harnesses prove the hardened
    /// client actually engaged under injected faults.
    pub fn net_stats(&self) -> orchestra_net::NetStats {
        self.neighbors
            .iter()
            .fold(orchestra_net::NetStats::default(), |mut acc, n| {
                let ns = n.remote.net_stats();
                acc.round_trips += ns.round_trips;
                acc.connects += ns.connects;
                acc.transport_errors += ns.transport_errors;
                acc.unavailable_mapped += ns.unavailable_mapped;
                acc.bytes_sent += ns.bytes_sent;
                acc.bytes_received += ns.bytes_received;
                acc.backoff_waits += ns.backoff_waits;
                acc.breaker_opened += ns.breaker_opened;
                acc.breaker_fast_fails += ns.breaker_fast_fails;
                acc
            })
    }

    /// Total frame bytes (sent, received) across all neighbor links.
    pub fn net_bytes(&self) -> (u64, u64) {
        self.neighbors.iter().fold((0, 0), |(s, r), n| {
            let ns = n.remote.net_stats();
            (s + ns.bytes_sent, r + ns.bytes_received)
        })
    }

    /// Add a neighbor by address (lazily dialed; duplicates ignored).
    pub fn join(&mut self, addr: impl Into<String>) -> crate::Result<()> {
        let addr = addr.into();
        if self.neighbors.iter().any(|n| n.addr == addr) {
            return Ok(());
        }
        let remote = RemoteStore::lazy_with(addr.as_str(), self.opts.remote)?;
        self.neighbors.push(Neighbor {
            addr,
            remote,
            subscribed: false,
            scan: None,
            floors: BTreeMap::new(),
            drained: None,
            failures: 0,
            last_error: None,
        });
        Ok(())
    }

    /// Current membership, in join order.
    pub fn neighbors(&self) -> Vec<String> {
        self.neighbors.iter().map(|n| n.addr.clone()).collect()
    }

    /// Drop a neighbor by address — a peer that left the mesh, or a
    /// crashed one whose replacement rebinds elsewhere. Everything
    /// learned from it (frozen cursor, floors, drained digest) goes with
    /// it; the floors only ever under-approximate, so forgetting them is
    /// always sound. Returns whether the address was a member.
    pub fn leave(&mut self, addr: &str) -> bool {
        let before = self.neighbors.len();
        self.neighbors.retain(|n| n.addr != addr);
        self.neighbors.len() != before
    }

    /// The last error an exchange with `addr` died on, if any.
    pub fn neighbor_error(&self, addr: &str) -> Option<StoreError> {
        self.neighbors
            .iter()
            .find(|n| n.addr == addr)
            .and_then(|n| n.last_error.clone())
    }

    /// The archive position the next exchange with `addr` resumes from,
    /// if the last one froze mid-scan.
    pub fn neighbor_cursor(&self, addr: &str) -> Option<FetchCursor> {
        self.neighbors
            .iter()
            .find(|n| n.addr == addr)
            .and_then(|n| n.scan.as_ref().map(|s| s.cursor.clone()))
    }

    /// The node-wide considered floors: for each source, the longest
    /// prefix of its sequence every position of which is either stored
    /// locally or outside this node's interest. Sent as the `have`
    /// vector on pulls.
    pub fn considered(&self) -> Vec<(String, u64)> {
        let mut floors: BTreeMap<String, u64> = BTreeMap::new();
        // This node's own publishers: their entire history is local (a
        // publisher's archive holds its own dense sequence by
        // construction), so the local high-water is the floor.
        if let Ok(local) = self.archive.digest() {
            for id in &self.own_sources {
                let hw = local.source_hw(id.name());
                if hw > 0 {
                    floors.insert(id.name().to_string(), hw);
                }
            }
        }
        for n in &self.neighbors {
            for (source, f) in &n.floors {
                let e = floors.entry(source.clone()).or_insert(0);
                *e = (*e).max(*f);
            }
        }
        // A quarantined position is a local hole even though it once
        // counted toward a floor: cap each source below its lowest
        // quarantined sequence, so neighbors re-ship the payload instead
        // of skipping it as already held.
        for (_, id) in self.archive.quarantined() {
            if let Some(f) = floors.get_mut(id.peer.name()) {
                *f = (*f).min(id.seq.saturating_sub(1));
            }
        }
        floors.retain(|_, f| *f > 0);
        floors.into_iter().collect()
    }

    /// One anti-entropy round: contact `fanout` random neighbors, pull
    /// whatever their digests show we miss, merge it, and rewind the
    /// CDSS over any backfill. Neighbor failures degrade the round
    /// (cursor frozen, counted) — only a *local* archive failure errors.
    pub fn run_round(&mut self) -> crate::Result<RoundReport> {
        self.stats.rounds += 1;
        // One trace id per gossip round, propagated to every neighbor
        // over HELLO/PULL_PAGES: the remote server adopts it while
        // executing, so one cross-peer exchange stitches into one trace.
        let _trace = orchestra_obs::trace_mint();
        let _span =
            orchestra_obs::span!("mesh.round", node = &self.name, round = self.stats.rounds);
        let mut report = RoundReport::default();
        let mut span: Option<(Epoch, Epoch)> = None;
        // Quarantined positions gossip as gaps: the drained snapshots
        // said "nothing new here", but a hole opened locally since, so
        // every neighbor is worth re-scanning for the repair bytes.
        if !self.archive.quarantined().is_empty() {
            for n in &mut self.neighbors {
                n.drained = None;
            }
        }
        for i in self.pick_neighbors() {
            report.contacted += 1;
            match self.exchange_with(i, &mut span, &mut report) {
                Ok(()) => {}
                // The local archive failing to merge is this node's
                // problem, not the neighbor's: surface it.
                Err(ExchangeFail::Local(e)) => return Err(e),
                Err(ExchangeFail::Neighbor(e)) => {
                    self.neighbors[i].failures += 1;
                    self.neighbors[i].last_error = Some(e);
                    self.stats.neighbor_failures += 1;
                    report.failures += 1;
                }
            }
        }
        if let Some((lo, hi)) = span {
            self.cdss.note_absorbed(lo, hi);
        }
        Ok(report)
    }

    /// The peers hosted on this node.
    pub fn hosted(&self) -> &[PeerId] {
        &self.own_sources
    }

    /// [`run_round`](MeshNode::run_round), then reconcile every hosted
    /// peer against the merged archive.
    pub fn converge_step(
        &mut self,
    ) -> std::result::Result<(RoundReport, Vec<(PeerId, ReconcileReport)>), CoreError> {
        let round = self
            .run_round()
            .map_err(|e| CoreError::Store(e.to_string()))?;
        let mut recon = Vec::with_capacity(self.own_sources.len());
        for id in self.own_sources.clone() {
            let report = self.cdss.reconcile(&id)?;
            recon.push((id, report));
        }
        Ok((round, recon))
    }

    /// Stop serving and drop every neighbor link. The archive (and the
    /// CDSS) live on through their other handles.
    pub fn shutdown(self) -> Cdss {
        self.server.shutdown();
        self.cdss
    }

    /// Deterministically pick up to `fanout` distinct neighbor indices
    /// (partial Fisher–Yates under the node's seeded generator).
    fn pick_neighbors(&mut self) -> Vec<usize> {
        let n = self.neighbors.len();
        let k = self.opts.fanout.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for slot in 0..k {
            let pick = self.rng.random_range(slot..n);
            idx.swap(slot, pick);
        }
        idx.truncate(k);
        idx
    }

    /// Run one digest/pull exchange against neighbor `i`.
    fn exchange_with(
        &mut self,
        i: usize,
        span: &mut Option<(Epoch, Epoch)>,
        report: &mut RoundReport,
    ) -> std::result::Result<(), ExchangeFail> {
        if orchestra_fault::check("mesh.exchange").is_some() {
            // An injected round-boundary failure: the exchange degrades
            // exactly like a neighbor that dropped off mid-round.
            return Err(ExchangeFail::Neighbor(StoreError::Unavailable {
                txn: format!("<{}: injected failpoint: exchange abandoned>", self.name),
            }));
        }
        if !self.neighbors[i].subscribed {
            self.neighbors[i]
                .remote
                .subscribe(&self.name, self.interest.clone())
                .map_err(ExchangeFail::Neighbor)?;
            self.neighbors[i].subscribed = true;
            self.stats.subscriptions_sent += 1;
        }
        let digest = {
            let _span = orchestra_obs::span!("mesh.digest", neighbor = i);
            self.neighbors[i]
                .remote
                .digest()
                .map_err(ExchangeFail::Neighbor)?
        };
        self.stats.digests_fetched += 1;

        // A frozen mid-scan cursor always resumes; otherwise pull only
        // if the digest shows something new we could actually absorb.
        if self.neighbors[i].scan.is_none() && !self.wants(&digest, i) {
            return Ok(());
        }

        loop {
            let cursor = match &self.neighbors[i].scan {
                Some(s) => s.cursor.clone(),
                None => {
                    // Fresh scan from the top: absorb may have
                    // backfilled behind any previous scan's end, and a
                    // rescan is the only sound way to see it. The have
                    // floors keep it cheap: considered prefixes come
                    // back as ids, not payloads.
                    let start = FetchCursor::at_epoch(Epoch::zero());
                    self.neighbors[i].scan = Some(Scan {
                        cursor: start.clone(),
                        broken: BTreeSet::new(),
                    });
                    start
                }
            };
            let have = self.considered();
            let mut page = {
                let _span = orchestra_obs::span!("mesh.pull", neighbor = i);
                self.neighbors[i]
                    .remote
                    .pull_pages(&cursor, self.opts.page_limit, &self.interest, &have)
                    .map_err(ExchangeFail::Neighbor)?
            };
            orchestra_obs::counter!("mesh.round.pages_pulled", 1);
            self.stats.pulls += 1;
            self.stats.skipped_positions += page.skipped.len() as u64;
            let shipped: Vec<TxnId> = page.txns.iter().map(|t| t.id.clone()).collect();
            if !page.txns.is_empty() {
                let (mut lo, mut hi) = (Epoch::zero(), Epoch::zero());
                for (k, t) in page.txns.iter().enumerate() {
                    if k == 0 || t.epoch < lo {
                        lo = t.epoch;
                    }
                    if k == 0 || t.epoch > hi {
                        hi = t.epoch;
                    }
                }
                let merged = {
                    let _span = orchestra_obs::span!("mesh.absorb", txns = page.txns.len());
                    self.archive
                        .absorb(std::mem::take(&mut page.txns))
                        .map_err(ExchangeFail::Local)?
                };
                orchestra_obs::counter!("mesh.round.txns_absorbed", merged.absorbed);
                self.stats.txns_absorbed += merged.absorbed;
                self.stats.duplicates += merged.duplicates;
                self.stats.healed += merged.healed;
                report.absorbed += merged.absorbed;
                report.duplicates += merged.duplicates;
                report.healed += merged.healed;
                // Healed positions deliberately stay out of the rewind
                // span: their bytes were applied before the quarantine,
                // so a re-apply would double-count them.
                if merged.absorbed > 0 {
                    *span = match span.take() {
                        None => Some((lo, hi)),
                        Some((a, b)) => Some((a.min(lo), b.max(hi))),
                    };
                }
            }
            // Witness the page only now that its payloads are durably
            // absorbed: advancing a floor before `absorb` succeeds
            // would — on a failed append/fsync — tell every neighbor we
            // hold positions we never stored, and the `have`-floor
            // handshake would then skip them forever.
            self.witness(i, &shipped, &page);
            match page.next_cursor {
                Some(next) => {
                    if let Some(scan) = &mut self.neighbors[i].scan {
                        scan.cursor = next;
                    }
                }
                None => {
                    self.neighbors[i].scan = None;
                    self.neighbors[i].drained = Some(digest);
                    return Ok(());
                }
            }
        }
    }

    /// Does this neighbor's digest promise anything we could absorb and
    /// have not already drained from it?
    fn wants(&self, digest: &StoreDigest, i: usize) -> bool {
        let n = &self.neighbors[i];
        if self.interest.is_empty() {
            // Full replication: any source past both our considered
            // floor and the last drained snapshot.
            let considered: BTreeMap<String, u64> = self.considered().into_iter().collect();
            digest.sources.iter().any(|(source, hw)| {
                *hw > considered.get(source).copied().unwrap_or(0)
                    && n.drained.as_ref().is_none_or(|d| *hw > d.source_hw(source))
            })
        } else {
            // Partial replication: an interesting relation with more
            // transactions than we hold. Sound because per relation,
            // our holdings are a prefix of that relation's subsequence
            // of the source's dense order — so a strictly greater count
            // means the neighbor has transactions we miss.
            let local = match self.archive.digest() {
                Ok(d) => d,
                Err(_) => return false,
            };
            self.interest.iter().any(|rel| {
                let theirs = digest.relation_txns(rel);
                theirs > local.relation_txns(rel)
                    && n.drained
                        .as_ref()
                        .is_none_or(|d| theirs > d.relation_txns(rel))
            })
        }
    }

    /// Advance neighbor `i`'s per-source floors over one scanned page.
    /// Within a scan each source's positions arrive in increasing
    /// sequence order (dense publisher sequences aligned with epoch
    /// order), so a floor advances exactly while `floor + 1` keeps
    /// getting witnessed; a hole or an unavailable position breaks that
    /// source for the rest of the scan.
    fn witness(&mut self, i: usize, shipped: &[TxnId], page: &PullPage) {
        let n = &mut self.neighbors[i];
        let Some(scan) = &mut n.scan else { return };
        let mut events: BTreeMap<String, Vec<(u64, bool)>> = BTreeMap::new();
        for id in shipped {
            events
                .entry(id.peer.name().to_string())
                .or_default()
                .push((id.seq, true));
        }
        for id in &page.skipped {
            events
                .entry(id.peer.name().to_string())
                .or_default()
                .push((id.seq, true));
        }
        for (_, id) in &page.unavailable {
            events
                .entry(id.peer.name().to_string())
                .or_default()
                .push((id.seq, false));
        }
        for (source, mut seqs) in events {
            if scan.broken.contains(&source) {
                continue;
            }
            seqs.sort_unstable();
            let floor = n.floors.entry(source.clone()).or_insert(0);
            for (seq, witnessed) in seqs {
                if seq <= *floor {
                    continue;
                }
                if witnessed && seq == *floor + 1 {
                    *floor = seq;
                } else {
                    // A hole (the neighbor lacks floor+1) or an
                    // unavailable payload: nothing past it is provably
                    // contiguous this scan.
                    scan.broken.insert(source);
                    break;
                }
            }
        }
    }
}

impl std::fmt::Debug for MeshNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeshNode")
            .field("name", &self.name)
            .field("addr", &self.addr())
            .field("interest", &self.interest)
            .field("neighbors", &self.neighbors.len())
            .finish()
    }
}

/// Why an exchange stopped: the neighbor's fault (degrade and continue)
/// or ours (surface).
enum ExchangeFail {
    Neighbor(StoreError),
    Local(StoreError),
}
