//! # orchestra-mesh
//!
//! Epidemic anti-entropy for the CDSS: peers converge on the published
//! history by **gossiping digests and pulling only what they miss**, with
//! **interest-based partial replication** so nobody stores or ships
//! history no local mapping can ever read.
//!
//! The paper assumes the published transactions live in "a peer-to-peer
//! distributed database" every participant can reach. `orchestra-net`
//! (PR 4) gave one peer's archive a socket; this crate makes *many* such
//! archives behave like one. Each [`MeshNode`] wraps a
//! [`Cdss`](orchestra_core::Cdss) whose update store it also serves over
//! TCP, keeps a membership list of neighbor addresses, and runs
//! **anti-entropy rounds**:
//!
//! 1. pick a few random neighbors (deterministic under a seed),
//! 2. fetch each neighbor's [`StoreDigest`](orchestra_store::StoreDigest)
//!    — per-source sequence high-waters and per-relation transaction
//!    counts, no payloads,
//! 3. decide from the digest whether the neighbor holds anything new,
//! 4. pull missing history page by page (`PullPages`), resuming frozen
//!    cursors across node failures exactly like the PR 3 reconcile loop,
//! 5. merge the pages into the local archive
//!    ([`UpdateStore::absorb`](orchestra_store::UpdateStore::absorb) —
//!    idempotent, out-of-epoch-order safe) and tell the local CDSS the
//!    archive grew behind its back
//!    ([`Cdss::note_absorbed`](orchestra_core::Cdss::note_absorbed)).
//!
//! ## Interest sets
//!
//! A node's interest set is the backward closure of its peers' relations
//! over the mapping program
//! ([`Cdss::interest_set`](orchestra_core::Cdss::interest_set)): exactly
//! the owner-qualified relations whose updates could reach some local
//! instance through a chain of mappings. Pulls send this set and the
//! server ships only matching transactions — every other scanned
//! position returns as a compact *skipped id*, which keeps the puller's
//! per-source contiguity bookkeeping exact (see below) without paying
//! for payloads.
//!
//! ## Why the bookkeeping is sound
//!
//! Publishers stamp dense per-source sequences (1, 2, 3, …) aligned with
//! epoch order, so any `(epoch, id)` scan yields each source's positions
//! in increasing sequence order. A node advances its **considered
//! floor** for source `P` from `c` to `c'` only after witnessing every
//! position in `(c, c']` during one neighbor scan — as a shipped
//! payload, a skipped id, or not at all (which freezes the floor). Below
//! the floor, everything is either stored locally or outside the node's
//! interest; the floor is therefore safe to send as the `have` vector on
//! later pulls, and anything overshipped anyway is deduplicated by the
//! local absorb. Per-neighbor *drained digests* (the digest recorded
//! when a scan ran to the end) keep rounds terminating even against
//! neighbors whose extra history the node can never absorb.

pub mod node;

pub use node::{InterestMode, MeshNode, MeshOptions, MeshStats, RoundReport};

/// Crate-wide result alias (mesh operations surface store errors).
pub type Result<T> = std::result::Result<T, orchestra_store::StoreError>;
