//! # orchestra-fault
//!
//! A deterministic failpoint registry: named injection sites compiled
//! into production code paths (the WAL append/fsync path, the wire
//! read/write path, mesh round boundaries) that stay **zero-cost while
//! disabled** — the only thing a disabled site pays is one relaxed
//! atomic load and a predictable branch.
//!
//! ## Activation
//!
//! Failpoints activate from the environment:
//!
//! ```text
//! ORCHESTRA_FAILPOINTS="store.wal.fsync=err@0.05,net.client.send=cut@0.1x20"
//! ORCHESTRA_FAILPOINT_SEED=42
//! ```
//!
//! Each rule is `site=action@prob[xcount]`:
//!
//! * `site` — the injection point's name (see the site tables in
//!   `docs/architecture.md`);
//! * `action` — what the site should do when the rule fires: `err`
//!   (return an injected error), `torn` (a partial write/short read),
//!   `flip` (corrupt one byte), `cut` (drop the connection);
//! * `prob` — firing probability in `[0,1]` (`1` fires always);
//! * `xcount` — optional cap on total firings for the rule.
//!
//! Decisions come from a seeded splitmix64 stream keyed by
//! `(seed, site, per-site hit counter)`, so a run is exactly replayable
//! from its logged seed — no wall clock, no OS entropy.
//!
//! Tests and harnesses can install a configuration programmatically with
//! [`scoped`], which holds a global guard (configs are process-wide) and
//! restores the previous state on drop.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// What a fired failpoint asks the site to do. Sites interpret actions
/// in their own terms (a `cut` at a WAL site behaves like `err`); the
/// registry only decides *whether* and *which*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fail the operation with an injected error.
    Err,
    /// Perform a partial write / short read, then fail.
    Torn,
    /// Corrupt one byte of the data in flight.
    Flip,
    /// Drop the connection / abandon the exchange.
    Cut,
}

impl Action {
    fn parse(s: &str) -> Option<Action> {
        Some(match s {
            "err" => Action::Err,
            "torn" => Action::Torn,
            "flip" => Action::Flip,
            "cut" => Action::Cut,
            _ => return None,
        })
    }

    /// The config-grammar name of this action.
    pub fn name(&self) -> &'static str {
        match self {
            Action::Err => "err",
            Action::Torn => "torn",
            Action::Flip => "flip",
            Action::Cut => "cut",
        }
    }
}

#[derive(Debug)]
struct Rule {
    site: String,
    action: Action,
    /// Firing threshold mapped onto the full u64 range: a draw below it
    /// fires. `prob = 1.0` maps to `u64::MAX` (always fires).
    threshold: u64,
    /// Remaining firings (`u64::MAX` = unlimited).
    remaining: AtomicU64,
    /// Decisions taken at this rule's site (fired or not) — the stream
    /// position, so replays are exact.
    decisions: AtomicU64,
    /// Times this rule actually fired.
    fired: AtomicU64,
}

#[derive(Debug, Default)]
struct Config {
    seed: u64,
    rules: Vec<Rule>,
}

/// One rule's cumulative counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// The site the rule watches.
    pub site: String,
    /// The rule's action.
    pub action: Action,
    /// Times the rule fired.
    pub fired: u64,
}

// 0 = uninitialized, 1 = initialized + disabled, 2 = initialized + enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

fn registry() -> &'static Mutex<Option<Config>> {
    static REG: OnceLock<Mutex<Option<Config>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(None))
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parse a config string (`site=action@prob[xcount],…`). Empty input is
/// a valid empty config. Errors name the offending rule.
fn parse(spec: &str, seed: u64) -> Result<Config, String> {
    let mut rules = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (site, rhs) = part
            .split_once('=')
            .ok_or_else(|| format!("failpoint rule `{part}`: expected site=action@prob"))?;
        let (action_s, tail) = rhs.split_once('@').unwrap_or((rhs, "1"));
        let action = Action::parse(action_s.trim())
            .ok_or_else(|| format!("failpoint rule `{part}`: unknown action `{action_s}`"))?;
        let (prob_s, count_s) = match tail.split_once('x') {
            Some((p, c)) => (p, Some(c)),
            None => (tail, None),
        };
        let prob: f64 = prob_s
            .trim()
            .parse()
            .map_err(|_| format!("failpoint rule `{part}`: bad probability `{prob_s}`"))?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!(
                "failpoint rule `{part}`: probability {prob} outside [0, 1]"
            ));
        }
        let remaining = match count_s {
            Some(c) => c
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("failpoint rule `{part}`: bad count `{c}`"))?,
            None => u64::MAX,
        };
        let threshold = if prob >= 1.0 {
            u64::MAX
        } else {
            (prob * (u64::MAX as f64)) as u64
        };
        rules.push(Rule {
            site: site.trim().to_string(),
            action,
            threshold,
            remaining: AtomicU64::new(remaining),
            decisions: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        });
    }
    Ok(Config { seed, rules })
}

fn init_from_env() -> bool {
    // Serialize initialization under the registry lock; whichever thread
    // wins publishes STATE last so `active()` readers never see stale 2.
    let mut guard = registry().lock().unwrap_or_else(|p| p.into_inner());
    // Re-check: another thread may have initialized while we waited.
    match STATE.load(Ordering::Acquire) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    let spec = std::env::var("ORCHESTRA_FAILPOINTS").unwrap_or_default();
    let seed = std::env::var("ORCHESTRA_FAILPOINT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    match parse(&spec, seed) {
        Ok(cfg) if !cfg.rules.is_empty() => {
            *guard = Some(cfg);
            STATE.store(2, Ordering::Release);
            true
        }
        Ok(_) => {
            STATE.store(1, Ordering::Release);
            false
        }
        Err(e) => {
            // A malformed env var must not take the process down or
            // silently arm random sites: report once, stay disabled.
            eprintln!("orchestra-fault: ignoring ORCHESTRA_FAILPOINTS: {e}");
            STATE.store(1, Ordering::Release);
            false
        }
    }
}

/// Is any failpoint configuration armed? The disabled fast path: one
/// relaxed load and a branch, no locks, no allocation.
#[inline]
pub fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => init_from_env(),
    }
}

/// Consult the registry at a named site. Returns the action to inject,
/// or `None` (by far the common case — and the *only* case while no
/// configuration is armed).
#[inline]
pub fn check(site: &str) -> Option<Action> {
    if !active() {
        return None;
    }
    check_slow(site)
}

#[cold]
fn check_slow(site: &str) -> Option<Action> {
    let guard = registry().lock().unwrap_or_else(|p| p.into_inner());
    let cfg = guard.as_ref()?;
    let rule = cfg.rules.iter().find(|r| r.site == site)?;
    let n = rule.decisions.fetch_add(1, Ordering::Relaxed);
    let draw = splitmix(cfg.seed ^ fnv1a(site) ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d));
    if rule.threshold != u64::MAX && draw >= rule.threshold {
        return None;
    }
    // Reserve one firing from the cap (if any).
    let mut left = rule.remaining.load(Ordering::Relaxed);
    loop {
        if left == 0 {
            return None;
        }
        let next = if left == u64::MAX { left } else { left - 1 };
        match rule
            .remaining
            .compare_exchange_weak(left, next, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => break,
            Err(cur) => left = cur,
        }
    }
    rule.fired.fetch_add(1, Ordering::Relaxed);
    // Mirror the firing into the observability registry so a cluster
    // poll (METRICS) sees which failpoints actually fired, not just the
    // in-process `report()`. Cold path: a firing already took a lock.
    orchestra_obs::add_named(&format!("fault.fired.{}", rule.site), 1);
    Some(rule.action)
}

/// A deterministic u64 drawn at `site` from the armed config's stream —
/// for sites that need *which byte to flip* or *where to cut*, not just
/// whether to fire. Returns 0 when no config is armed.
pub fn draw(site: &str) -> u64 {
    if !active() {
        return 0;
    }
    let guard = registry().lock().unwrap_or_else(|p| p.into_inner());
    let Some(cfg) = guard.as_ref() else { return 0 };
    let Some(rule) = cfg.rules.iter().find(|r| r.site == site) else {
        return splitmix(cfg.seed ^ fnv1a(site));
    };
    let n = rule.fired.load(Ordering::Relaxed);
    splitmix(cfg.seed ^ fnv1a(site) ^ n.rotate_left(17))
}

/// Total firings across every armed rule.
pub fn injected_total() -> u64 {
    if !active() {
        return 0;
    }
    let guard = registry().lock().unwrap_or_else(|p| p.into_inner());
    guard.as_ref().map_or(0, |cfg| {
        cfg.rules
            .iter()
            .map(|r| r.fired.load(Ordering::Relaxed))
            .sum()
    })
}

/// Per-rule firing counters (empty while disabled).
pub fn report() -> Vec<SiteReport> {
    if !active() {
        return Vec::new();
    }
    let guard = registry().lock().unwrap_or_else(|p| p.into_inner());
    guard.as_ref().map_or_else(Vec::new, |cfg| {
        cfg.rules
            .iter()
            .map(|r| SiteReport {
                site: r.site.clone(),
                action: r.action,
                fired: r.fired.load(Ordering::Relaxed),
            })
            .collect()
    })
}

/// The seed the armed config draws from (0 while disabled) — log it so
/// a failing run is replayable.
pub fn seed() -> u64 {
    if !active() {
        return 0;
    }
    let guard = registry().lock().unwrap_or_else(|p| p.into_inner());
    guard.as_ref().map_or(0, |cfg| cfg.seed)
}

/// Serializes [`scoped`] users: configs are process-global, so two tests
/// installing configs concurrently would trample each other.
fn scope_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Arms a configuration for the guard's lifetime; restores the previous
/// state (usually "disabled") on drop. See [`scoped`].
pub struct ScopeGuard {
    prev_cfg: Option<Config>,
    prev_state: u8,
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let mut guard = registry().lock().unwrap_or_else(|p| p.into_inner());
        *guard = self.prev_cfg.take();
        STATE.store(self.prev_state, Ordering::Release);
    }
}

/// Install a failpoint configuration programmatically (same grammar as
/// `ORCHESTRA_FAILPOINTS`) for as long as the returned guard lives.
/// Blocks until any other scoped config is dropped — configurations are
/// process-wide. Panics on a malformed spec (this is a test/harness
/// entry point; a typo should fail loudly).
pub fn scoped(spec: &str, seed: u64) -> ScopeGuard {
    let lock = scope_lock().lock().unwrap_or_else(|p| p.into_inner());
    // analyze: allow(panic) -- documented contract: a malformed spec in a test harness must fail loudly
    let cfg = parse(spec, seed).expect("valid failpoint spec");
    // Force env init first so `prev_state` reflects reality.
    let _ = active();
    let mut guard = registry().lock().unwrap_or_else(|p| p.into_inner());
    let prev_state = STATE.load(Ordering::Acquire);
    let prev_cfg = guard.take();
    let enabled = !cfg.rules.is_empty();
    *guard = Some(cfg);
    STATE.store(if enabled { 2 } else { 1 }, Ordering::Release);
    drop(guard);
    ScopeGuard {
        prev_cfg,
        prev_state,
        _lock: lock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_none_and_cheap() {
        // No env config in the test environment: every site is quiet.
        let _guard = scoped("", 0);
        assert!(!active());
        assert_eq!(check("store.wal.fsync"), None);
        assert_eq!(injected_total(), 0);
    }

    #[test]
    fn parse_grammar() {
        let cfg = parse("a=err@0.5, b.c=cut@1x3 ,d=flip", 7).unwrap();
        assert_eq!(cfg.rules.len(), 3);
        assert_eq!(cfg.rules[0].action, Action::Err);
        assert_eq!(cfg.rules[1].action, Action::Cut);
        assert_eq!(cfg.rules[1].remaining.load(Ordering::Relaxed), 3);
        assert_eq!(cfg.rules[2].threshold, u64::MAX);
        assert!(parse("broken", 0).is_err());
        assert!(parse("a=what@1", 0).is_err());
        assert!(parse("a=err@2.0", 0).is_err());
        assert!(parse("a=err@0.5xzz", 0).is_err());
    }

    #[test]
    fn always_fires_and_count_caps() {
        let _guard = scoped("s=err@1x2", 0);
        assert_eq!(check("s"), Some(Action::Err));
        assert_eq!(check("s"), Some(Action::Err));
        assert_eq!(check("s"), None, "count cap exhausted");
        assert_eq!(check("other"), None, "unarmed site");
        assert_eq!(injected_total(), 2);
        let r = report();
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].site.as_str(), r[0].fired), ("s", 2));
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |seed| {
            let _guard = scoped("s=cut@0.5", seed);
            (0..64).map(|_| check("s").is_some()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed, same stream");
        assert_ne!(run(42), run(43), "different seed, different stream");
        let fired = run(42).iter().filter(|f| **f).count();
        assert!((10..55).contains(&fired), "p=0.5 over 64 draws: {fired}");
    }

    #[test]
    fn scoped_restores_previous() {
        {
            let _outer = scoped("a=err@1", 1);
            assert_eq!(check("a"), Some(Action::Err));
        }
        assert_eq!(check("a"), None, "guard dropped, config restored");
    }

    /// Every firing `report()` counts must also land in the
    /// observability registry as `fault.fired.<site>` — that is what a
    /// remote `METRICS` poll sees, so the two views must not drift.
    #[test]
    fn firings_mirror_into_the_obs_registry() {
        let counter = |name: &str| {
            orchestra_obs::snapshot()
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let before = counter("fault.fired.test.obs.mirror");
        let _guard = scoped("test.obs.mirror=err@1x3", 0);
        for _ in 0..5 {
            let _ = check("test.obs.mirror");
        }
        let r = report();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].fired, 3, "count cap honored");
        assert_eq!(
            counter("fault.fired.test.obs.mirror"),
            before + 3,
            "registry mirror drifted from report()"
        );
    }

    #[test]
    fn draw_is_stable() {
        let _guard = scoped("s=flip@1", 9);
        let a = draw("s");
        assert_eq!(a, draw("s"), "no firings in between: same draw");
        let _ = check("s");
        assert_ne!(a, draw("s"), "a firing advances the stream");
    }
}
