//! Structured span tracing with cross-peer trace ids.
//!
//! A span records name, start offset (µs since the process-wide obs
//! epoch), duration, attributes, and the **trace id** that was current
//! on its thread. Completed spans land in a bounded per-thread ring
//! buffer (no contention on the hot path: each thread locks only its
//! own ring, and only to push).
//!
//! Trace ids are minted once per logical operation (a mesh gossip
//! round, a reconcile call) and travel with the thread via a
//! thread-local; the network layer copies the current id onto v2
//! `HELLO`/`PULL_PAGES` frames and the server **adopts** it around
//! request execution — so one cross-peer exchange stitches into a
//! single trace across every node's snapshot.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread ring capacity: old spans are dropped, newest kept.
pub const RING_CAP: usize = 1024;

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub name: &'static str,
    /// Trace id current when the span started (0 = untraced).
    pub trace: u64,
    /// Microseconds since the process obs epoch.
    pub start_us: u64,
    pub dur_us: u64,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Global completion sequence number (total order across threads).
    pub seq: u64,
    pub attrs: Vec<(&'static str, String)>,
}

type Ring = Arc<Mutex<VecDeque<SpanRecord>>>;

static RINGS: OnceLock<Mutex<Vec<Ring>>> = OnceLock::new();
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL_RING: RefCell<Option<(u64, Ring)>> = const { RefCell::new(None) };
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Microseconds since the first obs call in this process.
pub fn now_micros() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn with_local_ring(f: impl FnOnce(u64, &Ring)) {
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (tid, ring) = slot.get_or_insert_with(|| {
            let tid = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            let ring: Ring = Arc::new(Mutex::new(VecDeque::with_capacity(64)));
            let rings = RINGS.get_or_init(|| Mutex::new(Vec::new()));
            rings
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(ring.clone());
            (tid, ring)
        });
        f(*tid, ring);
    });
}

fn push_record(mut rec: SpanRecord) {
    with_local_ring(|tid, ring| {
        rec.thread = tid;
        rec.seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut ring = ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() >= RING_CAP {
            ring.pop_front();
        }
        ring.push_back(rec);
    });
}

/// Drain a copy of every thread's ring, in (thread, arrival) order.
/// The caller sorts by `seq` for a global timeline.
pub(crate) fn collect_spans() -> Vec<SpanRecord> {
    let Some(rings) = RINGS.get() else {
        return Vec::new();
    };
    let rings = rings.lock().unwrap_or_else(|p| p.into_inner());
    let mut out = Vec::new();
    for ring in rings.iter() {
        let ring = ring.lock().unwrap_or_else(|p| p.into_inner());
        out.extend(ring.iter().cloned());
    }
    out
}

/// RAII guard returned by [`crate::span!`]; records the span when
/// dropped. An inert guard (disabled layer) records nothing.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    trace: u64,
    start: Instant,
    start_us: u64,
    attrs: Vec<(&'static str, String)>,
}

impl SpanGuard {
    pub fn inert() -> Self {
        SpanGuard { inner: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.inner.take() {
            push_record(SpanRecord {
                name: a.name,
                trace: a.trace,
                start_us: a.start_us,
                dur_us: a.start.elapsed().as_micros() as u64,
                thread: 0,
                seq: 0,
                attrs: a.attrs,
            });
        }
    }
}

/// Open a span. Prefer the [`crate::span!`] macro, which skips
/// attribute formatting entirely when the layer is disabled.
pub fn span_start(name: &'static str, attrs: Vec<(&'static str, String)>) -> SpanGuard {
    if !crate::ENABLED || !crate::runtime_enabled() {
        return SpanGuard::inert();
    }
    SpanGuard {
        inner: Some(ActiveSpan {
            name,
            trace: trace_current(),
            start: Instant::now(),
            start_us: now_micros(),
            attrs,
        }),
    }
}

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

/// Restores the thread's previous trace id on drop.
pub struct TraceGuard {
    prev: u64,
    active: bool,
    /// The id this guard installed (0 for an inert guard).
    pub id: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.active {
            CURRENT_TRACE.with(|c| c.set(self.prev));
        }
    }
}

fn set_trace(id: u64) -> TraceGuard {
    let prev = CURRENT_TRACE.with(|c| c.replace(id));
    TraceGuard {
        prev,
        active: true,
        id,
    }
}

fn seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let pid = std::process::id() as u64;
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0xdead_beef);
        splitmix64((pid << 32) ^ nanos)
    })
}

/// splitmix64 — the same mixer `orchestra-fault` uses; good avalanche,
/// no dependencies.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mint a fresh trace id and make it current on this thread until the
/// guard drops. Ids mix the process id and wall clock at first use, so
/// they are unique across the nodes of a multi-process cluster with
/// overwhelming probability.
pub fn trace_mint() -> TraceGuard {
    if !crate::ENABLED {
        return TraceGuard {
            prev: 0,
            active: false,
            id: 0,
        };
    }
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut id = splitmix64(seed() ^ n);
    if id == 0 {
        id = 1;
    }
    set_trace(id)
}

/// Adopt a trace id received over the wire (server side). Adopting 0
/// is a no-op guard.
pub fn trace_adopt(id: u64) -> TraceGuard {
    if !crate::ENABLED || id == 0 {
        return TraceGuard {
            prev: 0,
            active: false,
            id: 0,
        };
    }
    set_trace(id)
}

/// The trace id current on this thread (0 = none).
pub fn trace_current() -> u64 {
    if !crate::ENABLED {
        return 0;
    }
    CURRENT_TRACE.with(|c| c.get())
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn trace_nesting_restores_previous() {
        assert_eq!(trace_current(), 0);
        let outer = trace_mint();
        assert_ne!(outer.id, 0);
        assert_eq!(trace_current(), outer.id);
        {
            let inner = trace_adopt(42);
            assert_eq!(inner.id, 42);
            assert_eq!(trace_current(), 42);
        }
        assert_eq!(trace_current(), outer.id);
        drop(outer);
        assert_eq!(trace_current(), 0);
    }

    #[test]
    fn minted_ids_are_distinct_and_nonzero() {
        let mut ids = std::collections::BTreeSet::new();
        for _ in 0..64 {
            let g = trace_mint();
            assert_ne!(g.id, 0);
            ids.insert(g.id);
        }
        assert_eq!(ids.len(), 64);
    }

    #[test]
    fn spans_land_in_the_ring_with_trace_and_order() {
        let _g = crate::test_runtime_guard();
        let t = trace_adopt(7001);
        {
            let _s = span_start("test.span.outer", vec![("k", "v".to_string())]);
            let _inner = span_start("test.span.inner", Vec::new());
        }
        drop(t);
        let spans = collect_spans();
        let outer = spans.iter().find(|s| s.name == "test.span.outer");
        let inner = spans.iter().find(|s| s.name == "test.span.inner");
        let (outer, inner) = match (outer, inner) {
            (Some(o), Some(i)) => (o, i),
            _ => panic!("both spans must be recorded"),
        };
        assert_eq!(outer.trace, 7001);
        assert_eq!(inner.trace, 7001);
        // Inner drops first, so it completes (and sequences) earlier.
        assert!(inner.seq < outer.seq);
        assert!(inner.dur_us <= outer.dur_us);
        assert_eq!(outer.attrs, vec![("k", "v".to_string())]);
        assert_eq!(outer.thread, inner.thread);
    }

    #[test]
    fn ring_is_bounded() {
        let _g = crate::test_runtime_guard();
        for _ in 0..RING_CAP + 10 {
            let _s = span_start("test.span.flood", Vec::new());
        }
        let spans = collect_spans();
        let flood = spans.iter().filter(|s| s.name == "test.span.flood").count();
        assert!(flood <= RING_CAP);
        assert!(flood >= RING_CAP - 64, "ring should keep the newest spans");
    }
}
