//! # orchestra-obs
//!
//! The unified observability layer: one process-global registry of
//! counters / gauges / latency histograms plus structured span tracing
//! with cross-peer trace ids. Dependency-free and hand-rolled in the
//! `orchestra-fault` style — crates.io is unreachable from the build
//! environment, and the hot-path cost budget is "one relaxed atomic".
//!
//! Two independent off switches:
//!
//! * **Compile time** — the `off` cargo feature sets [`ENABLED`] to
//!   `false`. The macros below check that `const` first, so with `off`
//!   every metric/span expansion folds to nothing (the A/B overhead
//!   benches build this way). Handles returned by [`counter`] etc.
//!   still count into their private cell, so product stat structs that
//!   migrated onto handles keep answering their getters.
//! * **Run time** — `ORCHESTRA_OBS=off` (or `0`) disables span and
//!   histogram *recording* via one relaxed atomic load. Counters and
//!   gauges always count: product stats are views over them.
//!
//! Scope: the registry is **process-global**. In-process multi-node
//! tests share one registry (filter by name prefix or per-instance
//! handle); the real cluster harness (E12) runs one process per node
//! and polls each over the `METRICS` wire opcode.

mod registry;
mod snapshot;
mod span;

pub use registry::{
    add_named, bucket_bound, bucket_index, counter, gauge, histogram, CounterHandle, GaugeHandle,
    HistogramHandle, HIST_BUCKETS,
};
pub use snapshot::{snapshot, snapshot_filtered, HistogramSnapshot, ObsSnapshot, SpanSnapshot};
pub use span::{
    now_micros, span_start, trace_adopt, trace_current, trace_mint, SpanGuard, SpanRecord,
    TraceGuard, RING_CAP,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// `true` unless the crate is compiled with the `off` feature. The
/// macros check this `const` so disabled expansions fold away at
/// compile time — downstream crates cannot see our features from
/// inside a macro expansion, but they can see this constant.
pub const ENABLED: bool = cfg!(not(feature = "off"));

/// 0 = uninitialised, 1 = off, 2 = on.
static RUNTIME: AtomicU8 = AtomicU8::new(0);

/// Runtime kill switch state: one relaxed load on the hot path, with
/// a cold lazy read of `ORCHESTRA_OBS` on first use.
#[inline]
pub fn runtime_enabled() -> bool {
    match RUNTIME.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => runtime_init(),
    }
}

#[cold]
fn runtime_init() -> bool {
    let on = match std::env::var("ORCHESTRA_OBS") {
        Ok(v) => !(v == "off" || v == "0"),
        Err(_) => true,
    };
    RUNTIME.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Override the runtime switch (benches, tests).
pub fn set_runtime_enabled(on: bool) {
    RUNTIME.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Bump a named counter through a lazily-registered static handle:
/// `orchestra_obs::counter!("mesh.round.pages_pulled", n)`. Hot-path
/// cost after the first call is one relaxed `fetch_add`; with the
/// `off` feature the whole expansion is dead code.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {{
        if $crate::ENABLED {
            static __OBS_C: ::std::sync::OnceLock<$crate::CounterHandle> =
                ::std::sync::OnceLock::new();
            __OBS_C.get_or_init(|| $crate::counter($name)).add($n);
        }
    }};
}

/// Adjust a named gauge by a signed delta:
/// `orchestra_obs::gauge!("net.breaker.open", -1)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $n:expr) => {{
        if $crate::ENABLED {
            static __OBS_G: ::std::sync::OnceLock<$crate::GaugeHandle> =
                ::std::sync::OnceLock::new();
            __OBS_G.get_or_init(|| $crate::gauge($name)).add($n);
        }
    }};
}

/// Record one observation (microseconds) into a named histogram:
/// `orchestra_obs::histogram!("store.wal.fsync_micros", micros)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $v:expr) => {{
        if $crate::ENABLED {
            static __OBS_H: ::std::sync::OnceLock<$crate::HistogramHandle> =
                ::std::sync::OnceLock::new();
            __OBS_H.get_or_init(|| $crate::histogram($name)).record($v);
        }
    }};
}

/// Evaluate an expression, recording its wall-clock duration into a
/// named histogram. With the layer disabled (either switch) this is
/// exactly the expression — no `Instant` is taken.
#[macro_export]
macro_rules! time_histogram {
    ($name:expr, $body:expr) => {{
        if $crate::ENABLED && $crate::runtime_enabled() {
            let __obs_t = ::std::time::Instant::now();
            let __obs_r = $body;
            $crate::histogram!($name, __obs_t.elapsed().as_micros() as u64);
            __obs_r
        } else {
            $body
        }
    }};
}

/// Open a span: `let _span = span!("reconcile.page", peer, epoch);`.
/// Attributes are `ident` (captured via `Display`) or `ident = expr`.
/// The span records on guard drop; when the layer is disabled the
/// attribute expressions are never formatted.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident $(= $v:expr)?)* $(,)?) => {
        if $crate::ENABLED && $crate::runtime_enabled() {
            $crate::span_start(
                $name,
                vec![$((stringify!($k), $crate::__attr_value!($k $(= $v)?))),*],
            )
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __attr_value {
    ($k:ident) => {
        format!("{}", $k)
    };
    ($k:ident = $v:expr) => {
        format!("{}", $v)
    };
}

/// Tests that depend on the runtime switch being on (span/histogram
/// recording) serialise against the one test that turns it off — the
/// switch is process-global and the harness runs tests in parallel.
#[cfg(test)]
pub(crate) fn test_runtime_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_runtime_enabled(true);
    g
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    #[test]
    fn macros_compile_and_count() {
        let _g = crate::test_runtime_guard();
        crate::counter!("test.macros.c", 2);
        crate::counter!("test.macros.c", 1);
        crate::gauge!("test.macros.g", 5);
        crate::gauge!("test.macros.g", -2);
        crate::histogram!("test.macros.h", 17);
        let r = crate::time_histogram!("test.macros.th", 1 + 1);
        assert_eq!(r, 2);
        {
            let peer = "p1";
            let _span = crate::span!("test.macros.span", peer, epoch = 9);
        }
        let snap = crate::snapshot_filtered("test.macros.");
        assert_eq!(
            snap.counters,
            vec![("test.macros.c".to_string(), 3)],
            "counter! accumulates into one registry entry"
        );
        assert_eq!(snap.gauges, vec![("test.macros.g".to_string(), 3)]);
        let hist_names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(hist_names, vec!["test.macros.h", "test.macros.th"]);
        let span = snap
            .spans
            .iter()
            .find(|s| s.name == "test.macros.span")
            .cloned()
            .unwrap_or_default();
        assert_eq!(
            span.attrs,
            vec![
                ("peer".to_string(), "p1".to_string()),
                ("epoch".to_string(), "9".to_string()),
            ]
        );
    }

    #[test]
    fn runtime_switch_stops_spans_and_histograms() {
        let _g = crate::test_runtime_guard();
        crate::set_runtime_enabled(false);
        {
            let _s = crate::span!("test.rtswitch.span");
        }
        crate::histogram!("test.rtswitch.h", 5);
        crate::counter!("test.rtswitch.c", 1);
        crate::set_runtime_enabled(true);
        let snap = crate::snapshot_filtered("test.rtswitch.");
        assert!(snap.spans.is_empty(), "runtime-off must drop spans");
        let h = snap.histograms.iter().find(|h| h.name == "test.rtswitch.h");
        assert_eq!(h.map(|h| h.count), Some(0));
        assert_eq!(snap.counters, vec![("test.rtswitch.c".to_string(), 1)]);
        crate::set_runtime_enabled(true);
    }
}

#[cfg(all(test, feature = "off"))]
mod off_tests {
    /// With the `off` feature the registry is inert but handles keep
    /// their local cell, so migrated stat-struct getters still work.
    #[test]
    fn off_mode_keeps_local_cells_and_empty_snapshots() {
        assert!(!crate::ENABLED);
        let c = crate::counter("store.published");
        c.add(3);
        assert_eq!(c.get(), 3);
        let g = crate::gauge("net.breaker.open");
        g.add(2);
        g.sub(1);
        assert_eq!(g.get(), 1);
        crate::histogram("x").record(5);
        crate::counter!("x.c", 1);
        crate::gauge!("x.g", 1);
        crate::histogram!("x.h", 1);
        assert_eq!(crate::time_histogram!("x.th", 21 * 2), 42);
        {
            let _span = crate::span!("x.span", attr = 1);
        }
        let t = crate::trace_mint();
        assert_eq!(t.id, 0);
        assert_eq!(crate::trace_current(), 0);
        drop(t);
        let snap = crate::snapshot();
        assert_eq!(snap, crate::ObsSnapshot::default());
        assert_eq!(crate::snapshot_filtered("x").counters.len(), 0);
    }
}
