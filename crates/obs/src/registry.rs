//! The global metrics registry: counters, gauges, and fixed-bucket
//! latency histograms, addressed by canonical dotted names
//! (`store.wal.fsync_micros`, `net.breaker.open`, …).
//!
//! Counters and gauges are **sharded**: each [`CounterHandle`] owns a
//! private atomic cell, so the hot path is a single relaxed
//! `fetch_add` with no cross-instance contention, and a handle can
//! still report its *own* count (the migrated per-instance stat
//! structs depend on that). The registry view folds all live shards
//! plus a `retired` total that absorbs dropped shards — so the global
//! value is monotone across instance lifetimes. That property is the
//! fix for the breaker-stats reset bug: a `RemoteStore` recreated
//! after a half-open cycle starts a fresh shard, but the registry
//! total never goes backwards.
//!
//! Gauges deliberately do **not** fold on drop: a dropped shard's
//! contribution vanishes, which is the right semantics for
//! "currently open/held" values like `net.breaker.open`.
//!
//! Histograms are process-global per name (one set of bucket atomics;
//! recording is a couple of relaxed `fetch_add`s, no allocation).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};

/// Recover from a poisoned mutex: the registry holds only atomics, so
/// a panicking holder cannot leave it logically torn.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

pub(crate) struct CounterEntry {
    /// Sum folded in from dropped shards.
    retired: AtomicU64,
    shards: Mutex<Vec<Weak<CounterShard>>>,
}

impl CounterEntry {
    fn new() -> Self {
        CounterEntry {
            retired: AtomicU64::new(0),
            shards: Mutex::new(Vec::new()),
        }
    }

    /// Registry-wide value: retired + every live shard, pruning dead
    /// weak references as a side effect.
    pub(crate) fn total(&self) -> u64 {
        let mut sum = self.retired.load(Ordering::Relaxed);
        let mut shards = relock(&self.shards);
        shards.retain(|w| match w.upgrade() {
            Some(s) => {
                sum = sum.wrapping_add(s.cell.load(Ordering::Relaxed));
                true
            }
            None => false,
        });
        sum
    }
}

struct CounterShard {
    cell: AtomicU64,
    /// `None` for unregistered handles (compiled-off mode).
    entry: Option<Arc<CounterEntry>>,
}

impl Drop for CounterShard {
    fn drop(&mut self) {
        if let Some(e) = &self.entry {
            e.retired
                .fetch_add(self.cell.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// A sharded counter. Cloning shares the shard; dropping the last
/// clone folds the shard's count into the registry's retired total.
#[derive(Clone)]
pub struct CounterHandle {
    shard: Arc<CounterShard>,
}

impl std::fmt::Debug for CounterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CounterHandle({})", self.get())
    }
}

impl CounterHandle {
    /// A handle with a local cell only — never registered. Used when
    /// the crate is compiled with the `off` feature so migrated stat
    /// structs keep working.
    pub fn detached() -> Self {
        CounterHandle {
            shard: Arc::new(CounterShard {
                cell: AtomicU64::new(0),
                entry: None,
            }),
        }
    }

    /// One relaxed `fetch_add` — the entire hot path.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shard.cell.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// This handle's own count (per-instance view; the registry total
    /// may be larger).
    #[inline]
    pub fn get(&self) -> u64 {
        self.shard.cell.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

pub(crate) struct GaugeEntry {
    shards: Mutex<Vec<Weak<GaugeShard>>>,
}

impl GaugeEntry {
    fn new() -> Self {
        GaugeEntry {
            shards: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn total(&self) -> i64 {
        let mut sum = 0i64;
        let mut shards = relock(&self.shards);
        shards.retain(|w| match w.upgrade() {
            Some(s) => {
                sum = sum.wrapping_add(s.cell.load(Ordering::Relaxed));
                true
            }
            None => false,
        });
        sum
    }
}

struct GaugeShard {
    cell: AtomicI64,
}

/// A sharded gauge. A dropped shard's contribution vanishes from the
/// registry total — correct for "currently …" values.
#[derive(Clone)]
pub struct GaugeHandle {
    shard: Arc<GaugeShard>,
    // Kept alive only so the registry can observe the shard; the
    // detached constructor has no entry.
    _entry: Option<Arc<GaugeEntry>>,
}

impl std::fmt::Debug for GaugeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GaugeHandle({})", self.get())
    }
}

impl GaugeHandle {
    pub fn detached() -> Self {
        GaugeHandle {
            shard: Arc::new(GaugeShard {
                cell: AtomicI64::new(0),
            }),
            _entry: None,
        }
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.shard.cell.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.shard.cell.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.shard.cell.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.shard.cell.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Bucket count: powers of two from 1µs to 2^21µs (~2.1s), plus one
/// overflow bucket. Boundaries are implicit — `bucket_bound(i)` — so
/// the wire snapshot only carries counts.
pub const HIST_BUCKETS: usize = 23;

/// Upper bound (inclusive, in microseconds) of bucket `i`; the last
/// bucket is unbounded.
pub fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Bucket index for a recorded value: first bucket whose bound is
/// `>= v`.
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let idx = 64 - ((v - 1).leading_zeros() as usize);
    idx.min(HIST_BUCKETS - 1)
}

pub(crate) struct HistogramEntry {
    counts: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramEntry {
    fn new() -> Self {
        HistogramEntry {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    pub(crate) fn read(&self) -> (u64, u64, Vec<u64>) {
        let counts = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        (
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            counts,
        )
    }
}

/// A process-global histogram of microsecond latencies.
#[derive(Clone)]
pub struct HistogramHandle {
    entry: Option<Arc<HistogramEntry>>,
}

impl std::fmt::Debug for HistogramHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HistogramHandle")
    }
}

impl HistogramHandle {
    pub fn detached() -> Self {
        HistogramHandle { entry: None }
    }

    /// Record one observation (microseconds). Respects the runtime
    /// kill switch so `ORCHESTRA_OBS=off` stops histogram work.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(e) = &self.entry {
            if crate::runtime_enabled() {
                e.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
                e.sum.fetch_add(v, Ordering::Relaxed);
                e.count.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

pub(crate) struct Registry {
    pub(crate) counters: BTreeMap<String, Arc<CounterEntry>>,
    pub(crate) gauges: BTreeMap<String, Arc<GaugeEntry>>,
    pub(crate) histograms: BTreeMap<String, Arc<HistogramEntry>>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

pub(crate) fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let m = REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        })
    });
    f(&mut relock(m))
}

/// Register (or re-open) the counter `name` and return a fresh shard
/// handle for it.
pub fn counter(name: &str) -> CounterHandle {
    if !crate::ENABLED {
        return CounterHandle::detached();
    }
    let entry = with_registry(|r| {
        r.counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterEntry::new()))
            .clone()
    });
    let shard = Arc::new(CounterShard {
        cell: AtomicU64::new(0),
        entry: Some(entry.clone()),
    });
    relock(&entry.shards).push(Arc::downgrade(&shard));
    CounterHandle { shard }
}

/// Register (or re-open) the gauge `name` and return a fresh shard
/// handle for it.
pub fn gauge(name: &str) -> GaugeHandle {
    if !crate::ENABLED {
        return GaugeHandle::detached();
    }
    let entry = with_registry(|r| {
        r.gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(GaugeEntry::new()))
            .clone()
    });
    let shard = Arc::new(GaugeShard {
        cell: AtomicI64::new(0),
    });
    relock(&entry.shards).push(Arc::downgrade(&shard));
    GaugeHandle {
        shard,
        _entry: Some(entry),
    }
}

/// The process-global histogram `name`.
pub fn histogram(name: &str) -> HistogramHandle {
    if !crate::ENABLED {
        return HistogramHandle::detached();
    }
    let entry = with_registry(|r| {
        r.histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramEntry::new()))
            .clone()
    });
    HistogramHandle { entry: Some(entry) }
}

/// Bump a counter by a name computed at runtime (cold paths only — a
/// registry lock per call; hot paths use cached handles). Used for
/// dynamic families like `fault.fired.<site>`.
pub fn add_named(name: &str, n: u64) {
    if !crate::ENABLED {
        return;
    }
    let entry = with_registry(|r| {
        r.counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterEntry::new()))
            .clone()
    });
    entry.retired.fetch_add(n, Ordering::Relaxed);
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn shard_folds_into_registry_on_drop() {
        let h = counter("test.registry.fold");
        h.add(5);
        assert_eq!(h.get(), 5);
        let h2 = counter("test.registry.fold");
        h2.add(7);
        assert_eq!(h2.get(), 7);
        let total = with_registry(|r| r.counters["test.registry.fold"].total());
        assert_eq!(total, 12);
        drop(h);
        let total = with_registry(|r| r.counters["test.registry.fold"].total());
        assert_eq!(total, 12, "dropping a shard must not lose its count");
        // A clone keeps the shard alive: dropping one of two clones
        // must not fold early (that would double-count).
        let c1 = counter("test.registry.fold.clone");
        c1.add(3);
        let c2 = c1.clone();
        drop(c1);
        let total = with_registry(|r| r.counters["test.registry.fold.clone"].total());
        assert_eq!(total, 3);
        c2.add(1);
        drop(c2);
        let total = with_registry(|r| r.counters["test.registry.fold.clone"].total());
        assert_eq!(total, 4);
    }

    #[test]
    fn gauge_shard_vanishes_on_drop() {
        let g1 = gauge("test.registry.gauge");
        let g2 = gauge("test.registry.gauge");
        g1.set(1);
        g2.set(1);
        let total = with_registry(|r| r.gauges["test.registry.gauge"].total());
        assert_eq!(total, 2);
        drop(g1);
        let total = with_registry(|r| r.gauges["test.registry.gauge"].total());
        assert_eq!(total, 1, "a dropped gauge shard's contribution vanishes");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i covers (2^(i-1), 2^i]; bucket 0 covers [0, 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        // 2^21 µs is the last bounded bucket; everything above lands
        // in the overflow bucket.
        assert_eq!(bucket_index(1 << 21), 21);
        assert_eq!(bucket_index((1 << 21) + 1), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Bounds are consistent with the index function.
        for i in 0..HIST_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_bound(i)), i);
            assert_eq!(bucket_index(bucket_bound(i) + 1), i + 1);
        }
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_records_sum_and_count() {
        let _g = crate::test_runtime_guard();
        let h = histogram("test.registry.hist");
        h.record(1);
        h.record(100);
        h.record(3_000_000);
        let (count, sum, counts) = with_registry(|r| r.histograms["test.registry.hist"].read());
        assert_eq!(count, 3);
        assert_eq!(sum, 3_000_101);
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[bucket_index(100)], 1);
        assert_eq!(counts[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn add_named_accumulates() {
        add_named("test.registry.named", 2);
        add_named("test.registry.named", 3);
        let total = with_registry(|r| r.counters["test.registry.named"].total());
        assert_eq!(total, 5);
    }
}
