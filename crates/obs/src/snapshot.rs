//! Point-in-time exporters: one [`ObsSnapshot`] carries every counter,
//! gauge, and histogram in the registry plus the recent span rings,
//! renderable as text or JSON and encodable on the wire (the codec
//! lives in `orchestra-net`, which answers the `METRICS` opcode with
//! exactly this struct).
//!
//! Determinism: metric sections iterate the registry's `BTreeMap`s, so
//! they are always name-sorted; spans are sorted by their global
//! completion sequence. Two snapshots taken with no intervening
//! activity are byte-identical in every rendering.

use crate::registry::with_registry;
use crate::span::collect_spans;

#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    /// One count per bucket; bounds are implicit
    /// ([`crate::bucket_bound`]).
    pub buckets: Vec<u64>,
}

#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanSnapshot {
    pub name: String,
    pub trace: u64,
    pub start_us: u64,
    pub dur_us: u64,
    pub thread: u64,
    pub seq: u64,
    pub attrs: Vec<(String, String)>,
}

/// Everything the obs layer knows, at one instant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSnapshot {
    /// Name-sorted `(name, registry total)` pairs.
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
    /// Recent spans from every thread ring, sorted by completion seq.
    pub spans: Vec<SpanSnapshot>,
}

/// Snapshot the whole registry. Empty when compiled with `off`.
pub fn snapshot() -> ObsSnapshot {
    snapshot_filtered("")
}

/// Snapshot only entries (metrics by name, spans by span name) that
/// start with `prefix`. Tests use unique prefixes to stay isolated
/// from the process-global registry shared with parallel test threads.
pub fn snapshot_filtered(prefix: &str) -> ObsSnapshot {
    if !crate::ENABLED {
        return ObsSnapshot::default();
    }
    let (counters, gauges, histograms) = with_registry(|r| {
        let counters: Vec<(String, u64)> = r
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(n, e)| (n.clone(), e.total()))
            .collect();
        let gauges: Vec<(String, i64)> = r
            .gauges
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(n, e)| (n.clone(), e.total()))
            .collect();
        let histograms: Vec<HistogramSnapshot> = r
            .histograms
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(n, e)| {
                let (count, sum, buckets) = e.read();
                HistogramSnapshot {
                    name: n.clone(),
                    count,
                    sum,
                    buckets,
                }
            })
            .collect();
        (counters, gauges, histograms)
    });
    let mut spans: Vec<SpanSnapshot> = collect_spans()
        .into_iter()
        .filter(|s| s.name.starts_with(prefix))
        .map(|s| SpanSnapshot {
            name: s.name.to_string(),
            trace: s.trace,
            start_us: s.start_us,
            dur_us: s.dur_us,
            thread: s.thread,
            seq: s.seq,
            attrs: s
                .attrs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        })
        .collect();
    spans.sort_by_key(|s| s.seq);
    ObsSnapshot {
        counters,
        gauges,
        histograms,
        spans,
    }
}

impl ObsSnapshot {
    /// Keep only entries whose name starts with `prefix` (applies the
    /// same rule [`snapshot_filtered`] uses, but to an existing
    /// snapshot — e.g. one received over the wire).
    pub fn filtered(&self, prefix: &str) -> ObsSnapshot {
        ObsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| h.name.starts_with(prefix))
                .cloned()
                .collect(),
            spans: self
                .spans
                .iter()
                .filter(|s| s.name.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }

    /// Human-readable dump (`orchestra-top`, debugging).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# counters\n");
        for (n, v) in &self.counters {
            out.push_str(&format!("{n} = {v}\n"));
        }
        out.push_str("# gauges\n");
        for (n, v) in &self.gauges {
            out.push_str(&format!("{n} = {v}\n"));
        }
        out.push_str("# histograms (count / sum_us / mean_us)\n");
        for h in &self.histograms {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            out.push_str(&format!(
                "{} = {} / {} / {}\n",
                h.name, h.count, h.sum, mean
            ));
        }
        out.push_str(&format!("# spans ({})\n", self.spans.len()));
        for s in &self.spans {
            let attrs: Vec<String> = s.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(
                "[{:016x}] {} +{}us {}us t{} {}\n",
                s.trace,
                s.name,
                s.start_us,
                s.dur_us,
                s.thread,
                attrs.join(" ")
            ));
        }
        out
    }

    /// JSON rendering (hand-rolled; no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_pairs(
            &mut out,
            self.counters.iter().map(|(n, v)| (n, v.to_string())),
        );
        out.push_str("},\"gauges\":{");
        push_pairs(
            &mut out,
            self.gauges.iter().map(|(n, v)| (n, v.to_string())),
        );
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for h in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum_us\":{},\"buckets\":[{}]}}",
                json_str(&h.name),
                h.count,
                h.sum,
                h.buckets
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out.push_str("},\"spans\":[");
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":{},\"trace\":\"{:016x}\",\"start_us\":{},\"dur_us\":{},\
                 \"thread\":{},\"seq\":{},\"attrs\":{{",
                json_str(&s.name),
                s.trace,
                s.start_us,
                s.dur_us,
                s.thread,
                s.seq
            ));
            push_pairs(&mut out, s.attrs.iter().map(|(k, v)| (k, json_str(v))));
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn push_pairs<'a>(out: &mut String, pairs: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in pairs {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&json_str(k));
        out.push(':');
        out.push_str(&v);
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_deterministic_and_name_sorted() {
        let _g = crate::test_runtime_guard();
        // Register deliberately out of name order.
        let b = crate::counter("test.detsnap.b");
        let a = crate::counter("test.detsnap.a");
        b.add(2);
        a.add(1);
        let g = crate::gauge("test.detsnap.g");
        g.set(-3);
        let h = crate::histogram("test.detsnap.h");
        h.record(10);

        let s1 = snapshot_filtered("test.detsnap.");
        let s2 = snapshot_filtered("test.detsnap.");
        assert_eq!(s1, s2);
        assert_eq!(s1.render_text(), s2.render_text());
        assert_eq!(s1.to_json(), s2.to_json());
        let names: Vec<&str> = s1.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["test.detsnap.a", "test.detsnap.b"]);
        assert_eq!(s1.counters[0].1, 1);
        assert_eq!(s1.counters[1].1, 2);
        assert_eq!(s1.gauges, vec![("test.detsnap.g".to_string(), -3)]);
        assert_eq!(s1.histograms.len(), 1);
        assert_eq!(s1.histograms[0].count, 1);
    }

    #[test]
    fn json_escapes_and_has_shape() {
        let snap = ObsSnapshot {
            counters: vec![("a\"b".to_string(), 1)],
            gauges: vec![("g".to_string(), -2)],
            histograms: vec![HistogramSnapshot {
                name: "h".to_string(),
                count: 1,
                sum: 5,
                buckets: vec![0, 1],
            }],
            spans: vec![SpanSnapshot {
                name: "s".to_string(),
                trace: 0xab,
                start_us: 1,
                dur_us: 2,
                thread: 3,
                seq: 4,
                attrs: vec![("k".to_string(), "line\nbreak".to_string())],
            }],
        };
        let j = snap.to_json();
        assert!(j.contains("\"a\\\"b\":1"));
        assert!(j.contains("\"gauges\":{\"g\":-2}"));
        assert!(j.contains("\"sum_us\":5"));
        assert!(j.contains("\"trace\":\"00000000000000ab\""));
        assert!(j.contains("line\\nbreak"));
    }

    #[test]
    fn filtered_matches_snapshot_filtered() {
        let c = crate::counter("test.filtview.x");
        c.inc();
        let full = snapshot_filtered("test.filtview");
        assert_eq!(full.filtered("test.filtview"), full);
        assert!(full.filtered("test.nothing").counters.is_empty());
    }
}
