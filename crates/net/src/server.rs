//! [`PeerServer`]: expose any [`UpdateStore`] backend over TCP.
//!
//! One listener, a small fixed worker pool. Connections are *not* pinned
//! to workers: a worker takes a connection off the shared queue, serves
//! requests while data keeps arriving (bounded per turn for fairness),
//! and the moment the connection goes quiet for one poll tick it is
//! requeued and the worker moves on — so a handful of idle keep-alive
//! clients can never starve new connections. Reads poll in short ticks
//! (graceful shutdown never waits on an idle socket), a frame that
//! started arriving must complete within `read_timeout`, and quiet
//! connections are reaped after `idle_timeout`.

use crate::proto::{
    required_version, PullPage, Request, Response, ServerCounters, PROTOCOL_VERSION,
};
use orchestra_store::frame::{crc32, frame, FRAME_HEADER, MAX_FRAME_LEN};
use orchestra_store::{StoreError, UpdateStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How often a blocked read wakes up to check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Tunables for a [`PeerServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Worker threads — the number of connections served concurrently.
    pub workers: usize,
    /// An idle connection (no request in progress) is closed after this
    /// long; the client pool reconnects transparently.
    pub idle_timeout: Duration,
    /// A connection that stalls *mid-frame* for this long is closed.
    pub read_timeout: Duration,
    /// A response write that blocks for this long closes the connection.
    pub write_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 4,
            idle_timeout: Duration::from_secs(60),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Counters exposed by a [`PeerServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (any response, including errors).
    pub requests: u64,
    /// Requests answered with an [`Response::Err`].
    pub errors: u64,
    /// Connections dropped for protocol violations (bad magic, corrupt
    /// frames, mid-frame stalls).
    pub protocol_errors: u64,
    /// `DIGEST` requests served (v2).
    pub digests_served: u64,
    /// `PULL_PAGES` requests served (v2).
    pub pull_pages: u64,
    /// `SUBSCRIBE` registrations accepted (v2).
    pub subscriptions: u64,
    /// Inbound frames dropped for a checksum mismatch or an oversized
    /// length prefix — a flipped bit on the wire, not a stall. A subset
    /// of `protocol_errors`.
    pub corrupt_frames: u64,
    /// Connections closed because a frame stalled mid-transfer past
    /// `read_timeout`. A subset of `protocol_errors`.
    pub timed_out_conns: u64,
}

impl ServerStats {
    /// The v2 per-message-type counters appended to `PROBE_OK`.
    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            digests_served: self.digests_served,
            pull_pages: self.pull_pages,
            subscriptions: self.subscriptions,
            corrupt_frames: self.corrupt_frames,
            timed_out_conns: self.timed_out_conns,
        }
    }
}

/// Per-server counters, each a handle onto the process-wide
/// `orchestra-obs` registry entry of the same `server.*` name: the
/// handle's own cell keeps [`ServerStats`] per-instance (the getter API
/// and the `PROBE_OK` tail are unchanged), while the registry aggregates
/// across restarts — the drift source the workspace linter flagged on
/// `PROBE_OK` is gone because both views read the same cells.
#[derive(Debug)]
struct AtomicServerStats {
    connections: orchestra_obs::CounterHandle,
    requests: orchestra_obs::CounterHandle,
    errors: orchestra_obs::CounterHandle,
    protocol_errors: orchestra_obs::CounterHandle,
    digests_served: orchestra_obs::CounterHandle,
    pull_pages: orchestra_obs::CounterHandle,
    subscriptions: orchestra_obs::CounterHandle,
    corrupt_frames: orchestra_obs::CounterHandle,
    timed_out_conns: orchestra_obs::CounterHandle,
}

impl Default for AtomicServerStats {
    fn default() -> Self {
        AtomicServerStats {
            connections: orchestra_obs::counter("server.connections"),
            requests: orchestra_obs::counter("server.requests"),
            errors: orchestra_obs::counter("server.errors"),
            protocol_errors: orchestra_obs::counter("server.protocol_errors"),
            digests_served: orchestra_obs::counter("server.digests_served"),
            pull_pages: orchestra_obs::counter("server.pull_pages"),
            subscriptions: orchestra_obs::counter("server.subscriptions"),
            corrupt_frames: orchestra_obs::counter("server.corrupt_frames"),
            timed_out_conns: orchestra_obs::counter("server.timed_out_conns"),
        }
    }
}

impl AtomicServerStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.get(),
            requests: self.requests.get(),
            errors: self.errors.get(),
            protocol_errors: self.protocol_errors.get(),
            digests_served: self.digests_served.get(),
            pull_pages: self.pull_pages.get(),
            subscriptions: self.subscriptions.get(),
            corrupt_frames: self.corrupt_frames.get(),
            timed_out_conns: self.timed_out_conns.get(),
        }
    }
}

/// A TCP endpoint serving the [`UpdateStore`] surface of any backend —
/// in-memory, replicated, or durable. Peers on other machines attach a
/// [`RemoteStore`](crate::RemoteStore) to it and reconcile as if the
/// archive were local.
pub struct PeerServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<AtomicServerStats>,
    subscriptions: Arc<Mutex<BTreeMap<String, Vec<String>>>>,
}

impl PeerServer {
    /// Bind with default options. Pass port 0 to let the OS pick one
    /// (read it back from [`local_addr`](PeerServer::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, store: Arc<dyn UpdateStore>) -> std::io::Result<Self> {
        PeerServer::bind_with(addr, store, ServerOptions::default())
    }

    /// Bind with explicit options.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        store: Arc<dyn UpdateStore>,
        opts: ServerOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(AtomicServerStats::default());
        let subscriptions = Arc::new(Mutex::new(BTreeMap::new()));
        let (tx, rx) = mpsc::channel::<Conn>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(opts.workers.max(1));
        for _ in 0..opts.workers.max(1) {
            let rx = Arc::clone(&rx);
            let tx = tx.clone();
            let store = Arc::clone(&store);
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let subscriptions = Arc::clone(&subscriptions);
            workers.push(std::thread::spawn(move || loop {
                // Hold the receiver lock only while waiting for the next
                // connection; serve it with the lock released. The wait
                // is a short tick so shutdown is always observed even
                // though this worker's own `tx` clone keeps the channel
                // open.
                let conn = {
                    let guard = rx.lock();
                    guard.recv_timeout(POLL_TICK)
                };
                match conn {
                    Ok(mut conn) => {
                        match serve_turn(
                            &mut conn,
                            &*store,
                            &shutdown,
                            opts,
                            &stats,
                            &subscriptions,
                        ) {
                            // Quiet but healthy: hand the connection back
                            // to the queue so this worker can serve
                            // someone else.
                            Turn::Keep if !shutdown.load(Ordering::SeqCst) => {
                                let _ = tx.send(conn);
                            }
                            _ => {} // Closed, or shutting down: drop it.
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }));
        }

        // Non-blocking accept loop: polls the shutdown flag every tick,
        // so shutdown never depends on being able to connect to our own
        // listening address.
        listener.set_nonblocking(true)?;
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || loop {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(Some(POLL_TICK));
                        let _ = stream.set_write_timeout(Some(opts.write_timeout));
                        stats.connections.inc();
                        if tx
                            .send(Conn {
                                stream,
                                greeted: false,
                                version: 0,
                                idle_since: Instant::now(),
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_TICK);
                    }
                    Err(_) => std::thread::sleep(POLL_TICK),
                }
                // `tx` drops when this thread exits; the workers each
                // hold a clone, and exit on the shutdown flag instead.
            })
        };

        Ok(PeerServer {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            stats,
            subscriptions,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Counters snapshot.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// The mesh subscribers registered on this server (peer name →
    /// interest set; an empty interest means full replication). Last
    /// registration per peer wins.
    pub fn subscribers(&self) -> BTreeMap<String, Vec<String>> {
        self.subscriptions.lock().clone()
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// join every thread. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Acceptor and workers poll the flag every tick; nothing blocks
        // indefinitely, so plain joins suffice.
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for PeerServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for PeerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// A connection and its protocol state, travelling between workers via
/// the shared queue.
struct Conn {
    stream: TcpStream,
    /// HELLO completed — until then only a handshake is accepted.
    greeted: bool,
    /// The version negotiated at HELLO (0 before the handshake): v2
    /// opcodes on a v1 connection are answered with a clean `ERR`.
    version: u64,
    /// When this connection last did useful work (for idle reaping).
    idle_since: Instant,
}

/// What a worker should do with a connection after one serving turn.
enum Turn {
    /// Healthy but currently quiet: requeue it.
    Keep,
    /// Closed, violated the protocol, idled out, or shutting down.
    Close,
}

/// Requests served back-to-back before a busy connection is requeued —
/// keeps one chatty peer from pinning a worker forever.
const REQUESTS_PER_TURN: usize = 128;

/// Serve one turn on a connection: handle requests while data keeps
/// arriving, yield the worker as soon as the connection goes quiet for
/// one poll tick.
fn serve_turn(
    conn: &mut Conn,
    store: &dyn UpdateStore,
    shutdown: &AtomicBool,
    opts: ServerOptions,
    stats: &AtomicServerStats,
    subscriptions: &Mutex<BTreeMap<String, Vec<String>>>,
) -> Turn {
    for _ in 0..REQUESTS_PER_TURN {
        // Phase 1: wait one tick for the first byte of the next frame.
        let mut first = [0u8; 1];
        match read_exact_polled(&mut conn.stream, &mut first, shutdown, POLL_TICK, true) {
            PolledRead::Done => {}
            PolledRead::Eof => return Turn::Close, // Clean close.
            PolledRead::Shutdown => return Turn::Close,
            PolledRead::TimedOut => {
                // Quiet this tick: reap if it has been quiet too long,
                // otherwise give the worker back.
                if conn.idle_since.elapsed() >= opts.idle_timeout {
                    return Turn::Close;
                }
                return Turn::Keep;
            }
            PolledRead::Failed => return Turn::Close,
        }
        // Phase 2: the frame started — it must now complete within
        // `read_timeout`, or the peer is stalling mid-frame.
        // analyze: allow(panic) -- `first` is a fixed [u8; 1] buffer; index 0 is always in bounds
        let payload = match recv_started_frame(&mut conn.stream, first[0], &opts) {
            FrameRecv::Ok(p) => p,
            FrameRecv::Corrupt => {
                stats.protocol_errors.inc();
                stats.corrupt_frames.inc();
                return Turn::Close;
            }
            FrameRecv::TimedOut => {
                stats.protocol_errors.inc();
                stats.timed_out_conns.inc();
                return Turn::Close;
            }
            FrameRecv::Cut => {
                stats.protocol_errors.inc();
                return Turn::Close;
            }
        };
        conn.idle_since = Instant::now();

        if !conn.greeted {
            // The first frame must be a version handshake.
            match Request::decode(&payload) {
                Ok(Request::Hello { version, .. }) if version >= 1 => {
                    let negotiated = version.min(PROTOCOL_VERSION);
                    if send(
                        &mut conn.stream,
                        &Response::HelloOk {
                            version: negotiated,
                        },
                    )
                    .is_err()
                    {
                        return Turn::Close;
                    }
                    conn.greeted = true;
                    conn.version = negotiated;
                }
                Ok(Request::Hello { version, .. }) => {
                    stats.protocol_errors.inc();
                    let _ = send(
                        &mut conn.stream,
                        &Response::Err(StoreError::InvalidConfig(format!(
                            "unsupported protocol version {version} \
                             (server speaks {PROTOCOL_VERSION})"
                        ))),
                    );
                    return Turn::Close;
                }
                _ => {
                    // Not a hello (or undecodable): whatever is on the
                    // other end is not an orchestra peer.
                    stats.protocol_errors.inc();
                    let _ = send(
                        &mut conn.stream,
                        &Response::Err(StoreError::InvalidConfig(
                            "expected HELLO as the first frame".into(),
                        )),
                    );
                    return Turn::Close;
                }
            }
        } else {
            let response = match Request::decode(&payload) {
                Ok(req) if required_version(&req) > conn.version => {
                    // A v2 opcode on a connection that negotiated v1: the
                    // request decoded fine, the *negotiation* forbids it.
                    Response::Err(StoreError::InvalidConfig(format!(
                        "request `{}` needs protocol version {} but this \
                         connection negotiated {}",
                        req.label(),
                        required_version(&req),
                        conn.version
                    )))
                }
                Ok(req) => {
                    // A request carrying a trace id stitches this server's
                    // work — spans recorded down in the store while it
                    // executes — into the caller's cross-peer trace.
                    let _trace = orchestra_obs::trace_adopt(req.trace());
                    execute(store, req, conn.version, stats, subscriptions)
                }
                Err(e) => Response::Err(StoreError::Corrupt {
                    path: "<wire>".into(),
                    offset: e.offset as u64,
                    reason: e.reason,
                }),
            };
            stats.requests.inc();
            if matches!(response, Response::Err(_)) {
                stats.errors.inc();
            }
            if send(&mut conn.stream, &response).is_err() {
                return Turn::Close;
            }
        }
        // Finish the in-flight request before honoring shutdown — that
        // is what makes the shutdown graceful.
        if shutdown.load(Ordering::SeqCst) {
            return Turn::Close;
        }
    }
    Turn::Keep // Busy connection: requeue for fairness.
}

/// How reading a started frame ended — the distinction feeds the
/// breaker-visible counters on `PROBE_OK` (all non-`Ok` outcomes also
/// count as protocol errors and close the connection).
enum FrameRecv {
    /// Checksum-verified payload.
    Ok(Vec<u8>),
    /// The bytes arrived but were wrong: checksum mismatch or an
    /// implausible length prefix — bit rot, not a stall.
    Corrupt,
    /// The frame stalled mid-transfer past `read_timeout`.
    TimedOut,
    /// The connection was cut (EOF or hard I/O error) mid-frame.
    Cut,
}

/// Finish reading a frame whose first byte already arrived: the rest of
/// the header and the payload must complete within `read_timeout`.
fn recv_started_frame(stream: &mut TcpStream, first_byte: u8, opts: &ServerOptions) -> FrameRecv {
    let mut header = [0u8; FRAME_HEADER];
    header[0] = first_byte; // analyze: allow(panic) -- header is [u8; FRAME_HEADER], FRAME_HEADER >= 8
    match read_exact_polled(
        stream,
        // analyze: allow(panic) -- range 1.. of a FRAME_HEADER-sized array is always in bounds
        &mut header[1..],
        &AtomicBool::new(false),
        opts.read_timeout,
        false,
    ) {
        PolledRead::Done => {}
        PolledRead::TimedOut => return FrameRecv::TimedOut,
        _ => return FrameRecv::Cut, // Cut mid-header.
    }
    // analyze: allow(panic) -- constant 4-byte slices of the 8-byte header; try_into is infallible here
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    // analyze: allow(panic) -- constant 4-byte slices of the 8-byte header; try_into is infallible here
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return FrameRecv::Corrupt;
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_polled(
        stream,
        &mut payload,
        &AtomicBool::new(false),
        opts.read_timeout,
        false,
    ) {
        PolledRead::Done => {}
        PolledRead::TimedOut => return FrameRecv::TimedOut,
        _ => return FrameRecv::Cut, // Cut mid-payload.
    }
    if crc32(&payload) != crc {
        return FrameRecv::Corrupt;
    }
    FrameRecv::Ok(payload)
}

/// Run one request against the backing store.
fn execute(
    store: &dyn UpdateStore,
    req: Request,
    version: u64,
    stats: &AtomicServerStats,
    subscriptions: &Mutex<BTreeMap<String, Vec<String>>>,
) -> Response {
    match req {
        // A second hello on an established connection is harmless; the
        // version negotiated at the first one stays in force.
        Request::Hello { .. } => Response::HelloOk { version },
        Request::Publish { epoch, txns } => match store.publish(epoch, txns) {
            Ok(()) => Response::PublishOk,
            Err(e) => Response::Err(e),
        },
        Request::FetchPage { cursor, limit } => {
            match store.fetch_page(&cursor, limit.min(usize::MAX as u64) as usize) {
                Ok(page) => Response::Page(page),
                Err(e) => Response::Err(e),
            }
        }
        Request::Fetch { id } => match store.fetch(&id) {
            Ok(txn) => Response::Txn(txn),
            Err(e) => Response::Err(e),
        },
        Request::Probe => Response::ProbeOk {
            len: store.len() as u64,
            latest_epoch: store.latest_epoch(),
            stats: store.stats(),
            // v1 clients reject trailing bytes, so the counters are
            // appended only on connections that negotiated v2.
            server: (version >= 2).then(|| ServerCounters {
                digests_served: stats.digests_served.get(),
                pull_pages: stats.pull_pages.get(),
                subscriptions: stats.subscriptions.get(),
                corrupt_frames: stats.corrupt_frames.get(),
                timed_out_conns: stats.timed_out_conns.get(),
            }),
        },
        Request::Digest => {
            stats.digests_served.inc();
            match store.digest() {
                Ok(d) => Response::DigestOk(d),
                Err(e) => Response::Err(e),
            }
        }
        Request::Subscribe { peer, interest } => {
            stats.subscriptions.inc();
            subscriptions.lock().insert(peer, interest);
            Response::SubscribeOk
        }
        Request::PullPages {
            cursor,
            limit,
            interest,
            have,
            ..
        } => {
            stats.pull_pages.inc();
            // Recorded under the caller's adopted trace id (if the
            // request carried one), so the serving side of a gossip
            // pull shows up in the puller's cross-peer timeline.
            let _span = orchestra_obs::span!("server.pull_pages", limit = limit);
            match store.fetch_page(&cursor, limit.min(usize::MAX as u64) as usize) {
                Ok(page) => Response::Pages(filter_pull_page(page, &interest, &have)),
                Err(e) => Response::Err(e),
            }
        }
        // The whole process shares one registry, so this answers for
        // every subsystem on the node — store, mesh, engine, fault —
        // not just this server.
        Request::Metrics => Response::MetricsOk(orchestra_obs::snapshot()),
    }
}

/// Apply a puller's interest set and per-source have floors to a scanned
/// page: matching transactions beyond the floor ship whole; everything
/// else scanned comes back as a skipped id so the puller's per-source
/// prefix bookkeeping stays exact without paying for payloads.
fn filter_pull_page(
    page: orchestra_store::FetchPage,
    interest: &[String],
    have: &[(String, u64)],
) -> PullPage {
    let floor = |peer: &str| -> u64 {
        have.iter()
            .find(|(p, _)| p == peer)
            .map(|(_, hw)| *hw)
            .unwrap_or(0)
    };
    let mut out = PullPage {
        next_cursor: page.next_cursor,
        unavailable: page.unavailable,
        ..PullPage::default()
    };
    for t in page.txns {
        let held = t.id.seq <= floor(t.id.peer.name());
        let wanted = interest.is_empty()
            || t.updates.iter().any(|u| {
                interest
                    .iter()
                    .any(|r| qualified_matches(r, t.id.peer.name(), u.relation()))
            });
        if held || !wanted {
            out.skipped.push(t.id);
        } else {
            out.txns.push(t);
        }
    }
    out
}

/// Does the owner-qualified interest entry `pattern`
/// (`<publisher>.<relation>`) name this update?
fn qualified_matches(pattern: &str, publisher: &str, relation: &str) -> bool {
    pattern
        .strip_prefix(publisher)
        .and_then(|rest| rest.strip_prefix('.'))
        .is_some_and(|rel| rel == relation)
}

fn send(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut framed = frame(&response.encode());
    match orchestra_fault::check("net.server.send") {
        Some(orchestra_fault::Action::Flip) => {
            // Corrupt one payload byte after the checksum was computed:
            // the client's frame reader must reject it.
            let payload_len = framed.len() - FRAME_HEADER;
            let idx =
                FRAME_HEADER + orchestra_fault::draw("net.server.send") as usize % payload_len;
            // analyze: allow(panic) -- idx = FRAME_HEADER + (draw % payload_len) < framed.len() by construction
            framed[idx] ^= 0x01;
        }
        Some(orchestra_fault::Action::Cut) => {
            // Ship half the frame, then fail: the client sees a torn
            // response and the connection closes.
            let cut = framed.len() / 2;
            // analyze: allow(panic) -- cut = framed.len() / 2 is always in bounds
            let _ = stream.write_all(&framed[..cut]);
            let _ = stream.flush();
            return Err(std::io::Error::other("injected failpoint: send cut"));
        }
        Some(_) => return Err(std::io::Error::other("injected failpoint: send failed")),
        None => {}
    }
    stream.write_all(&framed)?;
    stream.flush()
}

enum PolledRead {
    /// Buffer filled.
    Done,
    /// Stream ended before the buffer filled.
    Eof,
    /// Shutdown observed before any byte arrived.
    Shutdown,
    /// Deadline passed before the buffer filled.
    TimedOut,
    /// Hard I/O error.
    Failed,
}

fn read_exact_polled(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    deadline: Duration,
    honor_shutdown_while_empty: bool,
) -> PolledRead {
    let start = Instant::now();
    let mut filled = 0usize;
    while filled < buf.len() {
        // analyze: allow(panic) -- the loop guard keeps filled <= buf.len()
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return PolledRead::Eof,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if honor_shutdown_while_empty && filled == 0 && shutdown.load(Ordering::SeqCst) {
                    return PolledRead::Shutdown;
                }
                if start.elapsed() >= deadline {
                    return PolledRead::TimedOut;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return PolledRead::Failed,
        }
    }
    PolledRead::Done
}
