//! [`RemoteStore`]: the [`UpdateStore`] trait spoken over TCP.
//!
//! A drop-in backend: `Cdss::build_with_store(Box::new(RemoteStore::…))`
//! gives a peer process the same archive a [`PeerServer`] exposes on
//! another machine. Connections are pooled and re-dialed lazily; every
//! transport-level failure — connect refused, timeout, connection cut,
//! checksum mismatch — maps to [`StoreError::Unavailable`], the error
//! the reconcile loop already absorbs with frozen resume cursors, so a
//! dead or flaky peer degrades an exchange instead of failing it.
//! Application-level errors (duplicate ids, stale epochs…) travel the
//! wire intact and surface exactly as a local backend would raise them.
//!
//! [`PeerServer`]: crate::PeerServer

use crate::proto::{PullPage, Request, Response, ServerCounters, PROTOCOL_VERSION};
use orchestra_store::frame::{frame, FrameRead, FrameReader, FRAME_HEADER};
use orchestra_store::{FetchCursor, FetchPage, StoreDigest, StoreError, StoreStats, UpdateStore};
use orchestra_updates::{Epoch, Transaction, TxnId};
use parking_lot::Mutex;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Tunables for a [`RemoteStore`].
#[derive(Debug, Clone, Copy)]
pub struct RemoteOptions {
    /// Dial timeout per connection attempt.
    pub connect_timeout: Duration,
    /// How long to wait for a response frame.
    pub read_timeout: Duration,
    /// How long a request write may block.
    pub write_timeout: Duration,
    /// Idle connections kept for reuse.
    pub pool_capacity: usize,
    /// Extra attempts on a fresh connection after a transport failure
    /// (absorbs a flaky link or a server restart between requests).
    pub retries: usize,
    /// First retry backoff; each further retry doubles it, capped at
    /// [`backoff_max`](RemoteOptions::backoff_max), with deterministic
    /// jitter derived from the dialed address (two clients hammering the
    /// same dead peer desynchronize replayably). Zero disables backoff —
    /// the default, so existing callers keep their immediate-retry
    /// latency.
    pub backoff_base: Duration,
    /// Upper bound on one backoff wait.
    pub backoff_max: Duration,
    /// Consecutive exhausted operations (all retries failed at the
    /// transport level) that trip the per-endpoint circuit breaker open.
    /// While open, calls fast-fail as `Unavailable` without touching the
    /// socket; after [`breaker_cooldown`](RemoteOptions::breaker_cooldown)
    /// one half-open probe call is admitted — success closes the breaker,
    /// failure re-arms the cooldown. Zero disables the breaker (the
    /// default).
    pub breaker_threshold: u32,
    /// How long an open breaker rejects calls before admitting a
    /// half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            pool_capacity: 4,
            retries: 1,
            backoff_base: Duration::ZERO,
            backoff_max: Duration::from_millis(500),
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

/// Client-side transport counters (the server's archive counters come
/// back through [`UpdateStore::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Request/response round trips completed.
    pub round_trips: u64,
    /// Fresh connections dialed (first use + every reconnect).
    pub connects: u64,
    /// Transport-level failures observed (before retries).
    pub transport_errors: u64,
    /// Operations that exhausted retries and were mapped to
    /// [`StoreError::Unavailable`].
    pub unavailable_mapped: u64,
    /// Frame payload bytes sent.
    pub bytes_sent: u64,
    /// Frame payload bytes received.
    pub bytes_received: u64,
    /// Retry attempts that slept an exponential-backoff wait first.
    pub backoff_waits: u64,
    /// Times the circuit breaker tripped from closed to open.
    pub breaker_opened: u64,
    /// Calls rejected without touching the socket because the breaker
    /// was open and cooling down.
    pub breaker_fast_fails: u64,
}

/// Per-instance transport counters, each a handle onto the process-wide
/// `orchestra-obs` registry entry of the same `net.*` name. The handle's
/// own cell keeps [`NetStats`] per-store (the getter API is unchanged),
/// while the registry aggregates across every instance's lifetime — so
/// breaker open/close transitions survive a store being dropped and
/// re-created, which a plain per-instance atomic silently forgot.
#[derive(Debug)]
struct AtomicNetStats {
    round_trips: orchestra_obs::CounterHandle,
    connects: orchestra_obs::CounterHandle,
    transport_errors: orchestra_obs::CounterHandle,
    unavailable_mapped: orchestra_obs::CounterHandle,
    bytes_sent: orchestra_obs::CounterHandle,
    bytes_received: orchestra_obs::CounterHandle,
    backoff_waits: orchestra_obs::CounterHandle,
    breaker_opened: orchestra_obs::CounterHandle,
    breaker_fast_fails: orchestra_obs::CounterHandle,
}

impl Default for AtomicNetStats {
    fn default() -> Self {
        AtomicNetStats {
            round_trips: orchestra_obs::counter("net.round_trips"),
            connects: orchestra_obs::counter("net.connects"),
            transport_errors: orchestra_obs::counter("net.transport_errors"),
            unavailable_mapped: orchestra_obs::counter("net.unavailable_mapped"),
            bytes_sent: orchestra_obs::counter("net.bytes_sent"),
            bytes_received: orchestra_obs::counter("net.bytes_received"),
            backoff_waits: orchestra_obs::counter("net.backoff_waits"),
            breaker_opened: orchestra_obs::counter("net.breaker.opened"),
            breaker_fast_fails: orchestra_obs::counter("net.breaker.fast_fails"),
        }
    }
}

impl AtomicNetStats {
    fn snapshot(&self) -> NetStats {
        NetStats {
            round_trips: self.round_trips.get(),
            connects: self.connects.get(),
            transport_errors: self.transport_errors.get(),
            unavailable_mapped: self.unavailable_mapped.get(),
            bytes_sent: self.bytes_sent.get(),
            bytes_received: self.bytes_received.get(),
            backoff_waits: self.backoff_waits.get(),
            breaker_opened: self.breaker_opened.get(),
            breaker_fast_fails: self.breaker_fast_fails.get(),
        }
    }
}

/// Observable circuit-breaker state (see [`RemoteStore::breaker_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls fast-fail; a half-open probe is admitted after the cooldown.
    Open,
}

#[derive(Debug, Default)]
struct BreakerInner {
    /// Consecutive exhausted operations since the last transport success.
    consecutive: u32,
    /// When the breaker tripped (or the last half-open probe was
    /// admitted); `None` while closed.
    opened_at: Option<std::time::Instant>,
}

/// An [`UpdateStore`] whose archive lives behind a [`PeerServer`] on the
/// other end of TCP connections.
///
/// [`PeerServer`]: crate::PeerServer
pub struct RemoteStore {
    addrs: Vec<std::net::SocketAddr>,
    addr_label: String,
    opts: RemoteOptions,
    pool: Mutex<Vec<TcpStream>>,
    net: AtomicNetStats,
    breaker: Mutex<BreakerInner>,
    /// `net.breaker.open` gauge: +1 on the closed→open transition only,
    /// −1 on open→closed only — a half-open probe re-arming the cooldown
    /// is *still open* and must not double-count. The handle lives on the
    /// store, so a dropped store's contribution vanishes with it (its
    /// breaker no longer exists, open or not).
    breaker_open: orchestra_obs::GaugeHandle,
    /// The protocol version the server answered at the last completed
    /// handshake (0 until a dial succeeds). Talking to a v1 server, the
    /// v2-only calls fail fast client-side instead of burning a round
    /// trip on a guaranteed `ERR`.
    negotiated: AtomicU64,
}

impl RemoteStore {
    /// Attach to a server, completing one eager version handshake (fails
    /// fast on a wrong address or incompatible peer). Servers answering
    /// any version from 1 through [`PROTOCOL_VERSION`] are accepted; the
    /// negotiated version gates the v2-only calls.
    pub fn connect(addr: impl std::net::ToSocketAddrs + std::fmt::Display) -> crate::Result<Self> {
        RemoteStore::connect_with(addr, RemoteOptions::default())
    }

    /// [`connect`](RemoteStore::connect) with explicit options.
    pub fn connect_with(
        addr: impl std::net::ToSocketAddrs + std::fmt::Display,
        opts: RemoteOptions,
    ) -> crate::Result<Self> {
        let store = RemoteStore::lazy_with(addr, opts)?;
        let conn = store.checkout()?;
        store.checkin(conn);
        Ok(store)
    }

    /// Attach without dialing: the first operation connects. Use when the
    /// server may not be up yet — the reconcile loop treats an
    /// unreachable archive as a degraded exchange, not an error.
    pub fn lazy(addr: impl std::net::ToSocketAddrs + std::fmt::Display) -> crate::Result<Self> {
        RemoteStore::lazy_with(addr, RemoteOptions::default())
    }

    /// [`lazy`](RemoteStore::lazy) with explicit options.
    pub fn lazy_with(
        addr: impl std::net::ToSocketAddrs + std::fmt::Display,
        opts: RemoteOptions,
    ) -> crate::Result<Self> {
        let addr_label = addr.to_string();
        let addrs: Vec<_> = addr
            .to_socket_addrs()
            .map_err(|e| StoreError::InvalidConfig(format!("bad address `{addr_label}`: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(StoreError::InvalidConfig(format!(
                "address `{addr_label}` resolves to nothing"
            )));
        }
        Ok(RemoteStore {
            addrs,
            addr_label,
            opts,
            pool: Mutex::new(Vec::new()),
            net: AtomicNetStats::default(),
            breaker: Mutex::new(BreakerInner::default()),
            breaker_open: orchestra_obs::gauge("net.breaker.open"),
            negotiated: AtomicU64::new(0),
        })
    }

    /// The address this store dials.
    pub fn addr(&self) -> &str {
        &self.addr_label
    }

    /// Client-side transport counters.
    pub fn net_stats(&self) -> NetStats {
        self.net.snapshot()
    }

    /// Dial a fresh connection and complete the version handshake,
    /// trying every resolved address before giving up. Application-level
    /// verdicts (a server error, a version mismatch) are authoritative
    /// and end the search; transport failures move on to the next
    /// address.
    fn dial(&self) -> Result<TcpStream, StoreError> {
        let _span = orchestra_obs::span!("net.dial", addr = &self.addr_label);
        // Propagate the active trace with the handshake — but only when a
        // prior handshake proved the server speaks v2; a v1 decoder
        // rejects the trailing bytes, and a first-ever dial cannot know.
        let trace = if self.negotiated_version() >= 2 {
            orchestra_obs::trace_current()
        } else {
            0
        };
        let mut last: Option<StoreError> = None;
        for addr in &self.addrs {
            let stream = match TcpStream::connect_timeout(addr, self.opts.connect_timeout) {
                Ok(s) => s,
                Err(e) => {
                    last = Some(self.transport_failure(format_args!("connect {addr} failed: {e}")));
                    continue;
                }
            };
            self.net.connects.inc();
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(self.opts.read_timeout));
            let _ = stream.set_write_timeout(Some(self.opts.write_timeout));
            let mut stream = stream;
            match self.roundtrip(
                &mut stream,
                &Request::Hello {
                    version: PROTOCOL_VERSION,
                    trace,
                },
            ) {
                Ok(Response::HelloOk { version }) if (1..=PROTOCOL_VERSION).contains(&version) => {
                    self.negotiated.store(version, Ordering::Relaxed);
                    return Ok(stream);
                }
                Ok(Response::HelloOk { version }) => {
                    return Err(StoreError::InvalidConfig(format!(
                        "server `{}` negotiated unsupported protocol version {version}",
                        self.addr_label
                    )))
                }
                Ok(Response::Err(e)) => return Err(e),
                Ok(other) => {
                    last = Some(
                        self.transport_failure(format_args!("unexpected hello response {other:?}")),
                    );
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| self.transport_failure(format_args!("no reachable address"))))
    }

    fn checkout(&self) -> Result<TcpStream, StoreError> {
        if let Some(conn) = self.pool.lock().pop() {
            return Ok(conn);
        }
        self.dial()
    }

    fn checkin(&self, conn: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < self.opts.pool_capacity {
            pool.push(conn);
        }
    }

    /// Record a transport-level failure and build the `Unavailable` it
    /// maps to. The reconcile loop treats this exactly like a payload
    /// with no alive replica: freeze the cursor, retry later.
    fn transport_failure(&self, what: std::fmt::Arguments<'_>) -> StoreError {
        self.net.transport_errors.inc();
        StoreError::Unavailable {
            txn: format!("<remote {}: {what}>", self.addr_label),
        }
    }

    /// One framed request/response exchange on an established connection.
    /// Any failure is a transport failure (the caller drops the stream).
    fn roundtrip(&self, stream: &mut TcpStream, request: &Request) -> Result<Response, StoreError> {
        let mut framed = frame(&request.encode());
        match orchestra_fault::check("net.client.send") {
            Some(orchestra_fault::Action::Flip) => {
                // Corrupt one payload byte after the checksum was
                // computed: the server must drop the frame (and count it
                // as a corrupt frame, not a stall).
                let payload_len = framed.len() - FRAME_HEADER;
                let idx =
                    FRAME_HEADER + orchestra_fault::draw("net.client.send") as usize % payload_len;
                // analyze: allow(panic) -- idx = FRAME_HEADER + (draw % payload_len) < framed.len() by construction
                framed[idx] ^= 0x01;
            }
            Some(orchestra_fault::Action::Cut) => {
                // Ship half the frame, then fail: the server sees a
                // connection cut mid-frame.
                let cut = framed.len() / 2;
                // analyze: allow(panic) -- cut = framed.len() / 2 is always in bounds
                let _ = stream.write_all(&framed[..cut]);
                let _ = stream.flush();
                return Err(self.transport_failure(format_args!("injected failpoint: send cut")));
            }
            Some(_) => return Err(self.transport_failure(format_args!("injected failpoint: send"))),
            None => {}
        }
        stream
            .write_all(&framed)
            .and_then(|()| stream.flush())
            .map_err(|e| self.transport_failure(format_args!("send failed: {e}")))?;
        self.net.bytes_sent.add(framed.len() as u64);
        if orchestra_fault::check("net.client.recv").is_some() {
            // Abandon the response in flight: to this client the exchange
            // failed, to the server it completed — the asymmetry retries
            // and the publish witness-check must absorb.
            return Err(self.transport_failure(format_args!("injected failpoint: recv")));
        }
        let payload = match FrameReader::new(&mut *stream, 0).next_frame() {
            Ok((_, FrameRead::Ok { payload, size })) => {
                self.net.bytes_received.add(size as u64);
                payload
            }
            Ok((_, FrameRead::Eof)) => {
                return Err(self.transport_failure(format_args!("connection closed by server")))
            }
            Ok((_, FrameRead::Torn)) => {
                return Err(self.transport_failure(format_args!("connection cut mid-response")))
            }
            Ok((_, FrameRead::Corrupt { reason, .. })) => {
                return Err(self.transport_failure(format_args!("corrupt response frame: {reason}")))
            }
            Err(e) => return Err(self.transport_failure(format_args!("receive failed: {e}"))),
        };
        let response = Response::decode(&payload)
            .map_err(|e| self.transport_failure(format_args!("undecodable response: {e}")))?;
        self.net.round_trips.inc();
        Ok(response)
    }

    /// Gate a call on the circuit breaker: fast-fail while it is open and
    /// cooling down, admit one half-open probe once the cooldown passed.
    fn breaker_admit(&self) -> Result<(), StoreError> {
        if self.opts.breaker_threshold == 0 {
            return Ok(());
        }
        let mut b = self.breaker.lock();
        if let Some(opened) = b.opened_at {
            if opened.elapsed() < self.opts.breaker_cooldown {
                self.net.breaker_fast_fails.inc();
                return Err(StoreError::Unavailable {
                    txn: format!("<remote {}: circuit breaker open>", self.addr_label),
                });
            }
            // Half-open: this call is the probe. Re-arm the clock so
            // concurrent calls keep fast-failing while it is in flight;
            // its success clears `opened_at`, its failure leaves the
            // re-armed cooldown in force.
            b.opened_at = Some(std::time::Instant::now());
        }
        Ok(())
    }

    /// A transport-level success: the endpoint is healthy, close the
    /// breaker.
    fn breaker_success(&self) {
        if self.opts.breaker_threshold == 0 {
            return;
        }
        let mut b = self.breaker.lock();
        b.consecutive = 0;
        if b.opened_at.take().is_some() {
            self.breaker_open.sub(1);
        }
    }

    /// An operation exhausted its retries at the transport level.
    fn breaker_failure(&self) {
        if self.opts.breaker_threshold == 0 {
            return;
        }
        let mut b = self.breaker.lock();
        b.consecutive += 1;
        if b.consecutive >= self.opts.breaker_threshold && b.opened_at.is_none() {
            b.opened_at = Some(std::time::Instant::now());
            self.net.breaker_opened.inc();
            self.breaker_open.add(1);
        }
    }

    /// The breaker's current position (always [`BreakerState::Closed`]
    /// when `breaker_threshold` is 0).
    pub fn breaker_state(&self) -> BreakerState {
        if self.breaker.lock().opened_at.is_some() {
            BreakerState::Open
        } else {
            BreakerState::Closed
        }
    }

    /// Sleep before retry `attempt` (1-based): exponential in the attempt
    /// number, capped at `backoff_max`, with deterministic jitter keyed
    /// off the dialed address and the process-lifetime wait count — two
    /// clients hammering the same dead peer desynchronize replayably.
    fn backoff_wait(&self, attempt: usize) {
        if self.opts.backoff_base.is_zero() {
            return;
        }
        // The pre-increment count seeds the jitter; reading then bumping
        // is racy across threads, but jitter only has to desynchronize.
        let n = self.net.backoff_waits.get();
        self.net.backoff_waits.inc();
        let exp = self
            .opts
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16) as u32);
        let capped = exp.min(self.opts.backoff_max);
        let half = capped.as_nanos() as u64 / 2;
        let jitter = splitmix64(fnv1a(self.addr_label.as_bytes()) ^ n) % (half + 1);
        std::thread::sleep(Duration::from_nanos(half + jitter));
    }

    /// Issue one request, transparently retrying transport failures on a
    /// fresh connection. Application-level errors (carried in
    /// [`Response::Err`]) are returned as-is by the callers and keep the
    /// connection pooled — the server keeps it open too.
    fn call(&self, request: &Request) -> Result<Response, StoreError> {
        self.breaker_admit()?;
        // A pooled connection may have been closed by the server's idle
        // reaper or a restart between requests; its failure is not
        // authoritative, so it costs none of the configured retries.
        // (Popped as a statement: the pool guard must drop before
        // `checkin` re-locks it.)
        let pooled = self.pool.lock().pop();
        if let Some(mut conn) = pooled {
            if let Ok(resp) = self.roundtrip(&mut conn, request) {
                self.checkin(conn);
                self.breaker_success();
                return Ok(resp);
            }
            // Stale pooled stream (dropped): fall through to fresh dials.
        }
        let mut last: Option<StoreError> = None;
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                self.backoff_wait(attempt);
            }
            match self.dial() {
                Ok(mut conn) => match self.roundtrip(&mut conn, request) {
                    Ok(resp) => {
                        self.checkin(conn);
                        self.breaker_success();
                        return Ok(resp);
                    }
                    Err(e) => last = Some(e),
                },
                // A version mismatch is not transient: surface it.
                Err(e @ StoreError::InvalidConfig(_)) => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        self.breaker_failure();
        self.net.unavailable_mapped.inc();
        Err(last.unwrap_or_else(|| self.transport_failure(format_args!("no attempt made"))))
    }

    /// Archive metadata in one round trip: `(len, latest_epoch, stats,
    /// server)` — what [`UpdateStore::len`], [`UpdateStore::latest_epoch`],
    /// and [`UpdateStore::stats`] each report, without paying three RPCs.
    /// The last element carries the server's per-message-type counters on
    /// v2 connections and is `None` against a v1 server.
    pub fn probe(&self) -> crate::Result<(u64, Option<Epoch>, StoreStats, Option<ServerCounters>)> {
        let request = Request::Probe;
        match self.call(&request)? {
            Response::ProbeOk {
                len,
                latest_epoch,
                stats,
                server,
            } => Ok((len, latest_epoch, stats, server)),
            Response::Err(e) => Err(e),
            other => Err(self.unexpected(&request, other)),
        }
    }

    /// The version the server answered at the last completed handshake
    /// (0 until any operation has dialed successfully).
    pub fn negotiated_version(&self) -> u64 {
        self.negotiated.load(Ordering::Relaxed)
    }

    /// Fail fast client-side when a v2-only call targets a v1 server —
    /// the server would answer the same `InvalidConfig`, one round trip
    /// later. A cold store (version 0, nothing dialed yet) passes: the
    /// call's own dial performs the handshake first.
    fn need_v2(&self, what: &str) -> crate::Result<()> {
        match self.negotiated_version() {
            0 | 2.. => Ok(()),
            v => Err(StoreError::InvalidConfig(format!(
                "request `{what}` needs protocol version 2 but server `{}` \
                 negotiated {v}",
                self.addr_label
            ))),
        }
    }

    /// The server archive's anti-entropy digest — epoch high-water,
    /// per-source sequence high-waters, per-relation transaction counts —
    /// in one round trip. Protocol v2.
    pub fn digest(&self) -> crate::Result<StoreDigest> {
        self.need_v2("digest")?;
        let request = Request::Digest;
        match self.call(&request)? {
            Response::DigestOk(digest) => Ok(digest),
            Response::Err(e) => Err(e),
            other => Err(self.unexpected(&request, other)),
        }
    }

    /// Register `peer`'s interest set (owner-qualified `Peer.Relation`
    /// names) with the server, so its operator can see who replicates
    /// what. Re-subscribing replaces the previous set. Protocol v2.
    pub fn subscribe(&self, peer: &str, interest: Vec<String>) -> crate::Result<()> {
        self.need_v2("subscribe")?;
        let request = Request::Subscribe {
            peer: peer.to_string(),
            interest,
        };
        match self.call(&request)? {
            Response::SubscribeOk => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(self.unexpected(&request, other)),
        }
    }

    /// One anti-entropy page: the server scans `limit` positions from
    /// `cursor` and ships only transactions matching `interest` (empty =
    /// everything) whose sequence exceeds the puller's `have` floor for
    /// that source; every other scanned position comes back as a skipped
    /// id so per-source prefix bookkeeping stays exact. Protocol v2.
    pub fn pull_pages(
        &self,
        cursor: &FetchCursor,
        limit: u64,
        interest: &[String],
        have: &[(String, u64)],
    ) -> crate::Result<PullPage> {
        self.need_v2("pull_pages")?;
        let request = Request::PullPages {
            cursor: cursor.clone(),
            limit,
            interest: interest.to_vec(),
            have: have.to_vec(),
            // v2-only request, so the active trace may always ride along.
            trace: orchestra_obs::trace_current(),
        };
        match self.call(&request)? {
            Response::Pages(page) => Ok(page),
            Response::Err(e) => Err(e),
            other => Err(self.unexpected(&request, other)),
        }
    }

    /// The server process's full observability snapshot — counters,
    /// gauges, latency histograms, recent spans — in one round trip.
    /// This is what `orchestra-top` polls per node. Protocol v2.
    pub fn metrics(&self) -> crate::Result<orchestra_obs::ObsSnapshot> {
        self.need_v2("metrics")?;
        let request = Request::Metrics;
        match self.call(&request)? {
            Response::MetricsOk(snap) => Ok(snap),
            Response::Err(e) => Err(e),
            other => Err(self.unexpected(&request, other)),
        }
    }

    fn unexpected(&self, request: &Request, response: Response) -> StoreError {
        self.transport_failure(format_args!(
            "unexpected response to {}: {response:?}",
            request.label()
        ))
    }
}

impl UpdateStore for RemoteStore {
    fn publish(&self, epoch: Epoch, txns: Vec<Transaction>) -> orchestra_store::Result<()> {
        // Kept to disambiguate a retried publish whose first attempt's
        // response was lost (below).
        let witness = txns.first().cloned();
        let request = Request::Publish { epoch, txns };
        let result = match self.call(&request)? {
            Response::PublishOk => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(self.unexpected(&request, other)),
        };
        // Publish is retried on a fresh connection like every request,
        // but it is not idempotent: if the server committed the batch
        // and the *response* was lost, the retry answers `DuplicateTxn`
        // for a publish that actually succeeded. Disambiguate by
        // reading the batch's first transaction back — transaction ids
        // are globally unique (peer-owned sequences) and publishes are
        // atomic, so finding our exact first transaction archived means
        // the whole batch landed. A genuine conflict (different bytes
        // under the same id, or a later id reported) still errors.
        if let Err(StoreError::DuplicateTxn(dup)) = &result {
            if let Some(mut expect) = witness {
                if expect.id.to_string() == *dup {
                    expect.epoch = epoch; // The store stamps the publish epoch.
                    if let Ok(Some(archived)) = self.fetch(&expect.id) {
                        if archived == expect {
                            return Ok(());
                        }
                    }
                }
            }
        }
        result
    }

    fn fetch_page(&self, cursor: &FetchCursor, limit: usize) -> orchestra_store::Result<FetchPage> {
        let request = Request::FetchPage {
            cursor: cursor.clone(),
            limit: limit as u64,
        };
        match self.call(&request)? {
            Response::Page(page) => Ok(page),
            Response::Err(e) => Err(e),
            other => Err(self.unexpected(&request, other)),
        }
    }

    fn fetch(&self, id: &TxnId) -> orchestra_store::Result<Option<Transaction>> {
        let request = Request::Fetch { id: id.clone() };
        match self.call(&request)? {
            Response::Txn(txn) => Ok(txn),
            Response::Err(e) => Err(e),
            other => Err(self.unexpected(&request, other)),
        }
    }

    fn len(&self) -> usize {
        // Unreachable archive: nothing observable.
        self.probe().map_or(0, |(len, ..)| len as usize)
    }

    fn latest_epoch(&self) -> Option<Epoch> {
        self.probe().ok().and_then(|(_, latest, ..)| latest)
    }

    fn stats(&self) -> StoreStats {
        self.probe()
            .map_or_else(|_| StoreStats::default(), |(_, _, stats, _)| stats)
    }

    fn digest(&self) -> orchestra_store::Result<StoreDigest> {
        RemoteStore::digest(self)
    }
}

/// FNV-1a over `bytes` — seeds the backoff jitter from the address.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64: one cheap, well-mixed step from seed to draw.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore")
            .field("addr", &self.addr_label)
            .field("pooled", &self.pool.lock().len())
            .finish()
    }
}
