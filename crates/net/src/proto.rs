//! The `orchestra-net` wire protocol: versioned, length-prefixed,
//! CRC32-checksummed messages carrying the [`UpdateStore`] surface.
//!
//! Every message travels inside one frame from [`orchestra_store::frame`]
//! (`len:u32le crc:u32le payload[len]`) — the same framing the durable
//! WAL uses on disk — and transactions, cursors, and batches are encoded
//! by [`orchestra_store::durable::codec`], so a transaction's bytes are
//! identical on the wire and in the archive. See `docs/wire-protocol.md`
//! for the full layout.
//!
//! ```text
//! request  := HELLO      magic:u32le version:uvarint
//!           | PUBLISH    batch                  (the WAL batch record)
//!           | FETCH_PAGE cursor limit:uvarint
//!           | FETCH      txn_id
//!           | PROBE
//! response := HELLO_OK   version:uvarint
//!           | PUBLISH_OK
//!           | PAGE       n:uvarint txn* u:uvarint (epoch:uvarint txn_id)*
//!                        has_next:u8 [cursor]
//!           | TXN        present:u8 [txn]
//!           | PROBE_OK   len:uvarint has_latest:u8 [epoch:uvarint]
//!                        stats:7×uvarint
//!           | ERR        code:u8 fields…        (see `StoreError` table)
//! ```
//!
//! [`UpdateStore`]: orchestra_store::UpdateStore

use orchestra_store::durable::codec::{
    decode_batch, encode_batch, get_cursor, get_transaction, get_txn_id, put_cursor, put_str,
    put_transaction, put_txn_id, put_uvarint, CodecError, Cursor,
};
use orchestra_store::{FetchCursor, FetchPage, StoreError, StoreStats};
use orchestra_updates::{Epoch, Transaction, TxnId};

/// Protocol version spoken by this build. Version 1 is the only version;
/// the HELLO exchange exists so future versions can negotiate down.
pub const PROTOCOL_VERSION: u64 = 1;

/// Magic prefix of a HELLO payload: `"ORCN"` little-endian. A server
/// reading anything else as its first frame is talking to something that
/// is not an orchestra peer and closes the connection.
pub const MAGIC: u32 = u32::from_le_bytes(*b"ORCN");

// Request opcodes.
const OP_HELLO: u8 = 0x01;
const OP_PUBLISH: u8 = 0x02;
const OP_FETCH_PAGE: u8 = 0x03;
const OP_FETCH: u8 = 0x04;
const OP_PROBE: u8 = 0x05;
// Response opcodes (high bit set).
const OP_HELLO_OK: u8 = 0x81;
const OP_PUBLISH_OK: u8 = 0x82;
const OP_PAGE: u8 = 0x83;
const OP_TXN: u8 = 0x84;
const OP_PROBE_OK: u8 = 0x85;
const OP_ERR: u8 = 0xee;

type Result<T> = std::result::Result<T, CodecError>;

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation; must be the first frame on a connection.
    Hello {
        /// The newest protocol version the client speaks.
        version: u64,
    },
    /// Archive a batch of transactions (mirrors `UpdateStore::publish`).
    Publish {
        /// The publish epoch.
        epoch: Epoch,
        /// The batch.
        txns: Vec<Transaction>,
    },
    /// One page of the archive (mirrors `UpdateStore::fetch_page`).
    FetchPage {
        /// Resume position.
        cursor: FetchCursor,
        /// Maximum positions to scan.
        limit: u64,
    },
    /// One transaction by id (mirrors `UpdateStore::fetch`).
    Fetch {
        /// The wanted transaction.
        id: TxnId,
    },
    /// Archive metadata: length, latest epoch, counters — serves `len`,
    /// `latest_epoch`, and `stats` in one round trip.
    Probe,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// HELLO accepted; the version both sides will speak.
    HelloOk {
        /// The negotiated protocol version.
        version: u64,
    },
    /// Publish succeeded.
    PublishOk,
    /// One archive page.
    Page(FetchPage),
    /// A fetched transaction (or its absence).
    Txn(Option<Transaction>),
    /// Archive metadata.
    ProbeOk {
        /// Number of archived transactions.
        len: u64,
        /// Latest archived epoch, if any.
        latest_epoch: Option<Epoch>,
        /// The remote store's counters.
        stats: StoreStats,
    },
    /// The operation failed on the server; carries the full
    /// [`StoreError`] so the client surfaces exactly what a local
    /// backend would have returned.
    Err(StoreError),
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Request::Hello { version } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&MAGIC.to_le_bytes());
                put_uvarint(&mut out, *version);
            }
            Request::Publish { epoch, txns } => {
                out.push(OP_PUBLISH);
                // The body is byte-identical to the WAL's batch record:
                // durable and net serialize a publish the same way.
                out.extend_from_slice(&encode_batch(*epoch, txns));
            }
            Request::FetchPage { cursor, limit } => {
                out.push(OP_FETCH_PAGE);
                put_cursor(&mut out, cursor);
                put_uvarint(&mut out, *limit);
            }
            Request::Fetch { id } => {
                out.push(OP_FETCH);
                put_txn_id(&mut out, id);
            }
            Request::Probe => out.push(OP_PROBE),
        }
        out
    }

    /// Decode a frame payload; must be consumed exactly.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut c = Cursor::new(payload);
        let op = c.u8()?;
        let req = match op {
            OP_HELLO => {
                let magic = u32::from_le_bytes(take4(&mut c)?);
                if magic != MAGIC {
                    return fail(&c, format!("bad hello magic {magic:#010x}"));
                }
                Request::Hello {
                    version: c.uvarint()?,
                }
            }
            OP_PUBLISH => {
                let (epoch, txns) = decode_batch(rest(&mut c))?;
                return Ok(Request::Publish { epoch, txns });
            }
            OP_FETCH_PAGE => Request::FetchPage {
                cursor: get_cursor(&mut c)?,
                limit: c.uvarint()?,
            },
            OP_FETCH => Request::Fetch {
                id: get_txn_id(&mut c)?,
            },
            OP_PROBE => Request::Probe,
            other => return fail(&c, format!("unknown request opcode {other:#04x}")),
        };
        finish(c, req)
    }

    /// Short label for logs and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Publish { .. } => "publish",
            Request::FetchPage { .. } => "fetch_page",
            Request::Fetch { .. } => "fetch",
            Request::Probe => "probe",
        }
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Response::HelloOk { version } => {
                out.push(OP_HELLO_OK);
                put_uvarint(&mut out, *version);
            }
            Response::PublishOk => out.push(OP_PUBLISH_OK),
            Response::Page(page) => {
                out.push(OP_PAGE);
                put_uvarint(&mut out, page.txns.len() as u64);
                for t in &page.txns {
                    put_transaction(&mut out, t);
                }
                put_uvarint(&mut out, page.unavailable.len() as u64);
                for (ep, id) in &page.unavailable {
                    put_uvarint(&mut out, ep.value());
                    put_txn_id(&mut out, id);
                }
                match &page.next_cursor {
                    Some(cursor) => {
                        out.push(1);
                        put_cursor(&mut out, cursor);
                    }
                    None => out.push(0),
                }
            }
            Response::Txn(txn) => {
                out.push(OP_TXN);
                match txn {
                    Some(t) => {
                        out.push(1);
                        put_transaction(&mut out, t);
                    }
                    None => out.push(0),
                }
            }
            Response::ProbeOk {
                len,
                latest_epoch,
                stats,
            } => {
                out.push(OP_PROBE_OK);
                put_uvarint(&mut out, *len);
                match latest_epoch {
                    Some(ep) => {
                        out.push(1);
                        put_uvarint(&mut out, ep.value());
                    }
                    None => out.push(0),
                }
                for n in [
                    stats.published,
                    stats.fetched,
                    stats.probes,
                    stats.misses,
                    stats.pages,
                    stats.unavailable,
                    stats.degraded,
                ] {
                    put_uvarint(&mut out, n);
                }
            }
            Response::Err(e) => {
                out.push(OP_ERR);
                put_store_error(&mut out, e);
            }
        }
        out
    }

    /// Decode a frame payload; must be consumed exactly.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut c = Cursor::new(payload);
        let op = c.u8()?;
        let resp = match op {
            OP_HELLO_OK => Response::HelloOk {
                version: c.uvarint()?,
            },
            OP_PUBLISH_OK => Response::PublishOk,
            OP_PAGE => {
                let n = c.uvarint()? as usize;
                let mut txns = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    txns.push(get_transaction(&mut c)?);
                }
                let u = c.uvarint()? as usize;
                let mut unavailable = Vec::with_capacity(u.min(65_536));
                for _ in 0..u {
                    let ep = Epoch::new(c.uvarint()?);
                    unavailable.push((ep, get_txn_id(&mut c)?));
                }
                let next_cursor = match c.u8()? {
                    0 => None,
                    1 => Some(get_cursor(&mut c)?),
                    other => return fail(&c, format!("bad next-cursor flag {other}")),
                };
                Response::Page(FetchPage {
                    txns,
                    unavailable,
                    next_cursor,
                })
            }
            OP_TXN => match c.u8()? {
                0 => Response::Txn(None),
                1 => Response::Txn(Some(get_transaction(&mut c)?)),
                other => return fail(&c, format!("bad txn-present flag {other}")),
            },
            OP_PROBE_OK => {
                let len = c.uvarint()?;
                let latest_epoch = match c.u8()? {
                    0 => None,
                    1 => Some(Epoch::new(c.uvarint()?)),
                    other => return fail(&c, format!("bad latest-epoch flag {other}")),
                };
                let stats = StoreStats {
                    published: c.uvarint()?,
                    fetched: c.uvarint()?,
                    probes: c.uvarint()?,
                    misses: c.uvarint()?,
                    pages: c.uvarint()?,
                    unavailable: c.uvarint()?,
                    degraded: c.uvarint()?,
                };
                Response::ProbeOk {
                    len,
                    latest_epoch,
                    stats,
                }
            }
            OP_ERR => Response::Err(get_store_error(&mut c)?),
            other => return fail(&c, format!("unknown response opcode {other:#04x}")),
        };
        finish(c, resp)
    }
}

// Error codes on the wire (see docs/wire-protocol.md for the table).
const ERR_DUPLICATE: u8 = 0;
const ERR_UNAVAILABLE: u8 = 1;
const ERR_STALE_EPOCH: u8 = 2;
const ERR_INVALID_CONFIG: u8 = 3;
const ERR_IO: u8 = 4;
const ERR_CORRUPT: u8 = 5;

fn put_store_error(out: &mut Vec<u8>, e: &StoreError) {
    match e {
        StoreError::DuplicateTxn(id) => {
            out.push(ERR_DUPLICATE);
            put_str(out, id);
        }
        StoreError::Unavailable { txn } => {
            out.push(ERR_UNAVAILABLE);
            put_str(out, txn);
        }
        StoreError::StaleEpoch { epoch, latest } => {
            out.push(ERR_STALE_EPOCH);
            put_uvarint(out, *epoch);
            put_uvarint(out, *latest);
        }
        StoreError::InvalidConfig(msg) => {
            out.push(ERR_INVALID_CONFIG);
            put_str(out, msg);
        }
        StoreError::Io { op, path, message } => {
            out.push(ERR_IO);
            put_str(out, op);
            put_str(out, path);
            put_str(out, message);
        }
        StoreError::Corrupt {
            path,
            offset,
            reason,
        } => {
            out.push(ERR_CORRUPT);
            put_str(out, path);
            put_uvarint(out, *offset);
            put_str(out, reason);
        }
    }
}

fn get_store_error(c: &mut Cursor<'_>) -> Result<StoreError> {
    Ok(match c.u8()? {
        ERR_DUPLICATE => StoreError::DuplicateTxn(c.str()?.to_owned()),
        ERR_UNAVAILABLE => StoreError::Unavailable {
            txn: c.str()?.to_owned(),
        },
        ERR_STALE_EPOCH => StoreError::StaleEpoch {
            epoch: c.uvarint()?,
            latest: c.uvarint()?,
        },
        ERR_INVALID_CONFIG => StoreError::InvalidConfig(c.str()?.to_owned()),
        ERR_IO => StoreError::Io {
            op: c.str()?.to_owned(),
            path: c.str()?.to_owned(),
            message: c.str()?.to_owned(),
        },
        ERR_CORRUPT => StoreError::Corrupt {
            path: c.str()?.to_owned(),
            offset: c.uvarint()?,
            reason: c.str()?.to_owned(),
        },
        other => return fail(c, format!("unknown error code {other}")),
    })
}

// --------------------------------------------------------------- helpers

fn take4(c: &mut Cursor<'_>) -> Result<[u8; 4]> {
    let mut out = [0u8; 4];
    for b in &mut out {
        *b = c.u8()?;
    }
    Ok(out)
}

/// All remaining bytes (for bodies delegated to another decoder).
fn rest<'a>(c: &mut Cursor<'a>) -> &'a [u8] {
    c.remaining()
}

fn fail<T>(c: &Cursor<'_>, reason: String) -> Result<T> {
    Err(CodecError {
        offset: c.position(),
        reason,
    })
}

fn finish<T>(c: Cursor<'_>, value: T) -> Result<T> {
    if c.is_empty() {
        Ok(value)
    } else {
        Err(CodecError {
            offset: c.position(),
            reason: "trailing bytes after message".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;
    use orchestra_updates::{PeerId, Update};

    fn sample_txn(seq: u64) -> Transaction {
        Transaction::new(
            TxnId::new(PeerId::new("Alaska"), seq),
            Epoch::new(3),
            vec![Update::insert("R", tuple![1, "a"])],
        )
        .with_antecedents([TxnId::new(PeerId::new("Beijing"), 1)])
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Publish {
                epoch: Epoch::new(7),
                txns: vec![sample_txn(1), sample_txn(2)],
            },
            Request::FetchPage {
                cursor: FetchCursor::at_txn(Epoch::new(2), TxnId::new(PeerId::new("A"), 5)),
                limit: 128,
            },
            Request::Fetch {
                id: TxnId::new(PeerId::new("A"), 5),
            },
            Request::Probe,
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{}", req.label());
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::HelloOk {
                version: PROTOCOL_VERSION,
            },
            Response::PublishOk,
            Response::Page(FetchPage {
                txns: vec![sample_txn(1)],
                unavailable: vec![(Epoch::new(2), TxnId::new(PeerId::new("B"), 9))],
                next_cursor: Some(FetchCursor::after_txn(
                    Epoch::new(2),
                    TxnId::new(PeerId::new("B"), 9),
                )),
            }),
            Response::Page(FetchPage::default()),
            Response::Txn(Some(sample_txn(4))),
            Response::Txn(None),
            Response::ProbeOk {
                len: 42,
                latest_epoch: Some(Epoch::new(9)),
                stats: StoreStats {
                    published: 1,
                    fetched: 2,
                    probes: 3,
                    misses: 4,
                    pages: 5,
                    unavailable: 6,
                    degraded: 7,
                },
            },
            Response::ProbeOk {
                len: 0,
                latest_epoch: None,
                stats: StoreStats::default(),
            },
        ];
        for resp in resps {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn every_store_error_roundtrips() {
        let errs = [
            StoreError::DuplicateTxn("A#1".into()),
            StoreError::Unavailable { txn: "B#2".into() },
            StoreError::StaleEpoch {
                epoch: 3,
                latest: 9,
            },
            StoreError::InvalidConfig("zero nodes".into()),
            StoreError::Io {
                op: "fsync".into(),
                path: "/wal/000001.seg".into(),
                message: "disk full".into(),
            },
            StoreError::Corrupt {
                path: "/wal/000001.seg".into(),
                offset: 128,
                reason: "checksum mismatch".into(),
            },
        ];
        for e in errs {
            let bytes = Response::Err(e.clone()).encode();
            assert_eq!(Response::decode(&bytes).unwrap(), Response::Err(e));
        }
    }

    #[test]
    fn publish_body_is_the_wal_batch_record() {
        // The net bytes after the opcode are exactly the durable WAL's
        // batch record: one codec, two consumers.
        let txns = vec![sample_txn(1)];
        let wire = Request::Publish {
            epoch: Epoch::new(7),
            txns: txns.clone(),
        }
        .encode();
        assert_eq!(&wire[1..], &encode_batch(Epoch::new(7), &txns)[..]);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x7f]).is_err(), "unknown opcode");
        assert!(Response::decode(&[0x01]).is_err(), "request op as response");
        // Wrong magic.
        let mut hello = Request::Hello { version: 1 }.encode();
        hello[1] ^= 0xff;
        assert!(Request::decode(&hello).is_err());
        // Trailing bytes.
        let mut probe = Request::Probe.encode();
        probe.push(0);
        assert!(Request::decode(&probe).is_err());
    }
}
