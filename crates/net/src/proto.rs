//! The `orchestra-net` wire protocol: versioned, length-prefixed,
//! CRC32-checksummed messages carrying the [`UpdateStore`] surface.
//!
//! Every message travels inside one frame from [`orchestra_store::frame`]
//! (`len:u32le crc:u32le payload[len]`) — the same framing the durable
//! WAL uses on disk — and transactions, cursors, and batches are encoded
//! by [`orchestra_store::durable::codec`], so a transaction's bytes are
//! identical on the wire and in the archive. See `docs/wire-protocol.md`
//! for the full layout.
//!
//! ```text
//! request  := HELLO       magic:u32le version:uvarint [trace:uvarint]
//!           | PUBLISH     batch                  (the WAL batch record)
//!           | FETCH_PAGE  cursor limit:uvarint
//!           | FETCH       txn_id
//!           | PROBE
//!           | DIGEST                                                (v2)
//!           | SUBSCRIBE   peer:str n:uvarint str*                   (v2)
//!           | PULL_PAGES  cursor limit:uvarint                      (v2)
//!                         ni:uvarint str* nh:uvarint (peer:str hw:uvarint)*
//!                         [trace:uvarint]
//!           | METRICS                                               (v2)
//! response := HELLO_OK    version:uvarint
//!           | PUBLISH_OK
//!           | PAGE        n:uvarint txn* u:uvarint (epoch:uvarint txn_id)*
//!                         has_next:u8 [cursor]
//!           | TXN         present:u8 [txn]
//!           | PROBE_OK    len:uvarint has_latest:u8 [epoch:uvarint]
//!                         stats:7×uvarint [server:5×uvarint]        (v2)
//!           | DIGEST_OK   digest                                    (v2)
//!           | SUBSCRIBE_OK                                          (v2)
//!           | PAGES       n:uvarint txn* k:uvarint txn_id*          (v2)
//!                         u:uvarint (epoch:uvarint txn_id)* has_next:u8 [cursor]
//!           | METRICS_OK  obs-snapshot                              (v2)
//!           | ERR         code:u8 fields…        (see `StoreError` table)
//! ```
//!
//! `HELLO` and `PULL_PAGES` optionally carry a nonzero **trace id** as a
//! trailing uvarint, so one cross-peer anti-entropy exchange stitches
//! into a single trace (`docs/observability.md`). The tail is appended
//! only when a trace is active *and* the connection is known to speak
//! v2 — v1 decoders reject trailing bytes, exactly like the `PROBE_OK`
//! server-counter tail.
//!
//! [`UpdateStore`]: orchestra_store::UpdateStore

use orchestra_store::durable::codec::{
    decode_batch, encode_batch, get_cursor, get_transaction, get_txn_id, put_cursor, put_str,
    put_transaction, put_txn_id, put_uvarint, CodecError, Cursor,
};
use orchestra_store::{
    FetchCursor, FetchPage, RelationDigest, StoreDigest, StoreError, StoreStats,
};
use orchestra_updates::{Epoch, Transaction, TxnId};

/// Protocol version spoken by this build.
///
/// * **v1** — the `UpdateStore` surface: `PUBLISH`/`FETCH_PAGE`/`FETCH`/
///   `PROBE`.
/// * **v2** — adds the mesh anti-entropy surface: `DIGEST`, `SUBSCRIBE`,
///   `PULL_PAGES`, and server per-message-type counters appended to
///   `PROBE_OK`. A v2 server still serves v1 clients byte-identically (the
///   negotiated version is tracked per connection); a connection that
///   negotiated v1 and then sends a v2 opcode gets a clean `ERR`.
pub const PROTOCOL_VERSION: u64 = 2;

/// Magic prefix of a HELLO payload: `"ORCN"` little-endian. A server
/// reading anything else as its first frame is talking to something that
/// is not an orchestra peer and closes the connection.
pub const MAGIC: u32 = u32::from_le_bytes(*b"ORCN");

// Request opcodes.
const OP_HELLO: u8 = 0x01;
const OP_PUBLISH: u8 = 0x02;
const OP_FETCH_PAGE: u8 = 0x03;
const OP_FETCH: u8 = 0x04;
const OP_PROBE: u8 = 0x05;
const OP_DIGEST: u8 = 0x06;
const OP_SUBSCRIBE: u8 = 0x07;
const OP_PULL_PAGES: u8 = 0x08;
const OP_METRICS: u8 = 0x09;
// Response opcodes (high bit set).
const OP_HELLO_OK: u8 = 0x81;
const OP_PUBLISH_OK: u8 = 0x82;
const OP_PAGE: u8 = 0x83;
const OP_TXN: u8 = 0x84;
const OP_PROBE_OK: u8 = 0x85;
const OP_DIGEST_OK: u8 = 0x86;
const OP_SUBSCRIBE_OK: u8 = 0x87;
const OP_PAGES: u8 = 0x88;
const OP_METRICS_OK: u8 = 0x89;
const OP_ERR: u8 = 0xee;

/// The protocol version a request needs: v2 opcodes on a v1-negotiated
/// connection are rejected by the server with a clean `ERR`.
pub fn required_version(req: &Request) -> u64 {
    match req {
        Request::Digest
        | Request::Subscribe { .. }
        | Request::PullPages { .. }
        | Request::Metrics => 2,
        _ => 1,
    }
}

type Result<T> = std::result::Result<T, CodecError>;

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation; must be the first frame on a connection.
    Hello {
        /// The newest protocol version the client speaks.
        version: u64,
        /// Active trace id, or 0 for none. Encoded as an optional tail
        /// (only when nonzero), so a traceless HELLO stays byte-identical
        /// to v1 — attach only when the server is known to speak v2.
        trace: u64,
    },
    /// Archive a batch of transactions (mirrors `UpdateStore::publish`).
    Publish {
        /// The publish epoch.
        epoch: Epoch,
        /// The batch.
        txns: Vec<Transaction>,
    },
    /// One page of the archive (mirrors `UpdateStore::fetch_page`).
    FetchPage {
        /// Resume position.
        cursor: FetchCursor,
        /// Maximum positions to scan.
        limit: u64,
    },
    /// One transaction by id (mirrors `UpdateStore::fetch`).
    Fetch {
        /// The wanted transaction.
        id: TxnId,
    },
    /// Archive metadata: length, latest epoch, counters — serves `len`,
    /// `latest_epoch`, and `stats` in one round trip.
    Probe,
    /// The archive's [`StoreDigest`] — the anti-entropy advertisement
    /// (v2, mirrors `UpdateStore::digest`).
    Digest,
    /// Register this connection's peer as a mesh subscriber with its
    /// interest set (v2). Owner-qualified relation names; an empty
    /// interest means full replication.
    Subscribe {
        /// The subscribing mesh peer's name.
        peer: String,
        /// Owner-qualified relations the peer maps from.
        interest: Vec<String>,
    },
    /// One *filtered* page of the archive (v2): scan like `FETCH_PAGE`
    /// but ship only transactions matching `interest` whose sequence is
    /// beyond the puller's `have` floor — everything else comes back as
    /// skipped ids so the puller can advance its prefix bookkeeping
    /// without paying for payloads it holds or never wants.
    PullPages {
        /// Resume position.
        cursor: FetchCursor,
        /// Maximum positions to scan.
        limit: u64,
        /// Owner-qualified relations to ship (empty = ship everything).
        interest: Vec<String>,
        /// Per-source prefix floors: transactions with `seq <= hw` for
        /// their publisher are skipped, not shipped.
        have: Vec<(String, u64)>,
        /// Active trace id, or 0 for none (optional tail like HELLO's —
        /// `PULL_PAGES` is v2-only, so a traced puller may always attach).
        trace: u64,
    },
    /// The server process's observability snapshot — every registered
    /// counter, gauge, and latency histogram plus recent spans — so an
    /// operator (or `orchestra-top`) can poll a whole cluster without
    /// touching each box (v2).
    Metrics,
}

/// The body of a v2 `PAGES` response: one interest/have-filtered page.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PullPage {
    /// Shipped transactions (matched interest, beyond the have floor).
    pub txns: Vec<Transaction>,
    /// Scanned positions deliberately *not* shipped (filtered by interest
    /// or covered by the have floor), in scan order. Publishers stamp
    /// dense sequences, so these ids let the puller keep per-source
    /// prefix-completeness bookkeeping exact.
    pub skipped: Vec<TxnId>,
    /// Scanned positions whose payloads were unreachable server-side.
    pub unavailable: Vec<(Epoch, TxnId)>,
    /// Cursor for the next page, or `None` at end of archive.
    pub next_cursor: Option<FetchCursor>,
}

impl PullPage {
    /// Positions scanned by this page.
    pub fn scanned(&self) -> usize {
        self.txns.len() + self.skipped.len() + self.unavailable.len()
    }
}

/// Per-message-type counters a v2 server appends to `PROBE_OK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerCounters {
    /// `DIGEST` requests served.
    pub digests_served: u64,
    /// `PULL_PAGES` requests served.
    pub pull_pages: u64,
    /// `SUBSCRIBE` registrations accepted.
    pub subscriptions: u64,
    /// Inbound frames dropped for a checksum mismatch or an oversized
    /// length prefix — bit rot on the wire, visible to the operator so a
    /// flaky link can be told apart from a slow one.
    pub corrupt_frames: u64,
    /// Connections closed because a frame stalled mid-transfer past the
    /// server's read timeout.
    pub timed_out_conns: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// HELLO accepted; the version both sides will speak.
    HelloOk {
        /// The negotiated protocol version.
        version: u64,
    },
    /// Publish succeeded.
    PublishOk,
    /// One archive page.
    Page(FetchPage),
    /// A fetched transaction (or its absence).
    Txn(Option<Transaction>),
    /// Archive metadata.
    ProbeOk {
        /// Number of archived transactions.
        len: u64,
        /// Latest archived epoch, if any.
        latest_epoch: Option<Epoch>,
        /// The remote store's counters.
        stats: StoreStats,
        /// The server's per-message-type counters — appended on v2
        /// connections only, so a v1 `PROBE_OK` stays byte-identical to
        /// what v1 servers produced.
        server: Option<ServerCounters>,
    },
    /// The archive's digest (v2).
    DigestOk(StoreDigest),
    /// Subscription registered (v2).
    SubscribeOk,
    /// One filtered anti-entropy page (v2).
    Pages(PullPage),
    /// The server process's observability snapshot (v2).
    MetricsOk(orchestra_obs::ObsSnapshot),
    /// The operation failed on the server; carries the full
    /// [`StoreError`] so the client surfaces exactly what a local
    /// backend would have returned.
    Err(StoreError),
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Request::Hello { version, trace } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&MAGIC.to_le_bytes());
                put_uvarint(&mut out, *version);
                if *trace != 0 {
                    put_uvarint(&mut out, *trace);
                }
            }
            Request::Publish { epoch, txns } => {
                out.push(OP_PUBLISH);
                // The body is byte-identical to the WAL's batch record:
                // durable and net serialize a publish the same way.
                out.extend_from_slice(&encode_batch(*epoch, txns));
            }
            Request::FetchPage { cursor, limit } => {
                out.push(OP_FETCH_PAGE);
                put_cursor(&mut out, cursor);
                put_uvarint(&mut out, *limit);
            }
            Request::Fetch { id } => {
                out.push(OP_FETCH);
                put_txn_id(&mut out, id);
            }
            Request::Probe => out.push(OP_PROBE),
            Request::Digest => out.push(OP_DIGEST),
            Request::Subscribe { peer, interest } => {
                out.push(OP_SUBSCRIBE);
                put_str(&mut out, peer);
                put_uvarint(&mut out, interest.len() as u64);
                for r in interest {
                    put_str(&mut out, r);
                }
            }
            Request::PullPages {
                cursor,
                limit,
                interest,
                have,
                trace,
            } => {
                out.push(OP_PULL_PAGES);
                put_cursor(&mut out, cursor);
                put_uvarint(&mut out, *limit);
                put_uvarint(&mut out, interest.len() as u64);
                for r in interest {
                    put_str(&mut out, r);
                }
                put_uvarint(&mut out, have.len() as u64);
                for (peer, hw) in have {
                    put_str(&mut out, peer);
                    put_uvarint(&mut out, *hw);
                }
                if *trace != 0 {
                    put_uvarint(&mut out, *trace);
                }
            }
            Request::Metrics => out.push(OP_METRICS),
        }
        out
    }

    /// Decode a frame payload; must be consumed exactly.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut c = Cursor::new(payload);
        let op = c.u8()?;
        let req = match op {
            OP_HELLO => {
                let magic = u32::from_le_bytes(take4(&mut c)?);
                if magic != MAGIC {
                    return fail(&c, format!("bad hello magic {magic:#010x}"));
                }
                Request::Hello {
                    version: c.uvarint()?,
                    trace: get_opt_trace(&mut c)?,
                }
            }
            OP_PUBLISH => {
                let (epoch, txns) = decode_batch(rest(&mut c))?;
                return Ok(Request::Publish { epoch, txns });
            }
            OP_FETCH_PAGE => Request::FetchPage {
                cursor: get_cursor(&mut c)?,
                limit: c.uvarint()?,
            },
            OP_FETCH => Request::Fetch {
                id: get_txn_id(&mut c)?,
            },
            OP_PROBE => Request::Probe,
            OP_DIGEST => Request::Digest,
            OP_SUBSCRIBE => {
                let peer = c.str()?.to_owned();
                let n = c.uvarint()? as usize;
                let mut interest = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    interest.push(c.str()?.to_owned());
                }
                Request::Subscribe { peer, interest }
            }
            OP_PULL_PAGES => {
                let cursor = get_cursor(&mut c)?;
                let limit = c.uvarint()?;
                let n = c.uvarint()? as usize;
                let mut interest = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    interest.push(c.str()?.to_owned());
                }
                let h = c.uvarint()? as usize;
                let mut have = Vec::with_capacity(h.min(65_536));
                for _ in 0..h {
                    let peer = c.str()?.to_owned();
                    have.push((peer, c.uvarint()?));
                }
                Request::PullPages {
                    cursor,
                    limit,
                    interest,
                    have,
                    trace: get_opt_trace(&mut c)?,
                }
            }
            OP_METRICS => Request::Metrics,
            other => return fail(&c, format!("unknown request opcode {other:#04x}")),
        };
        finish(c, req)
    }

    /// Short label for logs and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Publish { .. } => "publish",
            Request::FetchPage { .. } => "fetch_page",
            Request::Fetch { .. } => "fetch",
            Request::Probe => "probe",
            Request::Digest => "digest",
            Request::Subscribe { .. } => "subscribe",
            Request::PullPages { .. } => "pull_pages",
            Request::Metrics => "metrics",
        }
    }

    /// The trace id this request propagates (0 = none).
    pub fn trace(&self) -> u64 {
        match self {
            Request::Hello { trace, .. } | Request::PullPages { trace, .. } => *trace,
            _ => 0,
        }
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Response::HelloOk { version } => {
                out.push(OP_HELLO_OK);
                put_uvarint(&mut out, *version);
            }
            Response::PublishOk => out.push(OP_PUBLISH_OK),
            Response::Page(page) => {
                out.push(OP_PAGE);
                put_uvarint(&mut out, page.txns.len() as u64);
                for t in &page.txns {
                    put_transaction(&mut out, t);
                }
                put_uvarint(&mut out, page.unavailable.len() as u64);
                for (ep, id) in &page.unavailable {
                    put_uvarint(&mut out, ep.value());
                    put_txn_id(&mut out, id);
                }
                match &page.next_cursor {
                    Some(cursor) => {
                        out.push(1);
                        put_cursor(&mut out, cursor);
                    }
                    None => out.push(0),
                }
            }
            Response::Txn(txn) => {
                out.push(OP_TXN);
                match txn {
                    Some(t) => {
                        out.push(1);
                        put_transaction(&mut out, t);
                    }
                    None => out.push(0),
                }
            }
            Response::ProbeOk {
                len,
                latest_epoch,
                stats,
                server,
            } => {
                out.push(OP_PROBE_OK);
                put_uvarint(&mut out, *len);
                match latest_epoch {
                    Some(ep) => {
                        out.push(1);
                        put_uvarint(&mut out, ep.value());
                    }
                    None => out.push(0),
                }
                for n in [
                    stats.published,
                    stats.fetched,
                    stats.probes,
                    stats.misses,
                    stats.pages,
                    stats.unavailable,
                    stats.degraded,
                ] {
                    put_uvarint(&mut out, n);
                }
                // v2 appends the server counters; a v1 response body ends
                // here, byte-identical to what v1 servers produced (v1
                // decoders reject trailing bytes).
                if let Some(sc) = server {
                    for n in [
                        sc.digests_served,
                        sc.pull_pages,
                        sc.subscriptions,
                        sc.corrupt_frames,
                        sc.timed_out_conns,
                    ] {
                        put_uvarint(&mut out, n);
                    }
                }
            }
            Response::DigestOk(d) => {
                out.push(OP_DIGEST_OK);
                put_digest(&mut out, d);
            }
            Response::SubscribeOk => out.push(OP_SUBSCRIBE_OK),
            Response::Pages(page) => {
                out.push(OP_PAGES);
                put_uvarint(&mut out, page.txns.len() as u64);
                for t in &page.txns {
                    put_transaction(&mut out, t);
                }
                put_uvarint(&mut out, page.skipped.len() as u64);
                for id in &page.skipped {
                    put_txn_id(&mut out, id);
                }
                put_uvarint(&mut out, page.unavailable.len() as u64);
                for (ep, id) in &page.unavailable {
                    put_uvarint(&mut out, ep.value());
                    put_txn_id(&mut out, id);
                }
                match &page.next_cursor {
                    Some(cursor) => {
                        out.push(1);
                        put_cursor(&mut out, cursor);
                    }
                    None => out.push(0),
                }
            }
            Response::MetricsOk(snap) => {
                out.push(OP_METRICS_OK);
                put_obs_snapshot(&mut out, snap);
            }
            Response::Err(e) => {
                out.push(OP_ERR);
                put_store_error(&mut out, e);
            }
        }
        out
    }

    /// Decode a frame payload; must be consumed exactly.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut c = Cursor::new(payload);
        let op = c.u8()?;
        let resp = match op {
            OP_HELLO_OK => Response::HelloOk {
                version: c.uvarint()?,
            },
            OP_PUBLISH_OK => Response::PublishOk,
            OP_PAGE => {
                let n = c.uvarint()? as usize;
                let mut txns = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    txns.push(get_transaction(&mut c)?);
                }
                let u = c.uvarint()? as usize;
                let mut unavailable = Vec::with_capacity(u.min(65_536));
                for _ in 0..u {
                    let ep = Epoch::new(c.uvarint()?);
                    unavailable.push((ep, get_txn_id(&mut c)?));
                }
                let next_cursor = match c.u8()? {
                    0 => None,
                    1 => Some(get_cursor(&mut c)?),
                    other => return fail(&c, format!("bad next-cursor flag {other}")),
                };
                Response::Page(FetchPage {
                    txns,
                    unavailable,
                    next_cursor,
                })
            }
            OP_TXN => match c.u8()? {
                0 => Response::Txn(None),
                1 => Response::Txn(Some(get_transaction(&mut c)?)),
                other => return fail(&c, format!("bad txn-present flag {other}")),
            },
            OP_PROBE_OK => {
                let len = c.uvarint()?;
                let latest_epoch = match c.u8()? {
                    0 => None,
                    1 => Some(Epoch::new(c.uvarint()?)),
                    other => return fail(&c, format!("bad latest-epoch flag {other}")),
                };
                let stats = StoreStats {
                    published: c.uvarint()?,
                    fetched: c.uvarint()?,
                    probes: c.uvarint()?,
                    misses: c.uvarint()?,
                    pages: c.uvarint()?,
                    unavailable: c.uvarint()?,
                    degraded: c.uvarint()?,
                };
                // A v1 body ends at the store stats; a v2 body appends the
                // server's per-message-type counters.
                let server = if c.is_empty() {
                    None
                } else {
                    let mut sc = ServerCounters {
                        digests_served: c.uvarint()?,
                        pull_pages: c.uvarint()?,
                        subscriptions: c.uvarint()?,
                        ..ServerCounters::default()
                    };
                    // Early v2 servers appended only the three counters
                    // above; the breaker-visible pair is optional.
                    if !c.is_empty() {
                        sc.corrupt_frames = c.uvarint()?;
                        sc.timed_out_conns = c.uvarint()?;
                    }
                    Some(sc)
                };
                Response::ProbeOk {
                    len,
                    latest_epoch,
                    stats,
                    server,
                }
            }
            OP_DIGEST_OK => Response::DigestOk(get_digest(&mut c)?),
            OP_SUBSCRIBE_OK => Response::SubscribeOk,
            OP_PAGES => {
                let n = c.uvarint()? as usize;
                let mut txns = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    txns.push(get_transaction(&mut c)?);
                }
                let k = c.uvarint()? as usize;
                let mut skipped = Vec::with_capacity(k.min(65_536));
                for _ in 0..k {
                    skipped.push(get_txn_id(&mut c)?);
                }
                let u = c.uvarint()? as usize;
                let mut unavailable = Vec::with_capacity(u.min(65_536));
                for _ in 0..u {
                    let ep = Epoch::new(c.uvarint()?);
                    unavailable.push((ep, get_txn_id(&mut c)?));
                }
                let next_cursor = match c.u8()? {
                    0 => None,
                    1 => Some(get_cursor(&mut c)?),
                    other => return fail(&c, format!("bad next-cursor flag {other}")),
                };
                Response::Pages(PullPage {
                    txns,
                    skipped,
                    unavailable,
                    next_cursor,
                })
            }
            OP_METRICS_OK => Response::MetricsOk(get_obs_snapshot(&mut c)?),
            OP_ERR => Response::Err(get_store_error(&mut c)?),
            other => return fail(&c, format!("unknown response opcode {other:#04x}")),
        };
        finish(c, resp)
    }
}

// Error codes on the wire (see docs/wire-protocol.md for the table).
const ERR_DUPLICATE: u8 = 0;
const ERR_UNAVAILABLE: u8 = 1;
const ERR_STALE_EPOCH: u8 = 2;
const ERR_INVALID_CONFIG: u8 = 3;
const ERR_IO: u8 = 4;
const ERR_CORRUPT: u8 = 5;

fn put_store_error(out: &mut Vec<u8>, e: &StoreError) {
    match e {
        StoreError::DuplicateTxn(id) => {
            out.push(ERR_DUPLICATE);
            put_str(out, id);
        }
        StoreError::Unavailable { txn } => {
            out.push(ERR_UNAVAILABLE);
            put_str(out, txn);
        }
        StoreError::StaleEpoch { epoch, latest } => {
            out.push(ERR_STALE_EPOCH);
            put_uvarint(out, *epoch);
            put_uvarint(out, *latest);
        }
        StoreError::InvalidConfig(msg) => {
            out.push(ERR_INVALID_CONFIG);
            put_str(out, msg);
        }
        StoreError::Io { op, path, message } => {
            out.push(ERR_IO);
            put_str(out, op);
            put_str(out, path);
            put_str(out, message);
        }
        StoreError::Corrupt {
            path,
            offset,
            reason,
        } => {
            out.push(ERR_CORRUPT);
            put_str(out, path);
            put_uvarint(out, *offset);
            put_str(out, reason);
        }
    }
}

fn get_store_error(c: &mut Cursor<'_>) -> Result<StoreError> {
    Ok(match c.u8()? {
        ERR_DUPLICATE => StoreError::DuplicateTxn(c.str()?.to_owned()),
        ERR_UNAVAILABLE => StoreError::Unavailable {
            txn: c.str()?.to_owned(),
        },
        ERR_STALE_EPOCH => StoreError::StaleEpoch {
            epoch: c.uvarint()?,
            latest: c.uvarint()?,
        },
        ERR_INVALID_CONFIG => StoreError::InvalidConfig(c.str()?.to_owned()),
        ERR_IO => StoreError::Io {
            op: c.str()?.to_owned(),
            path: c.str()?.to_owned(),
            message: c.str()?.to_owned(),
        },
        ERR_CORRUPT => StoreError::Corrupt {
            path: c.str()?.to_owned(),
            offset: c.uvarint()?,
            reason: c.str()?.to_owned(),
        },
        other => return fail(c, format!("unknown error code {other}")),
    })
}

// digest := len:uvarint has_latest:u8 [epoch:uvarint]
//           ns:uvarint (source:str hw:uvarint)*
//           nr:uvarint (name:str has_latest:u8 [epoch:uvarint] txns:uvarint)*
fn put_digest(out: &mut Vec<u8>, d: &StoreDigest) {
    put_uvarint(out, d.len);
    put_opt_epoch(out, d.latest_epoch);
    put_uvarint(out, d.sources.len() as u64);
    for (source, hw) in &d.sources {
        put_str(out, source);
        put_uvarint(out, *hw);
    }
    put_uvarint(out, d.relations.len() as u64);
    for (name, r) in &d.relations {
        put_str(out, name);
        put_opt_epoch(out, r.latest_epoch);
        put_uvarint(out, r.txns);
    }
}

fn get_digest(c: &mut Cursor<'_>) -> Result<StoreDigest> {
    let len = c.uvarint()?;
    let latest_epoch = get_opt_epoch(c)?;
    let ns = c.uvarint()? as usize;
    let mut sources = std::collections::BTreeMap::new();
    for _ in 0..ns {
        let source = c.str()?.to_owned();
        sources.insert(source, c.uvarint()?);
    }
    let nr = c.uvarint()? as usize;
    let mut relations = std::collections::BTreeMap::new();
    for _ in 0..nr {
        let name = c.str()?.to_owned();
        let latest_epoch = get_opt_epoch(c)?;
        relations.insert(
            name,
            RelationDigest {
                latest_epoch,
                txns: c.uvarint()?,
            },
        );
    }
    Ok(StoreDigest {
        len,
        latest_epoch,
        sources,
        relations,
    })
}

fn put_opt_epoch(out: &mut Vec<u8>, e: Option<Epoch>) {
    match e {
        Some(ep) => {
            out.push(1);
            put_uvarint(out, ep.value());
        }
        None => out.push(0),
    }
}

fn get_opt_epoch(c: &mut Cursor<'_>) -> Result<Option<Epoch>> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Epoch::new(c.uvarint()?))),
        other => fail(c, format!("bad epoch-present flag {other}")),
    }
}

/// The optional trailing trace id on `HELLO` / `PULL_PAGES`: present iff
/// bytes remain (mirrors the `PROBE_OK` server-counter tail).
fn get_opt_trace(c: &mut Cursor<'_>) -> Result<u64> {
    if c.is_empty() {
        Ok(0)
    } else {
        c.uvarint()
    }
}

// obs-snapshot := nc:uvarint (name:str v:uvarint)*
//                 ng:uvarint (name:str v:zigzag-uvarint)*
//                 nh:uvarint (name:str count:uvarint sum:uvarint
//                             nb:uvarint bucket:uvarint*)*
//                 ns:uvarint (name:str trace:uvarint start:uvarint
//                             dur:uvarint thread:uvarint seq:uvarint
//                             na:uvarint (k:str v:str)*)*
fn put_obs_snapshot(out: &mut Vec<u8>, snap: &orchestra_obs::ObsSnapshot) {
    put_uvarint(out, snap.counters.len() as u64);
    for (name, v) in &snap.counters {
        put_str(out, name);
        put_uvarint(out, *v);
    }
    put_uvarint(out, snap.gauges.len() as u64);
    for (name, v) in &snap.gauges {
        put_str(out, name);
        put_uvarint(out, zigzag(*v));
    }
    put_uvarint(out, snap.histograms.len() as u64);
    for h in &snap.histograms {
        put_str(out, &h.name);
        put_uvarint(out, h.count);
        put_uvarint(out, h.sum);
        put_uvarint(out, h.buckets.len() as u64);
        for b in &h.buckets {
            put_uvarint(out, *b);
        }
    }
    put_uvarint(out, snap.spans.len() as u64);
    for s in &snap.spans {
        put_str(out, &s.name);
        put_uvarint(out, s.trace);
        put_uvarint(out, s.start_us);
        put_uvarint(out, s.dur_us);
        put_uvarint(out, s.thread);
        put_uvarint(out, s.seq);
        put_uvarint(out, s.attrs.len() as u64);
        for (k, v) in &s.attrs {
            put_str(out, k);
            put_str(out, v);
        }
    }
}

fn get_obs_snapshot(c: &mut Cursor<'_>) -> Result<orchestra_obs::ObsSnapshot> {
    let mut snap = orchestra_obs::ObsSnapshot::default();
    let nc = c.uvarint()? as usize;
    snap.counters.reserve(nc.min(65_536));
    for _ in 0..nc {
        let name = c.str()?.to_owned();
        snap.counters.push((name, c.uvarint()?));
    }
    let ng = c.uvarint()? as usize;
    snap.gauges.reserve(ng.min(65_536));
    for _ in 0..ng {
        let name = c.str()?.to_owned();
        snap.gauges.push((name, unzigzag(c.uvarint()?)));
    }
    let nh = c.uvarint()? as usize;
    snap.histograms.reserve(nh.min(65_536));
    for _ in 0..nh {
        let name = c.str()?.to_owned();
        let count = c.uvarint()?;
        let sum = c.uvarint()?;
        let nb = c.uvarint()? as usize;
        let mut buckets = Vec::with_capacity(nb.min(65_536));
        for _ in 0..nb {
            buckets.push(c.uvarint()?);
        }
        snap.histograms.push(orchestra_obs::HistogramSnapshot {
            name,
            count,
            sum,
            buckets,
        });
    }
    let ns = c.uvarint()? as usize;
    snap.spans.reserve(ns.min(65_536));
    for _ in 0..ns {
        let name = c.str()?.to_owned();
        let trace = c.uvarint()?;
        let start_us = c.uvarint()?;
        let dur_us = c.uvarint()?;
        let thread = c.uvarint()?;
        let seq = c.uvarint()?;
        let na = c.uvarint()? as usize;
        let mut attrs = Vec::with_capacity(na.min(65_536));
        for _ in 0..na {
            let k = c.str()?.to_owned();
            attrs.push((k, c.str()?.to_owned()));
        }
        snap.spans.push(orchestra_obs::SpanSnapshot {
            name,
            trace,
            start_us,
            dur_us,
            thread,
            seq,
            attrs,
        });
    }
    Ok(snap)
}

/// Zigzag-map a signed gauge value onto the uvarint domain (small
/// magnitudes of either sign stay short on the wire).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

// --------------------------------------------------------------- helpers

fn take4(c: &mut Cursor<'_>) -> Result<[u8; 4]> {
    let mut out = [0u8; 4];
    for b in &mut out {
        *b = c.u8()?;
    }
    Ok(out)
}

/// All remaining bytes (for bodies delegated to another decoder).
fn rest<'a>(c: &mut Cursor<'a>) -> &'a [u8] {
    c.remaining()
}

fn fail<T>(c: &Cursor<'_>, reason: String) -> Result<T> {
    Err(CodecError {
        offset: c.position(),
        reason,
    })
}

fn finish<T>(c: Cursor<'_>, value: T) -> Result<T> {
    if c.is_empty() {
        Ok(value)
    } else {
        Err(CodecError {
            offset: c.position(),
            reason: "trailing bytes after message".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;
    use orchestra_updates::{PeerId, Update};

    fn sample_txn(seq: u64) -> Transaction {
        Transaction::new(
            TxnId::new(PeerId::new("Alaska"), seq),
            Epoch::new(3),
            vec![Update::insert("R", tuple![1, "a"])],
        )
        .with_antecedents([TxnId::new(PeerId::new("Beijing"), 1)])
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Hello {
                version: PROTOCOL_VERSION,
                trace: 0,
            },
            Request::Hello {
                version: PROTOCOL_VERSION,
                trace: 0x00c0_ffee_1234_5678,
            },
            Request::Publish {
                epoch: Epoch::new(7),
                txns: vec![sample_txn(1), sample_txn(2)],
            },
            Request::FetchPage {
                cursor: FetchCursor::at_txn(Epoch::new(2), TxnId::new(PeerId::new("A"), 5)),
                limit: 128,
            },
            Request::Fetch {
                id: TxnId::new(PeerId::new("A"), 5),
            },
            Request::Probe,
            Request::Digest,
            Request::Subscribe {
                peer: "Alaska".into(),
                interest: vec!["Beijing.Entry".into(), "Paris.Entry".into()],
            },
            Request::Subscribe {
                peer: "full".into(),
                interest: vec![],
            },
            Request::PullPages {
                cursor: FetchCursor::after_txn(Epoch::new(4), TxnId::new(PeerId::new("B"), 2)),
                limit: 256,
                interest: vec!["Alaska.R".into()],
                have: vec![("Alaska".into(), 7), ("Beijing".into(), 0)],
                trace: 0xdead_beef,
            },
            Request::PullPages {
                cursor: FetchCursor::at_epoch(Epoch::zero()),
                limit: 1,
                interest: vec![],
                have: vec![],
                trace: 0,
            },
            Request::Metrics,
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{}", req.label());
        }
    }

    #[test]
    fn required_versions() {
        assert_eq!(required_version(&Request::Probe), 1);
        assert_eq!(
            required_version(&Request::Hello {
                version: 2,
                trace: 0
            }),
            1
        );
        assert_eq!(required_version(&Request::Digest), 2);
        assert_eq!(required_version(&Request::Metrics), 2);
        assert_eq!(
            required_version(&Request::Subscribe {
                peer: "p".into(),
                interest: vec![]
            }),
            2
        );
        assert_eq!(
            required_version(&Request::PullPages {
                cursor: FetchCursor::at_epoch(Epoch::zero()),
                limit: 1,
                interest: vec![],
                have: vec![],
                trace: 0,
            }),
            2
        );
    }

    #[test]
    fn traceless_requests_stay_v1_byte_identical() {
        // HELLO without a trace must encode to the exact v1 body —
        // opcode, magic, one version uvarint — so old decoders (which
        // reject trailing bytes) still accept it.
        let hello = Request::Hello {
            version: 1,
            trace: 0,
        }
        .encode();
        assert_eq!(hello.len(), 1 + 4 + 1);
        // And a v1-era body (no tail) decodes with trace = 0.
        assert_eq!(
            Request::decode(&hello).unwrap(),
            Request::Hello {
                version: 1,
                trace: 0
            }
        );
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::HelloOk {
                version: PROTOCOL_VERSION,
            },
            Response::PublishOk,
            Response::Page(FetchPage {
                txns: vec![sample_txn(1)],
                unavailable: vec![(Epoch::new(2), TxnId::new(PeerId::new("B"), 9))],
                next_cursor: Some(FetchCursor::after_txn(
                    Epoch::new(2),
                    TxnId::new(PeerId::new("B"), 9),
                )),
            }),
            Response::Page(FetchPage::default()),
            Response::Txn(Some(sample_txn(4))),
            Response::Txn(None),
            Response::ProbeOk {
                len: 42,
                latest_epoch: Some(Epoch::new(9)),
                stats: StoreStats {
                    published: 1,
                    fetched: 2,
                    probes: 3,
                    misses: 4,
                    pages: 5,
                    unavailable: 6,
                    degraded: 7,
                },
                server: None,
            },
            Response::ProbeOk {
                len: 0,
                latest_epoch: None,
                stats: StoreStats::default(),
                server: Some(ServerCounters {
                    digests_served: 11,
                    pull_pages: 22,
                    subscriptions: 33,
                    corrupt_frames: 44,
                    timed_out_conns: 55,
                }),
            },
            Response::DigestOk(sample_digest()),
            Response::DigestOk(StoreDigest::default()),
            Response::SubscribeOk,
            Response::Pages(PullPage {
                txns: vec![sample_txn(3)],
                skipped: vec![
                    TxnId::new(PeerId::new("A"), 1),
                    TxnId::new(PeerId::new("C"), 4),
                ],
                unavailable: vec![(Epoch::new(2), TxnId::new(PeerId::new("B"), 9))],
                next_cursor: Some(FetchCursor::after_txn(
                    Epoch::new(3),
                    TxnId::new(PeerId::new("Alaska"), 3),
                )),
            }),
            Response::Pages(PullPage::default()),
            Response::MetricsOk(orchestra_obs::ObsSnapshot::default()),
            Response::MetricsOk(sample_obs_snapshot()),
        ];
        for resp in resps {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    fn sample_obs_snapshot() -> orchestra_obs::ObsSnapshot {
        orchestra_obs::ObsSnapshot {
            counters: vec![
                ("mesh.round.pages_pulled".into(), 17),
                ("store.published".into(), 3),
            ],
            gauges: vec![("net.breaker.open".into(), -2), ("x.g".into(), i64::MAX)],
            histograms: vec![orchestra_obs::HistogramSnapshot {
                name: "store.wal.fsync_micros".into(),
                count: 2,
                sum: 300,
                buckets: vec![0, 1, 1],
            }],
            spans: vec![orchestra_obs::SpanSnapshot {
                name: "mesh.round".into(),
                trace: u64::MAX,
                start_us: 12,
                dur_us: 34,
                thread: 5,
                seq: 99,
                attrs: vec![("peer".into(), "Alaska".into())],
            }],
        }
    }

    #[test]
    fn gauge_zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    fn sample_digest() -> StoreDigest {
        let mut d = StoreDigest::default();
        d.observe(&sample_txn(1));
        d.observe(&sample_txn(2));
        d.observe_position(Epoch::new(5), &TxnId::new(PeerId::new("Ghost"), 3));
        d
    }

    #[test]
    fn v1_probe_ok_layout_is_unchanged() {
        // A ProbeOk without server counters must encode to the exact v1
        // body: opcode, len, epoch flag, 7 stat uvarints — nothing else.
        let bytes = Response::ProbeOk {
            len: 1,
            latest_epoch: None,
            stats: StoreStats::default(),
            server: None,
        }
        .encode();
        assert_eq!(bytes.len(), 1 + 1 + 1 + 7);
    }

    #[test]
    fn legacy_three_counter_probe_ok_decodes() {
        // A v2 server predating the breaker-visible counters appended
        // only three uvarints; the pair added later must decode as zero.
        let mut bytes = Response::ProbeOk {
            len: 1,
            latest_epoch: None,
            stats: StoreStats::default(),
            server: None,
        }
        .encode();
        bytes.extend_from_slice(&[11, 22, 33]);
        match Response::decode(&bytes).unwrap() {
            Response::ProbeOk {
                server: Some(sc), ..
            } => {
                assert_eq!(
                    sc,
                    ServerCounters {
                        digests_served: 11,
                        pull_pages: 22,
                        subscriptions: 33,
                        corrupt_frames: 0,
                        timed_out_conns: 0,
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn every_store_error_roundtrips() {
        let errs = [
            StoreError::DuplicateTxn("A#1".into()),
            StoreError::Unavailable { txn: "B#2".into() },
            StoreError::StaleEpoch {
                epoch: 3,
                latest: 9,
            },
            StoreError::InvalidConfig("zero nodes".into()),
            StoreError::Io {
                op: "fsync".into(),
                path: "/wal/000001.seg".into(),
                message: "disk full".into(),
            },
            StoreError::Corrupt {
                path: "/wal/000001.seg".into(),
                offset: 128,
                reason: "checksum mismatch".into(),
            },
        ];
        for e in errs {
            let bytes = Response::Err(e.clone()).encode();
            assert_eq!(Response::decode(&bytes).unwrap(), Response::Err(e));
        }
    }

    #[test]
    fn publish_body_is_the_wal_batch_record() {
        // The net bytes after the opcode are exactly the durable WAL's
        // batch record: one codec, two consumers.
        let txns = vec![sample_txn(1)];
        let wire = Request::Publish {
            epoch: Epoch::new(7),
            txns: txns.clone(),
        }
        .encode();
        assert_eq!(&wire[1..], &encode_batch(Epoch::new(7), &txns)[..]);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x7f]).is_err(), "unknown opcode");
        assert!(Response::decode(&[0x01]).is_err(), "request op as response");
        // Wrong magic.
        let mut hello = Request::Hello {
            version: 1,
            trace: 0,
        }
        .encode();
        hello[1] ^= 0xff;
        assert!(Request::decode(&hello).is_err());
        // Trailing bytes.
        let mut probe = Request::Probe.encode();
        probe.push(0);
        assert!(Request::decode(&probe).is_err());
    }
}
