//! # orchestra-net
//!
//! CDSS peers across process and machine boundaries: a versioned,
//! checksummed binary wire protocol for the [`UpdateStore`] surface, a
//! [`PeerServer`] that exposes any backend over `std::net` TCP, and a
//! [`RemoteStore`] client that implements the trait over pooled
//! connections.
//!
//! The paper's deployment puts published transactions "in a peer-to-peer
//! distributed database"; until now every backend in this reproduction
//! lived inside one process. This crate is the boundary crossing:
//!
//! * **Wire protocol** ([`proto`]) — length-prefixed CRC32 frames (the
//!   exact framing the durable WAL uses on disk, from
//!   [`orchestra_store::frame`]) carrying `Hello`/`Publish`/`FetchPage`/
//!   `Fetch`/`Probe`, with transactions and cursors encoded by the same
//!   codec that writes them to disk. See `docs/wire-protocol.md`.
//! * **[`PeerServer`]** — a thread-pooled TCP listener serving a shared
//!   `Arc<dyn UpdateStore>` with per-connection timeouts and graceful
//!   shutdown.
//! * **[`RemoteStore`]** — the client half: every transport failure
//!   (refused, timeout, cut, checksum) maps to
//!   [`StoreError::Unavailable`](orchestra_store::StoreError::Unavailable),
//!   which the reconcile loop already absorbs by freezing the peer's
//!   resume cursor — so a dead peer degrades an exchange instead of
//!   failing it, and the cursor picks up at the gap when the peer
//!   returns.
//!
//! ```no_run
//! use orchestra_net::{PeerServer, RemoteStore};
//! use orchestra_store::{InMemoryStore, UpdateStore};
//! use std::sync::Arc;
//!
//! // Machine A: serve the archive.
//! let server = PeerServer::bind("0.0.0.0:7654", Arc::new(InMemoryStore::new())).unwrap();
//!
//! // Machine B: reconcile against it.
//! let store = RemoteStore::connect("peer-a.example:7654").unwrap();
//! let n = store.len(); // one Probe round trip
//! # let _ = (server, n);
//! ```
//!
//! [`UpdateStore`]: orchestra_store::UpdateStore

pub mod client;
pub mod proto;
pub mod server;

pub use client::{BreakerState, NetStats, RemoteOptions, RemoteStore};
pub use proto::{
    required_version, PullPage, Request, Response, ServerCounters, MAGIC, PROTOCOL_VERSION,
};
pub use server::{PeerServer, ServerOptions, ServerStats};

/// Crate-wide result alias (network operations surface store errors).
pub type Result<T> = std::result::Result<T, orchestra_store::StoreError>;
