//! Loopback integration: a real `PeerServer` on 127.0.0.1 with real
//! `RemoteStore` clients — the store contract over actual sockets, error
//! pass-through, transport→Unavailable mapping, restart recovery,
//! concurrent clients, and graceful shutdown.

use orchestra_net::{PeerServer, RemoteOptions, RemoteStore, ServerOptions};
use orchestra_relational::tuple;
use orchestra_store::{FetchCursor, InMemoryStore, ReplicatedStore, StoreError, UpdateStore};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::sync::Arc;
use std::time::Duration;

fn txn(peer: &str, seq: u64) -> Transaction {
    Transaction::new(
        TxnId::new(PeerId::new(peer), seq),
        Epoch::zero(),
        vec![Update::insert("R", tuple![seq as i64, 0])],
    )
}

/// Options tuned for tests: short timeouts, quick retries.
fn fast_opts() -> RemoteOptions {
    RemoteOptions {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        pool_capacity: 2,
        retries: 1,
        ..RemoteOptions::default()
    }
}

#[test]
fn store_contract_over_loopback() {
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind("127.0.0.1:0", backend.clone()).unwrap();
    let remote = RemoteStore::connect_with(server.local_addr(), fast_opts()).unwrap();

    assert!(remote.is_empty());
    assert_eq!(remote.latest_epoch(), None);

    remote
        .publish(Epoch::new(1), vec![txn("B", 1), txn("A", 1)])
        .unwrap();
    remote.publish(Epoch::new(2), vec![txn("A", 2)]).unwrap();

    assert_eq!(remote.len(), 3);
    assert_eq!(remote.latest_epoch(), Some(Epoch::new(2)));

    // Paged scan over the wire matches the backend's deterministic order.
    let p1 = remote
        .fetch_page(&FetchCursor::at_epoch(Epoch::zero()), 2)
        .unwrap();
    assert_eq!(p1.txns.len(), 2);
    assert_eq!(p1.txns[0].id.peer.name(), "A");
    let p2 = remote.fetch_page(&p1.next_cursor.unwrap(), 2).unwrap();
    assert_eq!(p2.txns.len(), 1);
    assert!(p2.next_cursor.is_none());

    // fetch_since drains through the trait's default impl.
    let all = remote.fetch_since(Epoch::zero()).unwrap();
    assert_eq!(all.len(), 3);
    assert_eq!(all, backend.fetch_since(Epoch::zero()).unwrap());

    // Point fetch, hit and miss.
    let got = remote.fetch(&TxnId::new(PeerId::new("A"), 2)).unwrap();
    assert_eq!(got.unwrap().id.seq, 2);
    assert!(remote
        .fetch(&TxnId::new(PeerId::new("Z"), 9))
        .unwrap()
        .is_none());

    // Remote stats are the backend's counters.
    assert_eq!(remote.stats().published, 3);

    // The pool reuses connections: well under one connect per request.
    let net = remote.net_stats();
    assert!(net.round_trips >= 8, "round trips counted: {net:?}");
    assert!(
        net.connects <= 3,
        "pooled connections were not reused: {net:?}"
    );
    server.shutdown();
}

#[test]
fn application_errors_travel_the_wire_intact() {
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind("127.0.0.1:0", backend).unwrap();
    let remote = RemoteStore::connect_with(server.local_addr(), fast_opts()).unwrap();

    remote.publish(Epoch::new(5), vec![txn("A", 1)]).unwrap();

    // Duplicate id: the same error a local backend raises.
    let dup = remote.publish(Epoch::new(6), vec![txn("A", 1)]);
    assert!(matches!(dup, Err(StoreError::DuplicateTxn(_))), "{dup:?}");

    // Stale epoch: field values survive the round trip.
    let stale = remote.publish(Epoch::new(3), vec![txn("A", 2)]);
    assert_eq!(
        stale,
        Err(StoreError::StaleEpoch {
            epoch: 3,
            latest: 5
        })
    );

    // An application error does not poison the connection.
    remote.publish(Epoch::new(6), vec![txn("A", 2)]).unwrap();
    assert_eq!(remote.len(), 2);
}

/// The lost-response hazard: a publish whose response never arrives is
/// retried and answered `DuplicateTxn` although it committed. The client
/// disambiguates by reading the batch back, so re-publishing identical
/// bytes is idempotent — while a genuine conflict (same id, different
/// content) still errors.
#[test]
fn republishing_identical_batch_is_idempotent_but_conflicts_still_error() {
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind("127.0.0.1:0", backend).unwrap();
    let remote = RemoteStore::connect_with(server.local_addr(), fast_opts()).unwrap();

    let batch = vec![txn("A", 1), txn("A", 2)];
    remote.publish(Epoch::new(1), batch.clone()).unwrap();
    // Same bytes again — what a retry after a lost response looks like.
    remote.publish(Epoch::new(1), batch).unwrap();
    assert_eq!(remote.len(), 2, "nothing archived twice");

    // Same id, different content: a real conflict, surfaced as such.
    let conflicting = Transaction::new(
        TxnId::new(PeerId::new("A"), 1),
        Epoch::zero(),
        vec![Update::insert("R", tuple![99, 99])],
    );
    let err = remote.publish(Epoch::new(1), vec![conflicting]);
    assert!(matches!(err, Err(StoreError::DuplicateTxn(_))), "{err:?}");
    server.shutdown();
}

#[test]
fn payload_unavailability_flows_through_pages() {
    // A replicated backend with churn behind the server: the page's
    // unavailable positions arrive at the client exactly as they would
    // from a local store.
    let dht = Arc::new(ReplicatedStore::new(16, 1).unwrap());
    dht.publish(Epoch::new(1), vec![txn("A", 1), txn("A", 2)])
        .unwrap();
    let victim = dht.holders(&TxnId::new(PeerId::new("A"), 1)).unwrap()[0];
    dht.take_node_down(victim);
    let expected = dht
        .fetch_page(&FetchCursor::at_epoch(Epoch::zero()), 16)
        .unwrap();

    let server = PeerServer::bind("127.0.0.1:0", dht.clone()).unwrap();
    let remote = RemoteStore::connect_with(server.local_addr(), fast_opts()).unwrap();
    let page = remote
        .fetch_page(&FetchCursor::at_epoch(Epoch::zero()), 16)
        .unwrap();
    assert_eq!(page, expected, "byte-identical page over the wire");
    assert!(!page.unavailable.is_empty(), "churn visible remotely");
}

#[test]
fn dead_server_maps_to_unavailable() {
    // Bind then immediately shut down to get a port nothing listens on.
    let server = PeerServer::bind("127.0.0.1:0", Arc::new(InMemoryStore::new())).unwrap();
    let addr = server.local_addr();
    server.shutdown();

    let remote = RemoteStore::lazy_with(addr, fast_opts()).unwrap();
    let err = remote.fetch_page(&FetchCursor::at_epoch(Epoch::zero()), 8);
    assert!(
        matches!(err, Err(StoreError::Unavailable { .. })),
        "{err:?}"
    );
    let err = remote.publish(Epoch::new(1), vec![txn("A", 1)]);
    assert!(
        matches!(err, Err(StoreError::Unavailable { .. })),
        "{err:?}"
    );
    // Metadata probes degrade to "nothing observable", not panics.
    assert_eq!(remote.len(), 0);
    assert_eq!(remote.latest_epoch(), None);
    assert!(remote.net_stats().unavailable_mapped >= 2);
}

#[test]
fn client_survives_a_server_restart_on_the_same_port() {
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind("127.0.0.1:0", backend.clone()).unwrap();
    let addr = server.local_addr();
    let remote = RemoteStore::connect_with(addr, fast_opts()).unwrap();
    remote.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
    server.shutdown();

    // Down: transport failure surfaces as Unavailable.
    assert!(matches!(
        remote.publish(Epoch::new(2), vec![txn("A", 2)]),
        Err(StoreError::Unavailable { .. })
    ));

    // Restart on the same port with the same backend (the archive is the
    // durable thing; the endpoint is just a door).
    let server = PeerServer::bind(addr, backend).unwrap();
    remote.publish(Epoch::new(2), vec![txn("A", 2)]).unwrap();
    assert_eq!(remote.len(), 2);
    let net = remote.net_stats();
    assert!(net.transport_errors >= 1, "{net:?}");
    server.shutdown();
}

#[test]
fn concurrent_clients_share_one_archive() {
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind_with(
        "127.0.0.1:0",
        backend,
        ServerOptions {
            workers: 4,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for t in 0..4u64 {
        handles.push(std::thread::spawn(move || {
            let remote = RemoteStore::connect_with(addr, fast_opts()).unwrap();
            for i in 0..10u64 {
                remote
                    .publish(Epoch::new(1), vec![txn(&format!("P{t}"), i + 1)])
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let remote = RemoteStore::connect_with(addr, fast_opts()).unwrap();
    assert_eq!(remote.len(), 40, "every publish archived exactly once");
    let page = remote
        .fetch_page(&FetchCursor::at_epoch(Epoch::zero()), 64)
        .unwrap();
    assert_eq!(page.txns.len(), 40);
    assert!(page.next_cursor.is_none());
    server.shutdown();
}

#[test]
fn graceful_shutdown_finishes_in_flight_requests() {
    let backend = Arc::new(InMemoryStore::new());
    for _ in 0..3 {
        let server = PeerServer::bind_with(
            "127.0.0.1:0",
            backend.clone(),
            ServerOptions {
                workers: 2,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let remote = RemoteStore::connect_with(server.local_addr(), fast_opts()).unwrap();
        remote.publish(Epoch::new(1), vec![]).unwrap();
        // Shutdown must join quickly even with an idle pooled connection
        // open (the poll tick notices the flag, not a 60s idle timeout).
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "graceful shutdown stalled"
        );
    }
}

#[test]
fn v2_anti_entropy_exchange_over_loopback() {
    use orchestra_net::PullPage;
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind("127.0.0.1:0", backend).unwrap();
    let remote = RemoteStore::connect_with(server.local_addr(), fast_opts()).unwrap();
    assert_eq!(remote.negotiated_version(), 2);

    remote
        .publish(Epoch::new(1), vec![txn("A", 1), txn("B", 1)])
        .unwrap();
    remote.publish(Epoch::new(2), vec![txn("A", 2)]).unwrap();

    // The digest summarizes the archive without shipping payloads.
    let d = remote.digest().unwrap();
    assert_eq!(d.len, 3);
    assert_eq!(d.latest_epoch, Some(Epoch::new(2)));
    assert_eq!(d.source_hw("A"), 2);
    assert_eq!(d.source_hw("B"), 1);
    assert_eq!(d.relation_txns("A.R"), 2);
    assert_eq!(d.relation_txns("B.R"), 1);

    // Interest registration lands in the server's registry.
    remote.subscribe("alaska", vec!["A.R".to_string()]).unwrap();
    assert_eq!(server.subscribers()["alaska"], vec!["A.R".to_string()]);

    // Interest-filtered pull: B's positions come back as skipped ids in
    // scan order, so the puller's prefix bookkeeping stays exact.
    let page = remote
        .pull_pages(
            &FetchCursor::at_epoch(Epoch::zero()),
            16,
            &["A.R".to_string()],
            &[],
        )
        .unwrap();
    assert_eq!(page.txns.len(), 2);
    assert!(page.txns.iter().all(|t| t.id.peer.name() == "A"));
    assert_eq!(page.skipped, vec![TxnId::new(PeerId::new("B"), 1)]);
    assert!(page.unavailable.is_empty());
    assert!(page.next_cursor.is_none());

    // A have floor turns the puller's already-held prefix into skips too.
    let page = remote
        .pull_pages(
            &FetchCursor::at_epoch(Epoch::zero()),
            16,
            &[],
            &[("A".to_string(), 1)],
        )
        .unwrap();
    let shipped: Vec<_> = page.txns.iter().map(|t| t.id.clone()).collect();
    assert_eq!(
        shipped,
        vec![
            TxnId::new(PeerId::new("B"), 1),
            TxnId::new(PeerId::new("A"), 2)
        ]
    );
    assert_eq!(page.skipped, vec![TxnId::new(PeerId::new("A"), 1)]);

    // An empty scan window is an empty page, not an error.
    let empty = remote
        .pull_pages(&FetchCursor::after_epoch(Epoch::new(2)), 16, &[], &[])
        .unwrap();
    assert_eq!(empty, PullPage::default());

    // The per-message-type counters ride back on the v2 probe.
    let (len, _, _, counters) = remote.probe().unwrap();
    assert_eq!(len, 3);
    let c = counters.expect("v2 probe carries server counters");
    assert_eq!(c.digests_served, 1);
    assert_eq!(c.pull_pages, 3);
    assert_eq!(c.subscriptions, 1);
    server.shutdown();
}

/// The per-endpoint circuit breaker: consecutive exhausted operations
/// trip it open, open means fast-fail without touching the socket, and
/// a half-open probe after the cooldown closes it again once the server
/// is back.
#[test]
fn circuit_breaker_opens_fast_fails_and_recovers() {
    use orchestra_net::BreakerState;
    let _serial = breaker_serial();
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind("127.0.0.1:0", backend.clone()).unwrap();
    let addr = server.local_addr();
    server.shutdown();

    let opts = RemoteOptions {
        connect_timeout: Duration::from_millis(200),
        retries: 0,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(100),
        ..fast_opts()
    };
    let remote = RemoteStore::lazy_with(addr, opts).unwrap();

    // Two exhausted operations against the dead endpoint trip the
    // breaker...
    for _ in 0..2 {
        assert!(remote.fetch(&TxnId::new(PeerId::new("A"), 1)).is_err());
    }
    assert_eq!(remote.breaker_state(), BreakerState::Open);
    let connects_when_open = remote.net_stats().connects;

    // ...and while it cools down, calls fail without dialing.
    let err = remote.fetch(&TxnId::new(PeerId::new("A"), 1));
    assert!(
        matches!(err, Err(StoreError::Unavailable { .. })),
        "{err:?}"
    );
    let net = remote.net_stats();
    assert_eq!(net.breaker_opened, 1, "{net:?}");
    assert!(net.breaker_fast_fails >= 1, "{net:?}");
    assert_eq!(net.connects, connects_when_open, "open breaker dialed");

    // Server returns; after the cooldown the half-open probe succeeds
    // and the breaker closes.
    let server = PeerServer::bind(addr, backend.clone()).unwrap();
    backend.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    assert!(remote
        .fetch(&TxnId::new(PeerId::new("A"), 1))
        .unwrap()
        .is_some());
    assert_eq!(remote.breaker_state(), BreakerState::Closed);
    server.shutdown();
}

#[test]
fn retries_against_a_dead_endpoint_back_off() {
    let _serial = breaker_serial();
    let server = PeerServer::bind("127.0.0.1:0", Arc::new(InMemoryStore::new())).unwrap();
    let addr = server.local_addr();
    server.shutdown();

    let opts = RemoteOptions {
        connect_timeout: Duration::from_millis(200),
        retries: 2,
        backoff_base: Duration::from_millis(1),
        ..fast_opts()
    };
    let remote = RemoteStore::lazy_with(addr, opts).unwrap();
    assert!(remote.fetch(&TxnId::new(PeerId::new("A"), 1)).is_err());
    let net = remote.net_stats();
    assert_eq!(net.backoff_waits, 2, "one wait per retry attempt: {net:?}");
}

/// Injected wire corruption: a client failpoint flips one payload byte
/// after the checksum is computed; the server must reject the frame,
/// count it as corrupt (not a stall), and the client's retries recover.
#[test]
fn injected_corrupt_frames_are_counted_and_retried_through() {
    let backend = Arc::new(InMemoryStore::new());
    backend.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
    let server = PeerServer::bind("127.0.0.1:0", backend).unwrap();
    let remote = RemoteStore::connect_with(server.local_addr(), fast_opts()).unwrap();

    {
        let _fp = orchestra_fault::scoped("net.client.send=flip@1x2", 7);
        // Injection 1 corrupts the pooled-connection attempt, injection 2
        // corrupts the retry's HELLO; the second fresh dial goes clean.
        assert!(remote
            .fetch(&TxnId::new(PeerId::new("A"), 1))
            .unwrap()
            .is_some());
        assert_eq!(orchestra_fault::injected_total(), 2);
    }

    let (_, _, _, counters) = remote.probe().unwrap();
    let c = counters.expect("v2 probe carries server counters");
    assert_eq!(c.corrupt_frames, 2, "{c:?}");
    let stats = server.stats();
    assert_eq!(stats.corrupt_frames, 2, "{stats:?}");
    assert!(stats.protocol_errors >= 2, "{stats:?}");
    server.shutdown();
}

/// A frame that starts and then stalls past `read_timeout` closes the
/// connection and is counted as a timeout, distinct from corruption.
#[test]
fn stalled_mid_frame_connection_counts_as_timed_out() {
    use std::io::Write;
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind_with(
        "127.0.0.1:0",
        backend,
        ServerOptions {
            read_timeout: Duration::from_millis(100),
            ..ServerOptions::default()
        },
    )
    .unwrap();

    // One byte of a frame header, then silence.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&[0x07]).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = server.stats();
        if stats.timed_out_conns >= 1 {
            assert_eq!(stats.corrupt_frames, 0, "{stats:?}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stall never counted: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// An old (v1) client must never see undecodable bytes from a v2 server:
/// v2 opcodes on a v1-negotiated connection answer a clean `ERR`, the
/// connection keeps serving v1 traffic, and `PROBE_OK` keeps its exact
/// v1 byte layout (no trailing counters).
#[test]
fn v1_negotiated_connection_gets_clean_err_for_v2_opcodes() {
    use orchestra_net::{Request, Response};
    use orchestra_store::frame::{frame, FrameRead, FrameReader};
    use std::io::Write;

    fn raw_call(stream: &mut std::net::TcpStream, req: &Request) -> Response {
        stream.write_all(&frame(&req.encode())).unwrap();
        match FrameReader::new(&mut *stream, 0).next_frame().unwrap() {
            (_, FrameRead::Ok { payload, .. }) => Response::decode(&payload).unwrap(),
            (_, other) => panic!("no response frame: {other:?}"),
        }
    }

    let backend = Arc::new(InMemoryStore::new());
    backend.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
    let server = PeerServer::bind("127.0.0.1:0", backend).unwrap();
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    match raw_call(
        &mut raw,
        &Request::Hello {
            version: 1,
            trace: 0,
        },
    ) {
        Response::HelloOk { version } => assert_eq!(version, 1, "server downgrades to v1"),
        other => panic!("unexpected hello response: {other:?}"),
    }

    for req in [
        Request::Digest,
        Request::Subscribe {
            peer: "old".to_string(),
            interest: Vec::new(),
        },
        Request::PullPages {
            cursor: FetchCursor::at_epoch(Epoch::zero()),
            limit: 8,
            interest: Vec::new(),
            have: Vec::new(),
            trace: 0,
        },
    ] {
        match raw_call(&mut raw, &req) {
            Response::Err(StoreError::InvalidConfig(msg)) => {
                assert!(msg.contains("version 2"), "{msg}");
            }
            other => panic!("expected a clean ERR, got {other:?}"),
        }
    }

    // The connection was not poisoned, and the v1 probe body carries no
    // trailing counters a v1 decoder would reject.
    match raw_call(&mut raw, &Request::Probe) {
        Response::ProbeOk { len, server: c, .. } => {
            assert_eq!(len, 1);
            assert!(c.is_none(), "v1 connection got v2 probe bytes");
        }
        other => panic!("unexpected probe response: {other:?}"),
    }
    assert_eq!(server.stats().protocol_errors, 0, "no frame-level errors");
    server.shutdown();
}

#[test]
fn garbage_speaking_client_is_rejected_not_served() {
    use std::io::{Read, Write};
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind("127.0.0.1:0", backend).unwrap();
    // No HELLO, just bytes that happen to be a valid frame.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let bogus = orchestra_store::frame::frame(b"not a protocol message");
    raw.write_all(&bogus).unwrap();
    let mut buf = Vec::new();
    let _ = raw.read_to_end(&mut buf); // Server answers with ERR and closes.
    assert!(!buf.is_empty(), "server sent a rejection before closing");
    let stats = server.stats();
    assert!(stats.protocol_errors >= 1, "{stats:?}");
    server.shutdown();
}

/// Serializes the tests that trip circuit breakers: `net.breaker.*`
/// registry counters are process-global, so exact-delta assertions need
/// the incrementing tests to run one at a time.
fn breaker_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn registry_counter(name: &str) -> u64 {
    orchestra_obs::snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// `METRICS` over the wire is the same registry the process sees
/// locally, round-tripped faithfully by the codec.
#[test]
fn metrics_over_the_wire_match_in_process_snapshot() {
    let backend = Arc::new(InMemoryStore::new());
    let server = PeerServer::bind("127.0.0.1:0", backend).unwrap();
    let remote = RemoteStore::connect_with(server.local_addr(), fast_opts()).unwrap();
    remote.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();

    // A name only this test touches: wire and local must agree on it
    // exactly even while parallel tests mutate the rest of the registry.
    orchestra_obs::add_named("test.loopback.metrics_probe", 41);
    orchestra_obs::add_named("test.loopback.metrics_probe", 1);

    let wire = remote.metrics().unwrap();
    let local = orchestra_obs::snapshot_filtered("test.loopback.");
    let filtered: Vec<(String, u64)> = wire
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("test.loopback."))
        .cloned()
        .collect();
    assert_eq!(filtered, local.counters);
    assert_eq!(
        filtered,
        vec![("test.loopback.metrics_probe".to_string(), 42)]
    );

    // The shared names ride along, and arrive name-sorted like a local
    // snapshot.
    assert!(
        wire.counters
            .iter()
            .any(|(n, v)| n == "server.requests" && *v > 0),
        "wire snapshot misses server counters"
    );
    assert!(wire.counters.windows(2).all(|w| w[0].0 < w[1].0));
    server.shutdown();
}

/// Breaker transitions land in the process-wide registry, so they
/// survive a `RemoteStore` being dropped and rebuilt — the per-instance
/// `net_stats()` view resets, the registry must not — and a failed
/// half-open probe re-arms the cooldown without double-counting an
/// open.
#[test]
fn breaker_registry_counters_survive_reconnect_and_rearm() {
    use orchestra_net::BreakerState;
    let _serial = breaker_serial();
    let server = PeerServer::bind("127.0.0.1:0", Arc::new(InMemoryStore::new())).unwrap();
    let addr = server.local_addr();
    server.shutdown();

    let opts = RemoteOptions {
        connect_timeout: Duration::from_millis(200),
        retries: 0,
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_millis(50),
        ..fast_opts()
    };
    let opened_before = registry_counter("net.breaker.opened");

    let remote = RemoteStore::lazy_with(addr, opts).unwrap();
    assert!(remote.fetch(&TxnId::new(PeerId::new("A"), 1)).is_err());
    assert_eq!(remote.breaker_state(), BreakerState::Open);
    assert_eq!(remote.net_stats().breaker_opened, 1);

    // Half-open probe against the still-dead endpoint: the failure
    // re-arms the cooldown but the breaker never closed in between, so
    // neither the instance view nor the registry counts a second open.
    std::thread::sleep(Duration::from_millis(80));
    assert!(remote.fetch(&TxnId::new(PeerId::new("A"), 1)).is_err());
    assert_eq!(remote.breaker_state(), BreakerState::Open);
    let net = remote.net_stats();
    assert_eq!(net.breaker_opened, 1, "half-open re-arm double-counted");
    assert_eq!(registry_counter("net.breaker.opened"), opened_before + 1);

    // The pool is rebuilt — exactly what happens when a caller replaces
    // a wedged client. The fresh instance's view starts at zero…
    drop(remote);
    let remote = RemoteStore::lazy_with(addr, opts).unwrap();
    assert_eq!(remote.net_stats().breaker_opened, 0);
    assert!(remote.fetch(&TxnId::new(PeerId::new("A"), 1)).is_err());
    assert_eq!(remote.net_stats().breaker_opened, 1);
    // …while the registry remembers this is the process's second open.
    assert_eq!(registry_counter("net.breaker.opened"), opened_before + 2);
}

/// A v2 request carrying the caller's trace id stitches the server's
/// spans into the caller's trace — across a real socket, onto a
/// different thread.
#[test]
fn propagated_trace_stitches_server_spans_into_client_trace() {
    let backend = Arc::new(InMemoryStore::new());
    backend.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
    let server = PeerServer::bind("127.0.0.1:0", backend).unwrap();
    let remote = RemoteStore::connect_with(server.local_addr(), fast_opts()).unwrap();

    let trace = {
        let guard = orchestra_obs::trace_mint();
        let _client_span = orchestra_obs::span!("test.loopback.clientside");
        remote
            .pull_pages(&FetchCursor::at_epoch(Epoch::zero()), 16, &[], &[])
            .unwrap();
        guard.id
    };

    let snap = orchestra_obs::snapshot();
    let client = snap
        .spans
        .iter()
        .find(|s| s.trace == trace && s.name == "test.loopback.clientside")
        .expect("client span recorded under the minted trace");
    let served = snap
        .spans
        .iter()
        .find(|s| s.trace == trace && s.name == "server.pull_pages")
        .expect("server span adopted the trace that rode the wire");
    assert_ne!(served.thread, client.thread, "pull served in-thread?");
    server.shutdown();
}
