//! Engine-semantics parity properties for the interned join pipeline.
//!
//! The interned-value refactor must be **observationally invisible**: on
//! randomized datalog programs and fact sets, the engine's fixpoint,
//! provenance, and deletion semantics must coincide with
//!
//! * a naive model-theoretic evaluator working directly on `Value`
//!   tuples (no interning, no indexes, no plans) — the "seed semantics";
//! * itself under different insertion orders (incremental vs batch),
//!   which also exercises plan-cache reuse across delta positions;
//! * both deletion algorithms (provenance-based and DRed) against full
//!   recomputation from the surviving base facts;
//! * itself under different **thread counts** (1 vs 2 vs 8) — the
//!   shard-parallel evaluation must replay byte-identically: same
//!   provenance-graph edges and recording order, same `NodeId`
//!   assignment, same change-log order, same stats — including
//!   Skolem-heavy programs (labeled-null invention splits between the
//!   workers' read-only fast path and the merge's sequential pass) and
//!   DRed deletion replay over the partitioned provenance graph.

use orchestra_datalog::{Atom, Term};
use orchestra_datalog::{DeletionAlgorithm, Engine, EvalOptions, Rule};
use orchestra_relational::{CmpOp, DatabaseSchema, RelationSchema, Tuple, Value, ValueType};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

const RELS: [(&str, usize); 4] = [("r0", 1), ("r1", 2), ("r2", 2), ("r3", 1)];
const VALS: [&str; 4] = ["a", "b", "c", "d"];
const VARS: [&str; 3] = ["x", "y", "z"];

fn schema() -> DatabaseSchema {
    let mut db = DatabaseSchema::new("parity");
    for (name, arity) in RELS {
        let cols: Vec<(String, ValueType)> = (0..arity)
            .map(|i| (format!("c{i}"), ValueType::Str))
            .collect();
        let refs: Vec<(&str, ValueType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        db.add_relation(RelationSchema::from_parts(name, &refs).unwrap())
            .unwrap();
    }
    db
}

/// A random skolem-free program: every head variable occurs in the body,
/// so the rules are safe; bodies have 1–2 atoms and an occasional filter.
fn random_program(rng: &mut StdRng, n_rules: usize) -> Vec<Rule> {
    let mut rules = Vec::new();
    for ri in 0..n_rules {
        let n_body = rng.random_range(1..3usize);
        let mut body = Vec::new();
        let mut body_vars: Vec<&str> = Vec::new();
        for _ in 0..n_body {
            let (rel, arity) = RELS[rng.random_range(0..RELS.len())];
            let terms: Vec<Term> = (0..arity)
                .map(|_| {
                    if rng.random_bool(0.8) {
                        let v = VARS[rng.random_range(0..VARS.len())];
                        body_vars.push(v);
                        Term::var(v)
                    } else {
                        Term::val(VALS[rng.random_range(0..VALS.len())])
                    }
                })
                .collect();
            body.push(Atom::new(rel, terms));
        }
        let (head_rel, head_arity) = RELS[rng.random_range(0..RELS.len())];
        let head_terms: Vec<Term> = (0..head_arity)
            .map(|_| {
                if !body_vars.is_empty() && rng.random_bool(0.8) {
                    Term::var(body_vars[rng.random_range(0..body_vars.len())])
                } else {
                    Term::val(VALS[rng.random_range(0..VALS.len())])
                }
            })
            .collect();
        let filters = if !body_vars.is_empty() && rng.random_bool(0.3) {
            let v = body_vars[rng.random_range(0..body_vars.len())];
            let c = VALS[rng.random_range(0..VALS.len())];
            let op = match rng.random_range(0..3u32) {
                0 => CmpOp::Ne,
                1 => CmpOp::Lt,
                _ => CmpOp::Ge,
            };
            vec![orchestra_datalog::Filter::new(
                Term::var(v),
                op,
                Term::val(c),
            )]
        } else {
            vec![]
        };
        rules.push(
            Rule::new(
                format!("m{ri}"),
                Atom::new(head_rel, head_terms),
                body,
                filters,
            )
            .unwrap(),
        );
    }
    rules
}

/// Random base facts (relation name, tuple) over the shared value pool.
fn random_facts(rng: &mut StdRng, n: usize) -> Vec<(&'static str, Tuple)> {
    (0..n)
        .map(|_| {
            let (rel, arity) = RELS[rng.random_range(0..RELS.len())];
            let t: Tuple = (0..arity)
                .map(|_| Value::str(VALS[rng.random_range(0..VALS.len())]))
                .collect();
            (rel, t)
        })
        .collect()
}

type Database = BTreeMap<&'static str, BTreeSet<Tuple>>;

/// The reference evaluator: naive bottom-up fixpoint directly on `Value`
/// tuples. No interning, no indexes, no plans — just the definition.
fn naive_fixpoint(rules: &[Rule], base: &[(&'static str, Tuple)]) -> Database {
    let mut db: Database = RELS.iter().map(|(r, _)| (*r, BTreeSet::new())).collect();
    for (rel, t) in base {
        db.get_mut(rel).unwrap().insert(t.clone());
    }
    loop {
        let mut fresh: Vec<(String, Tuple)> = Vec::new();
        for rule in rules {
            let mut bindings: HashMap<Arc<str>, Value> = HashMap::new();
            naive_join(rule, 0, &db, &mut bindings, &mut fresh);
        }
        let mut changed = false;
        for (rel, t) in fresh {
            let set = db
                .iter_mut()
                .find(|(r, _)| **r == rel.as_str())
                .map(|(_, s)| s)
                .unwrap();
            if set.insert(t) {
                changed = true;
            }
        }
        if !changed {
            return db;
        }
    }
}

fn term_value(t: &Term, bindings: &HashMap<Arc<str>, Value>) -> Value {
    match t {
        Term::Var(v) => bindings[v].clone(),
        Term::Const(c) => c.clone(),
        Term::Skolem { .. } => unreachable!("skolem-free programs"),
    }
}

fn naive_join(
    rule: &Rule,
    depth: usize,
    db: &Database,
    bindings: &mut HashMap<Arc<str>, Value>,
    out: &mut Vec<(String, Tuple)>,
) {
    if depth == rule.body.len() {
        for f in &rule.filters {
            let l = term_value(&f.left, bindings);
            let r = term_value(&f.right, bindings);
            if !f.op.apply(&l, &r) {
                return;
            }
        }
        let head: Tuple = rule
            .head
            .terms
            .iter()
            .map(|t| term_value(t, bindings))
            .collect();
        out.push((rule.head.relation.to_string(), head));
        return;
    }
    let atom = &rule.body[depth];
    let tuples = &db[&*atom.relation];
    'tuples: for t in tuples {
        if t.arity() != atom.terms.len() {
            continue;
        }
        let mut bound_here: Vec<Arc<str>> = Vec::new();
        for (i, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if &t[i] != c {
                        for v in &bound_here {
                            bindings.remove(v);
                        }
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match bindings.get(v) {
                    Some(bound) => {
                        if bound != &t[i] {
                            for v in &bound_here {
                                bindings.remove(v);
                            }
                            continue 'tuples;
                        }
                    }
                    None => {
                        bindings.insert(Arc::clone(v), t[i].clone());
                        bound_here.push(Arc::clone(v));
                    }
                },
                Term::Skolem { .. } => unreachable!("skolem-free programs"),
            }
        }
        naive_join(rule, depth + 1, db, bindings, out);
        for v in &bound_here {
            bindings.remove(v);
        }
    }
}

fn engine_database(e: &Engine) -> Database {
    // The borrowing per-shard scan, not `relation_tuples`: exercises the
    // same read path the reconcile/bench layers use.
    RELS.iter()
        .map(|(r, _)| (*r, e.scan_resolved(r).collect()))
        .collect()
}

type Observables = (
    Vec<orchestra_datalog::Change>,
    Vec<orchestra_datalog::Derivation>,
    Vec<(orchestra_datalog::NodeId, String, Tuple)>,
    orchestra_datalog::EngineStats,
    Database,
);

/// Everything the thread-count parity properties compare byte-for-byte:
/// the drained change log (with node ids), the full derivation list in
/// recording order, every interned node in the deterministic global id
/// order (shard-major, then per-shard assignment order), the stats, and
/// the fixpoint.
fn observables(e: &mut Engine) -> Observables {
    let changes = e.drain_changes();
    let derivs: Vec<_> = e.graph().derivations().cloned().collect();
    let nodes: Vec<_> = e
        .nodes()
        .ids()
        .map(|id| {
            let (rel, t) = e.resolve_node(id).unwrap();
            (id, rel.to_string(), t)
        })
        .collect();
    (changes, derivs, nodes, e.stats(), engine_database(e))
}

/// A random **Skolem-heavy** two-tier program, acyclic by construction so
/// labeled-null invention terminates: tier A maps `r0`/`r1` into `r2`
/// heads, tier B maps `r2` into `r3` heads, and every head mixes body
/// variables with Skolem terms over them. Shared argument variables make
/// distinct firings re-invent the same null — exercising both the
/// workers' read-only fast path and the merge's sequential first-invention
/// pass over the partitioned interner.
fn random_skolem_program(rng: &mut StdRng, n_rules: usize) -> Vec<Rule> {
    let mut rules = Vec::new();
    for ri in 0..n_rules {
        let tier_b = rng.random_bool(0.4);
        let (brel, barity) = if tier_b {
            ("r2", 2)
        } else {
            [("r0", 1), ("r1", 2)][rng.random_range(0..2usize)]
        };
        let body_vars: Vec<&str> = (0..barity).map(|i| VARS[i % VARS.len()]).collect();
        let body = vec![Atom::new(
            brel,
            body_vars.iter().map(Term::var).collect::<Vec<_>>(),
        )];
        let (hrel, harity) = if tier_b { ("r3", 1) } else { ("r2", 2) };
        let head_terms: Vec<Term> = (0..harity)
            .map(|ci| {
                if rng.random_bool(0.5) {
                    let args: Vec<Term> = if rng.random_bool(0.8) {
                        vec![Term::var(body_vars[rng.random_range(0..body_vars.len())])]
                    } else {
                        vec![]
                    };
                    Term::skolem(format!("f{ri}_{ci}"), args)
                } else {
                    Term::var(body_vars[rng.random_range(0..body_vars.len())])
                }
            })
            .collect();
        rules
            .push(Rule::new(format!("sk{ri}"), Atom::new(hrel, head_terms), body, vec![]).unwrap());
    }
    rules
}

/// Random base facts restricted to the Skolem program's tier-A source
/// relations.
fn random_source_facts(rng: &mut StdRng, n: usize) -> Vec<(&'static str, Tuple)> {
    (0..n)
        .map(|_| {
            let (rel, arity) = [("r0", 1), ("r1", 2)][rng.random_range(0..2usize)];
            let t: Tuple = (0..arity)
                .map(|_| Value::str(VALS[rng.random_range(0..VALS.len())]))
                .collect();
            (rel, t)
        })
        .collect()
}

/// Alive tuples with their first-proof lineages, resolved back to
/// `(relation, tuple)` form so they are comparable across engines with
/// different interner/node orderings.
fn resolved_lineages(e: &Engine) -> BTreeMap<(String, Tuple), BTreeSet<(String, Tuple)>> {
    let mut out = BTreeMap::new();
    for (rel, _) in RELS {
        // `scan` surfaces each tuple's node directly — no per-tuple
        // `node_id` lookup needed.
        for (st, node) in e.scan(rel) {
            let t = e.interner().resolve_tuple(st);
            let lineage = e
                .graph()
                .lineage(node)
                .into_iter()
                .map(|b| {
                    let (r, bt) = e.resolve_node(b).expect("resolvable");
                    (r.to_string(), bt)
                })
                .collect();
            out.insert((rel.to_string(), t), lineage);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interned evaluation computes exactly the naive model-theoretic
    /// fixpoint of the program.
    #[test]
    fn interned_fixpoint_matches_naive_semantics(
        seed in 0u64..1_000_000,
        n_rules in 1usize..5,
        n_facts in 0usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rules = random_program(&mut rng, n_rules);
        let facts = random_facts(&mut rng, n_facts);

        let mut engine = Engine::new(schema(), rules.clone()).unwrap();
        for (rel, t) in &facts {
            engine.insert_base(rel, t.clone()).unwrap();
        }
        engine.propagate().unwrap();

        let reference = naive_fixpoint(&rules, &facts);
        prop_assert_eq!(engine_database(&engine), reference);
    }

    /// Insertion order is irrelevant: one-at-a-time incremental
    /// propagation reaches the same fixpoint, the same number of
    /// derivation records, and the same per-tuple lineages as one batch
    /// propagation (node ids differ; everything is compared resolved).
    #[test]
    fn incremental_equals_batch_including_provenance(
        seed in 0u64..1_000_000,
        n_rules in 1usize..5,
        n_facts in 0usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rules = random_program(&mut rng, n_rules);
        let facts = random_facts(&mut rng, n_facts);

        let mut inc = Engine::new(schema(), rules.clone()).unwrap();
        for (rel, t) in &facts {
            inc.insert_base(rel, t.clone()).unwrap();
            inc.propagate().unwrap();
        }
        let mut batch = Engine::new(schema(), rules).unwrap();
        for (rel, t) in &facts {
            batch.insert_base(rel, t.clone()).unwrap();
        }
        batch.propagate().unwrap();

        prop_assert_eq!(engine_database(&inc), engine_database(&batch));
        prop_assert_eq!(resolved_lineages(&inc), resolved_lineages(&batch));
    }

    /// Thread-count parity: a random program evaluated over a random
    /// base-fact interleaving (batched propagates, so rounds are big
    /// enough to shard) replays **identically** at 1, 2, and 8 threads —
    /// same provenance-graph edges in the same recording order, same
    /// `NodeId` assignment, same `drain_changes` order, same stats.
    /// The parallel dispatch threshold is forced to 0 so every round
    /// actually takes the worker-pool path.
    #[test]
    fn thread_count_is_observationally_invisible(
        seed in 0u64..1_000_000,
        n_rules in 1usize..5,
        n_facts in 0usize..30,
        n_batches in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rules = random_program(&mut rng, n_rules);
        let facts = random_facts(&mut rng, n_facts);
        // Random deletion victims interleaved after the last batch.
        let victims: Vec<(&'static str, Tuple)> = facts
            .iter()
            .filter(|_| rng.random_range(0..100u32) < 25)
            .cloned()
            .collect();

        let run = |threads: usize| {
            let opts = EvalOptions {
                threads,
                shards: 8,
                parallel_threshold: 0,
            };
            let mut e = Engine::with_options(schema(), rules.clone(), true, opts).unwrap();
            // Same interleaving for every thread count: insert in
            // `n_batches` chunks with a propagate after each.
            let chunk = facts.len().max(1).div_ceil(n_batches);
            for batch in facts.chunks(chunk) {
                for (rel, t) in batch {
                    e.insert_base(rel, t.clone()).unwrap();
                }
                e.propagate().unwrap();
            }
            for (rel, t) in &victims {
                e.remove_base(rel, t, DeletionAlgorithm::ProvenanceBased)
                    .unwrap();
            }
            observables(&mut e)
        };

        let base = run(1);
        for threads in [2usize, 8] {
            let got = run(threads);
            prop_assert_eq!(&got.0, &base.0, "change order @ {} threads", threads);
            prop_assert_eq!(&got.1, &base.1, "derivations @ {} threads", threads);
            prop_assert_eq!(&got.2, &base.2, "node ids @ {} threads", threads);
            prop_assert_eq!(&got.3, &base.3, "stats @ {} threads", threads);
            prop_assert_eq!(&got.4, &base.4, "fixpoint @ {} threads", threads);
        }
    }

    /// Skolem-heavy thread-count parity over the partitioned provgraph:
    /// labeled-null invention (first occurrence on the merge's sequential
    /// pass, repeats on the workers' read-only fast path), the null-typed
    /// node ids, the derivation lineages through null tuples, and a final
    /// DRed deletion wave all replay **byte-identically** at 1, 2, and 8
    /// threads.
    #[test]
    fn skolem_heavy_replay_is_thread_invariant(
        seed in 0u64..1_000_000,
        n_rules in 1usize..6,
        n_facts in 0usize..30,
        n_batches in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rules = random_skolem_program(&mut rng, n_rules);
        let facts = random_source_facts(&mut rng, n_facts);
        let victims: Vec<(&'static str, Tuple)> = facts
            .iter()
            .filter(|_| rng.random_range(0..100u32) < 25)
            .cloned()
            .collect();

        let run = |threads: usize| {
            let opts = EvalOptions {
                threads,
                shards: 8,
                parallel_threshold: 0,
            };
            let mut e = Engine::with_options(schema(), rules.clone(), true, opts).unwrap();
            let chunk = facts.len().max(1).div_ceil(n_batches);
            for batch in facts.chunks(chunk) {
                for (rel, t) in batch {
                    e.insert_base(rel, t.clone()).unwrap();
                }
                e.propagate().unwrap();
            }
            for (rel, t) in &victims {
                e.remove_base(rel, t, DeletionAlgorithm::DRed).unwrap();
            }
            observables(&mut e)
        };

        let base = run(1);
        for threads in [2usize, 8] {
            let got = run(threads);
            prop_assert_eq!(&got.0, &base.0, "change order @ {} threads", threads);
            prop_assert_eq!(&got.1, &base.1, "derivations @ {} threads", threads);
            prop_assert_eq!(&got.2, &base.2, "node ids @ {} threads", threads);
            prop_assert_eq!(&got.3, &base.3, "stats @ {} threads", threads);
            prop_assert_eq!(&got.4, &base.4, "fixpoint @ {} threads", threads);
        }
    }

    /// DRed deletion replay parity: over random recursive programs, the
    /// over-delete / re-derive sequence — including its `Removed`
    /// change-log order against the partitioned provgraph — replays
    /// byte-identically at 1, 2, and 8 threads.
    #[test]
    fn dred_deletion_replays_identically_across_threads(
        seed in 0u64..1_000_000,
        n_rules in 1usize..5,
        n_facts in 1usize..24,
        del_pct in 0u32..101,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rules = random_program(&mut rng, n_rules);
        let facts = random_facts(&mut rng, n_facts);
        let victims: Vec<(&'static str, Tuple)> = {
            let uniq: BTreeSet<(&'static str, Tuple)> = facts
                .iter()
                .filter(|_| rng.random_range(0..100u32) < del_pct)
                .cloned()
                .collect();
            uniq.into_iter().collect()
        };

        let run = |threads: usize| {
            let opts = EvalOptions {
                threads,
                shards: 8,
                parallel_threshold: 0,
            };
            let mut e = Engine::with_options(schema(), rules.clone(), true, opts).unwrap();
            for (rel, t) in &facts {
                e.insert_base(rel, t.clone()).unwrap();
            }
            e.propagate().unwrap();
            for (rel, t) in &victims {
                e.remove_base(rel, t, DeletionAlgorithm::DRed).unwrap();
            }
            observables(&mut e)
        };

        let base = run(1);
        for threads in [2usize, 8] {
            let got = run(threads);
            prop_assert_eq!(&got.0, &base.0, "change order @ {} threads", threads);
            prop_assert_eq!(&got.1, &base.1, "derivations @ {} threads", threads);
            prop_assert_eq!(&got.2, &base.2, "node ids @ {} threads", threads);
            prop_assert_eq!(&got.3, &base.3, "stats @ {} threads", threads);
            prop_assert_eq!(&got.4, &base.4, "fixpoint @ {} threads", threads);
        }
    }

    /// Both deletion-propagation algorithms agree with each other and
    /// with full recomputation from the surviving base facts — including
    /// well-founded handling of derivation cycles.
    #[test]
    fn deletion_algorithms_match_recomputation(
        seed in 0u64..1_000_000,
        n_rules in 1usize..5,
        n_facts in 1usize..24,
        del_pct in 0u32..101,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rules = random_program(&mut rng, n_rules);
        let facts = random_facts(&mut rng, n_facts);
        // Distinct victims (remove_base is idempotent per base fact, but
        // duplicate victims would also be no-ops on the reference side).
        let victims: Vec<(&'static str, Tuple)> = {
            let uniq: BTreeSet<(&'static str, Tuple)> = facts
                .iter()
                .filter(|_| rng.random_range(0..100u32) < del_pct)
                .cloned()
                .collect();
            uniq.into_iter().collect()
        };
        let survivors: Vec<(&'static str, Tuple)> = facts
            .iter()
            .filter(|f| !victims.contains(f))
            .cloned()
            .collect();

        let run = |algo: DeletionAlgorithm| {
            let mut e = Engine::new(schema(), rules.clone()).unwrap();
            for (rel, t) in &facts {
                e.insert_base(rel, t.clone()).unwrap();
            }
            e.propagate().unwrap();
            for (rel, t) in &victims {
                e.remove_base(rel, t, algo).unwrap();
            }
            engine_database(&e)
        };
        let dred = run(DeletionAlgorithm::DRed);
        let prov = run(DeletionAlgorithm::ProvenanceBased);
        let reference = naive_fixpoint(&rules, &survivors);
        prop_assert_eq!(&dred, &reference, "DRed vs recomputation");
        prop_assert_eq!(&prov, &reference, "provenance-based vs recomputation");
    }
}

#[test]
#[ignore]
fn hunt_deletion_mismatch() {
    for seed in 0u64..4000 {
        for n_rules in 1usize..5 {
            for n_facts in [4usize, 8, 12] {
                let mut rng = StdRng::seed_from_u64(seed);
                let rules = random_program(&mut rng, n_rules);
                let facts = random_facts(&mut rng, n_facts);
                let victims: Vec<(&'static str, Tuple)> = {
                    let uniq: BTreeSet<(&'static str, Tuple)> = facts
                        .iter()
                        .filter(|_| rng.random_range(0..100u32) < 50)
                        .cloned()
                        .collect();
                    uniq.into_iter().collect()
                };
                let survivors: Vec<(&'static str, Tuple)> = facts
                    .iter()
                    .filter(|f| !victims.contains(f))
                    .cloned()
                    .collect();
                let run = |algo: DeletionAlgorithm| {
                    let mut e = Engine::new(schema(), rules.clone()).unwrap();
                    for (rel, t) in &facts {
                        e.insert_base(rel, t.clone()).unwrap();
                    }
                    e.propagate().unwrap();
                    for (rel, t) in &victims {
                        e.remove_base(rel, t, algo).unwrap();
                    }
                    engine_database(&e)
                };
                let dred = run(DeletionAlgorithm::DRed);
                let prov = run(DeletionAlgorithm::ProvenanceBased);
                let reference = naive_fixpoint(&rules, &survivors);
                if dred != reference || prov != reference {
                    println!("MISMATCH seed={seed} n_rules={n_rules} n_facts={n_facts}");
                    for r in &rules {
                        println!("  rule: {r}");
                    }
                    println!("  facts: {facts:?}");
                    println!("  victims: {victims:?}");
                    println!("  dred:      {dred:?}");
                    println!("  prov:      {prov:?}");
                    println!("  reference: {reference:?}");
                    panic!("found");
                }
            }
        }
    }
    println!("no mismatch found");
}
