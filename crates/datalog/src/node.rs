//! Interning `(relation, tuple)` pairs into dense, shard-partitioned
//! node ids.
//!
//! Every tuple the engine ever sees — base (published by a peer) or derived
//! (produced by a mapping) — gets one [`NodeId`]. Node ids are the
//! variables of provenance polynomials and the vertices of the provenance
//! graph, so keeping them dense `u32`s keeps those structures small.
//!
//! Since the partitioned-merge refactor a node id is a **(shard, local)**
//! pair packed into one `u32`: the high [`NodeId::SHARD_BITS`] bits carry
//! the shard that owns the node (the same content-based shard the tuple
//! routes to in its relation's [`ShardedRel`]), the low bits carry a dense
//! per-shard sequence number. Each shard assigns local ids independently,
//! which is what lets the engine's merge phase intern nodes on every
//! worker concurrently with **no** cross-shard coordination — and because
//! shard routing is a pure function of tuple content, the id every node
//! ends up with is independent of thread count.
//!
//! The **global ordering rule** is the derived `Ord` on the packed word:
//! shard-major, then per-shard assignment order. Everything downstream
//! that sorts nodes (deletion replay, lineage rendering) inherits
//! determinism from this rule.
//!
//! Since the interned-value refactor the table keys on the engine's
//! *symbol* representation: relations are dense [`RelId`]s and tuples are
//! [`SymTuple`]s, so interning a node is one integer-keyed hash probe —
//! no string hashing, no structural tuple walks. Translating back to
//! names and [`Value`](orchestra_relational::Value)s is the engine's job
//! (it owns the
//! [`ValueInterner`](orchestra_relational::ValueInterner)).
//!
//! [`ShardedRel`]: orchestra_relational::ShardedRel

use orchestra_relational::SymTuple;
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of a relation within one engine (index into the
/// engine's relation table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of an interned `(relation, tuple)` pair: shard in the high
/// bits, dense per-shard sequence number in the low bits (see module
/// docs). The derived `Ord` on the packed word — shard-major, then
/// assignment order — is the engine's global node ordering rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// High bits of the packed word reserved for the owning shard.
    pub const SHARD_BITS: u32 = 8;
    /// Maximum shard count the packed representation supports; the
    /// engine clamps its shard option to this.
    pub const MAX_SHARDS: usize = 1 << Self::SHARD_BITS;
    /// Low bits carrying the per-shard local index (~16.7M nodes/shard).
    pub const LOCAL_BITS: u32 = 32 - Self::SHARD_BITS;
    const LOCAL_MASK: u32 = (1 << Self::LOCAL_BITS) - 1;

    /// Pack a `(shard, local)` pair.
    #[inline]
    pub fn new(shard: usize, local: u32) -> NodeId {
        debug_assert!(shard < Self::MAX_SHARDS);
        debug_assert!(local <= Self::LOCAL_MASK);
        NodeId(((shard as u32) << Self::LOCAL_BITS) | local)
    }

    /// The shard that owns this node.
    #[inline]
    pub fn shard(self) -> usize {
        (self.0 >> Self::LOCAL_BITS) as usize
    }

    /// The dense index within the owning shard.
    #[inline]
    pub fn local(self) -> usize {
        (self.0 & Self::LOCAL_MASK) as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Shard 0 keeps the historical flat rendering (single-shard
        // engines and hand-built graphs print `n0`, `n1`, …); other
        // shards make the partition visible.
        if self.shard() == 0 {
            write!(f, "n{}", self.local())
        } else {
            write!(f, "n{}.{}", self.shard(), self.local())
        }
    }
}

/// One shard of the interning table: its own dense id sequence and its
/// own per-relation probe maps. Shards intern independently — handing
/// one `&mut NodeShard` to each merge sink is race-free by construction.
#[derive(Debug, Clone)]
pub struct NodeShard {
    /// This shard's index, baked into every id it assigns.
    shard: u32,
    /// Local index → pair, in assignment order.
    by_id: Vec<(RelId, SymTuple)>,
    /// Indexed by `RelId`; grown on demand.
    by_rel: Vec<HashMap<SymTuple, NodeId>>,
}

impl NodeShard {
    fn new(shard: u32) -> NodeShard {
        NodeShard {
            shard,
            by_id: Vec::new(),
            by_rel: Vec::new(),
        }
    }

    /// Intern a pair, returning its id (existing or fresh). The caller
    /// has already routed the tuple to this shard.
    pub fn intern(&mut self, rel: RelId, tuple: &SymTuple) -> NodeId {
        let ri = rel.index();
        if self.by_rel.len() <= ri {
            self.by_rel.resize_with(ri + 1, HashMap::new);
        }
        if let Some(&id) = self.by_rel[ri].get(tuple) {
            return id;
        }
        let local = self.by_id.len();
        // 2^24 nodes per shard (~16.7M, ~4B per engine across 256
        // shards) is an accepted engine limit.
        assert!(local <= NodeId::LOCAL_MASK as usize, "node shard overflow");
        let id = NodeId::new(self.shard as usize, local as u32);
        self.by_id.push((rel, tuple.clone()));
        self.by_rel[ri].insert(tuple.clone(), id);
        id
    }

    /// Look up an existing id without interning.
    #[inline]
    pub fn get(&self, rel: RelId, tuple: &SymTuple) -> Option<NodeId> {
        self.by_rel.get(rel.index())?.get(tuple).copied()
    }

    /// Number of nodes interned by this shard.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True iff this shard interned nothing.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

/// The interning table: `(RelId, SymTuple)` → [`NodeId`], partitioned by
/// the caller-supplied shard (the engine routes with the tuple's
/// relation-level [`shard_of`](orchestra_relational::ShardedRel::shard_of),
/// so a node's shard is a pure function of tuple content). A fresh table
/// has one shard, matching the historical flat id space; the engine grows
/// it to its configured shard count up front.
#[derive(Debug, Clone)]
pub struct NodeTable {
    shards: Vec<NodeShard>,
}

impl Default for NodeTable {
    fn default() -> Self {
        NodeTable {
            shards: vec![NodeShard::new(0)],
        }
    }
}

impl NodeTable {
    /// An empty single-shard table.
    pub fn new() -> Self {
        NodeTable::default()
    }

    /// An empty table with `shards` partitions (clamped to
    /// [`NodeId::MAX_SHARDS`]).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.clamp(1, NodeId::MAX_SHARDS);
        NodeTable {
            shards: (0..shards).map(|s| NodeShard::new(s as u32)).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Intern a pair in `shard`, returning its id (existing or fresh).
    #[inline]
    pub fn intern(&mut self, shard: usize, rel: RelId, tuple: &SymTuple) -> NodeId {
        self.shards[shard].intern(rel, tuple)
    }

    /// Look up an existing id without interning. `shard` must be the
    /// tuple's content-routed shard (a wrong shard simply misses).
    #[inline]
    pub fn get(&self, shard: usize, rel: RelId, tuple: &SymTuple) -> Option<NodeId> {
        self.shards.get(shard)?.get(rel, tuple)
    }

    /// The `(relation, tuple)` behind an id.
    pub fn resolve(&self, id: NodeId) -> Option<(RelId, &SymTuple)> {
        self.shards
            .get(id.shard())?
            .by_id
            .get(id.local())
            .map(|(r, t)| (*r, t))
    }

    /// Total interned nodes across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(NodeShard::len).sum()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(NodeShard::is_empty)
    }

    /// Every interned id, in the deterministic global order (shard-major,
    /// then per-shard assignment order) — the same order `Ord` on
    /// [`NodeId`] induces within one table.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.shards.iter().flat_map(|sh| {
            (0..sh.by_id.len()).map(move |local| NodeId::new(sh.shard as usize, local as u32))
        })
    }

    /// One disjoint mutable sub-table per shard, in shard order — the
    /// merge phase hands sink `s` the writer for shard `s` so every sink
    /// interns nodes without coordination.
    pub fn shards_mut(&mut self) -> Vec<&mut NodeShard> {
        self.shards.iter_mut().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::{tuple, ValueInterner};

    #[test]
    fn intern_is_idempotent() {
        let mut i = ValueInterner::new();
        let mut t = NodeTable::new();
        let st = i.intern_tuple(&tuple![1, 2]);
        let a = t.intern(0, RelId(0), &st);
        let b = t.intern(0, RelId(0), &st);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_pairs_get_distinct_ids() {
        let mut i = ValueInterner::new();
        let mut t = NodeTable::new();
        let one = i.intern_tuple(&tuple![1]);
        let two = i.intern_tuple(&tuple![2]);
        let a = t.intern(0, RelId(0), &one);
        let b = t.intern(0, RelId(1), &one);
        let c = t.intern(0, RelId(0), &two);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = ValueInterner::new();
        let mut t = NodeTable::new();
        let st = i.intern_tuple(&tuple![1, "x"]);
        let id = t.intern(0, RelId(3), &st);
        let (rel, tup) = t.resolve(id).unwrap();
        assert_eq!(rel, RelId(3));
        assert_eq!(tup, &st);
        assert!(t.resolve(NodeId(99)).is_none());
    }

    #[test]
    fn get_without_interning() {
        let mut i = ValueInterner::new();
        let mut t = NodeTable::new();
        let st = i.intern_tuple(&tuple![1]);
        assert_eq!(t.get(0, RelId(0), &st), None);
        let id = t.intern(0, RelId(0), &st);
        assert_eq!(t.get(0, RelId(0), &st), Some(id));
        assert_eq!(t.get(0, RelId(7), &st), None, "unknown relation");
        assert_eq!(t.len(), 1, "get does not intern");
    }

    #[test]
    fn display_and_empty() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(RelId(2).to_string(), "r2");
        assert!(NodeTable::new().is_empty());
    }

    #[test]
    fn packed_shard_local_roundtrip_and_ordering() {
        let a = NodeId::new(0, 5);
        let b = NodeId::new(2, 0);
        let c = NodeId::new(2, 9);
        assert_eq!(a.shard(), 0);
        assert_eq!(a.local(), 5);
        assert_eq!(c.shard(), 2);
        assert_eq!(c.local(), 9);
        // Global ordering rule: shard-major, then assignment order.
        assert!(a < b && b < c);
        // Shard 0 keeps the flat rendering; others show the partition.
        assert_eq!(a.to_string(), "n5");
        assert_eq!(c.to_string(), "n2.9");
    }

    #[test]
    fn sharded_table_interns_independently_per_shard() {
        let mut i = ValueInterner::new();
        let mut t = NodeTable::with_shards(4);
        assert_eq!(t.shard_count(), 4);
        let x = i.intern_tuple(&tuple![1]);
        let y = i.intern_tuple(&tuple![2]);
        let a = t.intern(1, RelId(0), &x);
        let b = t.intern(3, RelId(0), &y);
        assert_eq!(a, NodeId::new(1, 0));
        assert_eq!(b, NodeId::new(3, 0), "local sequences are per-shard");
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a).unwrap().1, &x);
        assert_eq!(t.resolve(b).unwrap().1, &y);
        assert_eq!(t.get(1, RelId(0), &x), Some(a));
        assert_eq!(t.get(0, RelId(0), &x), None, "wrong shard misses");
        // Disjoint writers per shard.
        let mut ws = t.shards_mut();
        assert_eq!(ws.len(), 4);
        let z = ws[2].intern(RelId(1), &x);
        assert_eq!(z, NodeId::new(2, 0));
        assert_eq!(ws[2].get(RelId(1), &x), Some(z));
    }

    #[test]
    fn with_shards_clamps_to_packed_capacity() {
        assert_eq!(NodeTable::with_shards(0).shard_count(), 1);
        assert_eq!(
            NodeTable::with_shards(100_000).shard_count(),
            NodeId::MAX_SHARDS
        );
    }
}
