//! Interning `(relation, tuple)` pairs into dense node ids.
//!
//! Every tuple the engine ever sees — base (published by a peer) or derived
//! (produced by a mapping) — gets one [`NodeId`]. Node ids are the
//! variables of provenance polynomials and the vertices of the provenance
//! graph, so keeping them dense `u32`s keeps those structures small.

use orchestra_relational::Tuple;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of an interned `(relation, tuple)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The interning table.
#[derive(Debug, Clone, Default)]
pub struct NodeTable {
    by_id: Vec<(Arc<str>, Tuple)>,
    by_key: HashMap<(Arc<str>, Tuple), NodeId>,
}

impl NodeTable {
    /// An empty table.
    pub fn new() -> Self {
        NodeTable::default()
    }

    /// Intern a pair, returning its id (existing or fresh).
    pub fn intern(&mut self, relation: &Arc<str>, tuple: &Tuple) -> NodeId {
        if let Some(&id) = self.by_key.get(&(Arc::clone(relation), tuple.clone())) {
            return id;
        }
        let id = NodeId(self.by_id.len() as u32);
        self.by_id.push((Arc::clone(relation), tuple.clone()));
        self.by_key
            .insert((Arc::clone(relation), tuple.clone()), id);
        id
    }

    /// Look up an existing id without interning.
    pub fn get(&self, relation: &str, tuple: &Tuple) -> Option<NodeId> {
        // Arc<str> hashing is by contents, so a temporary Arc probe works.
        self.by_key
            .get(&(Arc::from(relation), tuple.clone()))
            .copied()
    }

    /// The `(relation, tuple)` behind an id.
    pub fn resolve(&self, id: NodeId) -> Option<(&Arc<str>, &Tuple)> {
        self.by_id.get(id.0 as usize).map(|(r, t)| (r, t))
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::tuple;

    #[test]
    fn intern_is_idempotent() {
        let mut t = NodeTable::new();
        let r: Arc<str> = Arc::from("R");
        let a = t.intern(&r, &tuple![1, 2]);
        let b = t.intern(&r, &tuple![1, 2]);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_pairs_get_distinct_ids() {
        let mut t = NodeTable::new();
        let r: Arc<str> = Arc::from("R");
        let s: Arc<str> = Arc::from("S");
        let a = t.intern(&r, &tuple![1]);
        let b = t.intern(&s, &tuple![1]);
        let c = t.intern(&r, &tuple![2]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut t = NodeTable::new();
        let r: Arc<str> = Arc::from("R");
        let id = t.intern(&r, &tuple![1, "x"]);
        let (rel, tup) = t.resolve(id).unwrap();
        assert_eq!(&**rel, "R");
        assert_eq!(tup, &tuple![1, "x"]);
        assert!(t.resolve(NodeId(99)).is_none());
    }

    #[test]
    fn get_without_interning() {
        let mut t = NodeTable::new();
        let r: Arc<str> = Arc::from("R");
        assert_eq!(t.get("R", &tuple![1]), None);
        let id = t.intern(&r, &tuple![1]);
        assert_eq!(t.get("R", &tuple![1]), Some(id));
        assert_eq!(t.len(), 1, "get does not intern");
    }

    #[test]
    fn display_and_empty() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert!(NodeTable::new().is_empty());
    }
}
