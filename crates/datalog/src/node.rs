//! Interning `(relation, tuple)` pairs into dense node ids.
//!
//! Every tuple the engine ever sees — base (published by a peer) or derived
//! (produced by a mapping) — gets one [`NodeId`]. Node ids are the
//! variables of provenance polynomials and the vertices of the provenance
//! graph, so keeping them dense `u32`s keeps those structures small.
//!
//! Since the interned-value refactor the table keys on the engine's
//! *symbol* representation: relations are dense [`RelId`]s and tuples are
//! [`SymTuple`]s, so interning a node is one integer-keyed hash probe —
//! no string hashing, no structural tuple walks. Translating back to
//! names and [`Value`](orchestra_relational::Value)s is the engine's job
//! (it owns the
//! [`ValueInterner`](orchestra_relational::ValueInterner)).

use orchestra_relational::SymTuple;
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of a relation within one engine (index into the
/// engine's relation table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Dense identifier of an interned `(relation, tuple)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The interning table: `(RelId, SymTuple)` → [`NodeId`], keyed per
/// relation so lookups never hash the relation id and never clone the
/// tuple (misses clone once, an `Arc` bump).
#[derive(Debug, Clone, Default)]
pub struct NodeTable {
    by_id: Vec<(RelId, SymTuple)>,
    /// Indexed by `RelId`; grown on demand.
    by_rel: Vec<HashMap<SymTuple, NodeId>>,
}

impl NodeTable {
    /// An empty table.
    pub fn new() -> Self {
        NodeTable::default()
    }

    /// Intern a pair, returning its id (existing or fresh).
    pub fn intern(&mut self, rel: RelId, tuple: &SymTuple) -> NodeId {
        let ri = rel.index();
        if self.by_rel.len() <= ri {
            self.by_rel.resize_with(ri + 1, HashMap::new);
        }
        if let Some(&id) = self.by_rel[ri].get(tuple) {
            return id;
        }
        // analyze: allow(panic) -- u32 node-id capacity (4B interned tuples) is an accepted engine limit
        let id = NodeId(u32::try_from(self.by_id.len()).expect("node table overflow"));
        self.by_id.push((rel, tuple.clone()));
        self.by_rel[ri].insert(tuple.clone(), id);
        id
    }

    /// Look up an existing id without interning.
    pub fn get(&self, rel: RelId, tuple: &SymTuple) -> Option<NodeId> {
        self.by_rel.get(rel.index())?.get(tuple).copied()
    }

    /// The `(relation, tuple)` behind an id.
    pub fn resolve(&self, id: NodeId) -> Option<(RelId, &SymTuple)> {
        self.by_id.get(id.0 as usize).map(|(r, t)| (*r, t))
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::{tuple, ValueInterner};

    #[test]
    fn intern_is_idempotent() {
        let mut i = ValueInterner::new();
        let mut t = NodeTable::new();
        let st = i.intern_tuple(&tuple![1, 2]);
        let a = t.intern(RelId(0), &st);
        let b = t.intern(RelId(0), &st);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_pairs_get_distinct_ids() {
        let mut i = ValueInterner::new();
        let mut t = NodeTable::new();
        let one = i.intern_tuple(&tuple![1]);
        let two = i.intern_tuple(&tuple![2]);
        let a = t.intern(RelId(0), &one);
        let b = t.intern(RelId(1), &one);
        let c = t.intern(RelId(0), &two);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = ValueInterner::new();
        let mut t = NodeTable::new();
        let st = i.intern_tuple(&tuple![1, "x"]);
        let id = t.intern(RelId(3), &st);
        let (rel, tup) = t.resolve(id).unwrap();
        assert_eq!(rel, RelId(3));
        assert_eq!(tup, &st);
        assert!(t.resolve(NodeId(99)).is_none());
    }

    #[test]
    fn get_without_interning() {
        let mut i = ValueInterner::new();
        let mut t = NodeTable::new();
        let st = i.intern_tuple(&tuple![1]);
        assert_eq!(t.get(RelId(0), &st), None);
        let id = t.intern(RelId(0), &st);
        assert_eq!(t.get(RelId(0), &st), Some(id));
        assert_eq!(t.get(RelId(7), &st), None, "unknown relation");
        assert_eq!(t.len(), 1, "get does not intern");
    }

    #[test]
    fn display_and_empty() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(RelId(2).to_string(), "r2");
        assert!(NodeTable::new().is_empty());
    }
}
