//! Schema mappings as tuple-generating dependencies and their compilation
//! to datalog rules with Skolem functions.
//!
//! A mapping `∀x̄ (φ(x̄) → ∃ȳ ψ(x̄, ȳ))` — body atoms over the source
//! schema(s), head atoms over the target — is compiled one rule per head
//! atom. Existential variables `ȳ` are replaced by Skolem terms
//! `f_<mapping>_<var>(x̄ₕ)` where `x̄ₕ` are the universal variables that
//! appear in the head (the canonical chase choice: the invented value is a
//! deterministic function of the exported binding, so re-translating the
//! same source tuple re-creates the same labeled null — which is what makes
//! update translation idempotent and deletion propagation well-defined).
//!
//! A mapping author can also write explicit Skolem terms in the head to
//! control argument lists — the paper's `MC→A` does this so the invented
//! organism id depends only on `org`:
//!
//! ```text
//! MC→A: OPS(org, prot, seq) → O(org, #oid(org)), P(prot, #pid(prot)),
//!                             S(#oid(org), #pid(prot), seq)
//! ```

use crate::ast::{Atom, Filter, Rule, Term};
use crate::error::DatalogError;
use crate::Result;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A tuple-generating dependency (schema mapping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    /// Mapping name, e.g. `"MA->C"`; also the prefix of generated rule ids
    /// and Skolem function symbols.
    pub name: Arc<str>,
    /// Body (premise) atoms over the source schema.
    pub body: Vec<Atom>,
    /// Head (conclusion) atoms over the target schema.
    pub head: Vec<Atom>,
    /// Optional comparison filters on body variables.
    pub filters: Vec<Filter>,
}

impl Tgd {
    /// Build a tgd.
    pub fn new(name: impl AsRef<str>, body: Vec<Atom>, head: Vec<Atom>) -> Result<Tgd> {
        Tgd::with_filters(name, body, head, vec![])
    }

    /// Build a tgd with filters.
    pub fn with_filters(
        name: impl AsRef<str>,
        body: Vec<Atom>,
        head: Vec<Atom>,
        filters: Vec<Filter>,
    ) -> Result<Tgd> {
        let name: Arc<str> = Arc::from(name.as_ref());
        if body.is_empty() {
            return Err(DatalogError::InvalidTgd(format!(
                "mapping `{name}` has an empty body"
            )));
        }
        if head.is_empty() {
            return Err(DatalogError::InvalidTgd(format!(
                "mapping `{name}` has an empty head"
            )));
        }
        for atom in &head {
            for term in &atom.terms {
                if let Term::Skolem { args, .. } = term {
                    if args.iter().any(|a| matches!(a, Term::Skolem { .. })) {
                        return Err(DatalogError::InvalidTgd(format!(
                            "mapping `{name}`: nested Skolem terms are not supported"
                        )));
                    }
                }
            }
        }
        Ok(Tgd {
            name,
            body,
            head,
            filters,
        })
    }

    /// The identity mapping `src.R(x̄) → dst.R(x̄)` for one relation.
    pub fn identity(
        name: impl AsRef<str>,
        src_relation: impl AsRef<str>,
        dst_relation: impl AsRef<str>,
        arity: usize,
    ) -> Result<Tgd> {
        let vars: Vec<Term> = (0..arity).map(|i| Term::var(format!("x{i}"))).collect();
        Tgd::new(
            name,
            vec![Atom::new(src_relation, vars.clone())],
            vec![Atom::new(dst_relation, vars)],
        )
    }

    /// Universal variables: those occurring in the body.
    pub fn universal_vars(&self) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        for a in &self.body {
            out.extend(a.variables());
        }
        out
    }

    /// Existential variables: head variables not bound by the body.
    pub fn existential_vars(&self) -> BTreeSet<Arc<str>> {
        let universal = self.universal_vars();
        let mut out = BTreeSet::new();
        for a in &self.head {
            for v in a.variables() {
                if !universal.contains(&v) {
                    out.insert(v);
                }
            }
        }
        out
    }

    /// Compile into one safe datalog rule per head atom, skolemizing
    /// existential variables.
    ///
    /// The Skolem argument list for an implicit existential `y` is the
    /// sorted set of universal variables appearing anywhere in the head —
    /// the canonical chase choice. Explicit `Term::Skolem` terms are kept
    /// as written.
    pub fn compile(&self) -> Result<Vec<Rule>> {
        let universal = self.universal_vars();
        let existential = self.existential_vars();

        // Universal variables exported to the head, sorted for determinism.
        let exported: Vec<Arc<str>> = {
            let mut set = BTreeSet::new();
            for a in &self.head {
                for v in a.variables() {
                    if universal.contains(&v) {
                        set.insert(v);
                    }
                }
            }
            set.into_iter().collect()
        };
        let skolem_args: Vec<Term> = exported.iter().map(|v| Term::Var(Arc::clone(v))).collect();

        let mut rules = Vec::with_capacity(self.head.len());
        for (i, head_atom) in self.head.iter().enumerate() {
            let new_terms: Vec<Term> = head_atom
                .terms
                .iter()
                .map(|t| self.skolemize_term(t, &existential, &skolem_args))
                .collect();
            let rule_id = if self.head.len() == 1 {
                self.name.to_string()
            } else {
                format!("{}#{}", self.name, i + 1)
            };
            rules.push(Rule::new(
                rule_id,
                Atom {
                    relation: Arc::clone(&head_atom.relation),
                    terms: new_terms,
                },
                self.body.clone(),
                self.filters.clone(),
            )?);
        }
        Ok(rules)
    }

    fn skolemize_term(
        &self,
        t: &Term,
        existential: &BTreeSet<Arc<str>>,
        skolem_args: &[Term],
    ) -> Term {
        match t {
            Term::Var(v) if existential.contains(v) => Term::Skolem {
                function: Arc::from(format!("f_{}_{v}", self.name)),
                args: skolem_args.to_vec(),
            },
            other => other.clone(),
        }
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        for filt in &self.filters {
            write!(f, ", {filt}")?;
        }
        write!(f, " → ")?;
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's join mapping MA→C: three tables into one.
    fn ma_to_c() -> Tgd {
        Tgd::new(
            "MA->C",
            vec![
                Atom::vars("A.O", &["org", "oid"]),
                Atom::vars("A.P", &["prot", "pid"]),
                Atom::vars("A.S", &["oid", "pid", "seq"]),
            ],
            vec![Atom::vars("C.OPS", &["org", "prot", "seq"])],
        )
        .unwrap()
    }

    /// The paper's split mapping MC→A with implicit existentials.
    fn mc_to_a_implicit() -> Tgd {
        Tgd::new(
            "MC->A",
            vec![Atom::vars("C.OPS", &["org", "prot", "seq"])],
            vec![
                Atom::vars("A.O", &["org", "oid"]),
                Atom::vars("A.P", &["prot", "pid"]),
                Atom::vars("A.S", &["oid", "pid", "seq"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn universal_and_existential_vars() {
        let m = mc_to_a_implicit();
        let uni = m.universal_vars();
        assert_eq!(uni.len(), 3);
        let exi = m.existential_vars();
        assert_eq!(
            exi.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
            vec!["oid", "pid"]
        );
        assert!(ma_to_c().existential_vars().is_empty());
    }

    #[test]
    fn join_mapping_compiles_to_single_rule() {
        let rules = ma_to_c().compile().unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(&*rules[0].id, "MA->C");
        assert_eq!(rules[0].body.len(), 3);
        assert!(!rules[0].head.has_skolem());
    }

    #[test]
    fn split_mapping_skolemizes_existentials() {
        let rules = mc_to_a_implicit().compile().unwrap();
        assert_eq!(rules.len(), 3);
        // Rule ids are suffixed.
        assert_eq!(&*rules[0].id, "MC->A#1");
        // A.O(org, #f_MC->A_oid(org,prot,seq)).
        let o_rule = &rules[0];
        match &o_rule.head.terms[1] {
            Term::Skolem { function, args } => {
                assert_eq!(&**function, "f_MC->A_oid");
                // Implicit existentials take all exported universal vars.
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected Skolem, got {other:?}"),
        }
        // The same existential uses the same Skolem function in S.
        let s_rule = &rules[2];
        match &s_rule.head.terms[0] {
            Term::Skolem { function, .. } => assert_eq!(&**function, "f_MC->A_oid"),
            other => panic!("expected Skolem, got {other:?}"),
        }
    }

    #[test]
    fn explicit_skolems_are_preserved() {
        // The paper's preferred MC→A: oid depends only on org.
        let m = Tgd::new(
            "MC->A",
            vec![Atom::vars("C.OPS", &["org", "prot", "seq"])],
            vec![
                Atom::new(
                    "A.O",
                    vec![
                        Term::var("org"),
                        Term::skolem("oid", vec![Term::var("org")]),
                    ],
                ),
                Atom::new(
                    "A.S",
                    vec![
                        Term::skolem("oid", vec![Term::var("org")]),
                        Term::skolem("pid", vec![Term::var("prot")]),
                        Term::var("seq"),
                    ],
                ),
            ],
        )
        .unwrap();
        let rules = m.compile().unwrap();
        match &rules[0].head.terms[1] {
            Term::Skolem { function, args } => {
                assert_eq!(&**function, "oid");
                assert_eq!(args, &vec![Term::var("org")]);
            }
            other => panic!("expected Skolem, got {other:?}"),
        }
    }

    #[test]
    fn identity_mapping() {
        let m = Tgd::identity("MA->B", "A.O", "B.O", 2).unwrap();
        let rules = m.compile().unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(&*rules[0].head.relation, "B.O");
        assert_eq!(rules[0].body[0].relation.as_ref(), "A.O");
        assert_eq!(rules[0].head.terms, rules[0].body[0].terms);
    }

    #[test]
    fn rejects_empty_body_or_head() {
        assert!(Tgd::new("m", vec![], vec![Atom::vars("T", &["x"])]).is_err());
        assert!(Tgd::new("m", vec![Atom::vars("R", &["x"])], vec![]).is_err());
    }

    #[test]
    fn rejects_nested_skolems() {
        let m = Tgd::new(
            "m",
            vec![Atom::vars("R", &["x"])],
            vec![Atom::new(
                "T",
                vec![Term::skolem(
                    "f",
                    vec![Term::skolem("g", vec![Term::var("x")])],
                )],
            )],
        );
        assert!(matches!(m, Err(DatalogError::InvalidTgd(_))));
    }

    #[test]
    fn compile_rejects_unsafe_explicit_skolem() {
        // Explicit Skolem over a variable not in the body.
        let m = Tgd::new(
            "m",
            vec![Atom::vars("R", &["x"])],
            vec![Atom::new(
                "T",
                vec![Term::skolem("f", vec![Term::var("nope")])],
            )],
        )
        .unwrap();
        // "nope" is treated as existential but appears only inside an
        // explicit Skolem — compilation keeps it and safety check fails.
        assert!(m.compile().is_err());
    }

    #[test]
    fn display() {
        let shown = ma_to_c().to_string();
        assert!(shown.contains("MA->C: A.O(org, oid)"));
        assert!(shown.contains("→ C.OPS(org, prot, seq)"));
    }
}
