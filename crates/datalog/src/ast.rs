//! The rule language: terms, atoms, filters, rules.
//!
//! Rules are plain conjunctive datalog extended with **Skolem terms in rule
//! heads** — the compiled form of existential variables in schema mappings
//! (see [`crate::tgd`]). Example, the paper's `MC→A` split mapping:
//!
//! ```text
//! O(org, f_oid(org))                   :- OPS(org, prot, seq)
//! P(prot, f_pid(prot))                 :- OPS(org, prot, seq)
//! S(f_oid(org), f_pid(prot), seq)      :- OPS(org, prot, seq)
//! ```

use crate::error::DatalogError;
use crate::Result;
use orchestra_relational::{CmpOp, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A term in an atom: variable, constant, or Skolem application.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A named variable.
    Var(Arc<str>),
    /// A constant value.
    Const(Value),
    /// A Skolem function applied to terms (variables/constants). Only
    /// meaningful in rule heads; evaluating one constructs a labeled null.
    Skolem {
        /// The Skolem function symbol.
        function: Arc<str>,
        /// Arguments (must be bound by the body).
        args: Vec<Term>,
    },
}

impl Term {
    /// A variable term.
    pub fn var(name: impl AsRef<str>) -> Term {
        Term::Var(Arc::from(name.as_ref()))
    }

    /// A constant term.
    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// A Skolem application term.
    pub fn skolem(function: impl AsRef<str>, args: Vec<Term>) -> Term {
        Term::Skolem {
            function: Arc::from(function.as_ref()),
            args,
        }
    }

    /// Collect the variables of this term into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<Arc<str>>) {
        match self {
            Term::Var(v) => {
                out.insert(Arc::clone(v));
            }
            Term::Const(_) => {}
            Term::Skolem { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Skolem { function, args } => {
                write!(f, "#{function}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A relational atom `R(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation name.
    pub relation: Arc<str>,
    /// Terms, one per column.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl AsRef<str>, terms: Vec<Term>) -> Atom {
        Atom {
            relation: Arc::from(relation.as_ref()),
            terms,
        }
    }

    /// Atom whose terms are all variables, from names.
    pub fn vars(relation: impl AsRef<str>, names: &[&str]) -> Atom {
        Atom::new(relation, names.iter().map(Term::var).collect())
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// All variables in the atom.
    pub fn variables(&self) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        for t in &self.terms {
            t.collect_vars(&mut out);
        }
        out
    }

    /// True iff the atom contains a Skolem term.
    pub fn has_skolem(&self) -> bool {
        self.terms.iter().any(|t| matches!(t, Term::Skolem { .. }))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A comparison filter between two terms (no Skolems allowed).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Filter {
    /// Left operand.
    pub left: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Term,
}

impl Filter {
    /// Build a filter.
    pub fn new(left: Term, op: CmpOp, right: Term) -> Filter {
        Filter { left, op, right }
    }

    /// All variables referenced.
    pub fn variables(&self) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        self.left.collect_vars(&mut out);
        self.right.collect_vars(&mut out);
        out
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// Identifies a rule; mapping compilation gives every rule a readable name
/// like `"MA->C"` or `"MC->A#2"`, which shows up in provenance displays.
pub type RuleId = Arc<str>;

/// A datalog rule `head :- body, filters`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Rule identifier (unique within a program).
    pub id: RuleId,
    /// Head atom; may contain Skolem terms.
    pub head: Atom,
    /// Positive body atoms (at least one).
    pub body: Vec<Atom>,
    /// Comparison filters over body variables.
    pub filters: Vec<Filter>,
}

impl Rule {
    /// Build a rule and check *safety*: every head and filter variable must
    /// occur in some body atom, and the body must be non-empty.
    pub fn new(
        id: impl AsRef<str>,
        head: Atom,
        body: Vec<Atom>,
        filters: Vec<Filter>,
    ) -> Result<Rule> {
        let id: RuleId = Arc::from(id.as_ref());
        if body.is_empty() {
            return Err(DatalogError::UnsafeRule {
                rule: id.to_string(),
                variable: "<empty body>".to_string(),
            });
        }
        let mut bound: BTreeSet<Arc<str>> = BTreeSet::new();
        for atom in &body {
            bound.extend(atom.variables());
        }
        for v in head.variables() {
            if !bound.contains(&v) {
                return Err(DatalogError::UnsafeRule {
                    rule: id.to_string(),
                    variable: v.to_string(),
                });
            }
        }
        for filt in &filters {
            for v in filt.variables() {
                if !bound.contains(&v) {
                    return Err(DatalogError::UnsafeRule {
                        rule: id.to_string(),
                        variable: v.to_string(),
                    });
                }
            }
        }
        Ok(Rule {
            id,
            head,
            body,
            filters,
        })
    }

    /// All variables in the rule body.
    pub fn body_variables(&self) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        for atom in &self.body {
            out.extend(atom.variables());
        }
        out
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} :- ", self.id, self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        for filt in &self.filters {
            write!(f, ", {filt}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_constructors_and_vars() {
        let t = Term::skolem("f", vec![Term::var("x"), Term::val(1)]);
        let mut vars = BTreeSet::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars.len(), 1);
        assert!(vars.contains("x"));
        assert_eq!(t.to_string(), "#f(x, 1)".replace(", ", ","));
    }

    #[test]
    fn atom_vars_and_skolem_detection() {
        let a = Atom::new(
            "S",
            vec![
                Term::skolem("f_oid", vec![Term::var("org")]),
                Term::var("seq"),
            ],
        );
        assert_eq!(a.arity(), 2);
        assert!(a.has_skolem());
        let vars = a.variables();
        assert!(vars.contains("org"));
        assert!(vars.contains("seq"));
        assert!(!Atom::vars("R", &["x"]).has_skolem());
    }

    #[test]
    fn rule_safety_ok() {
        let r = Rule::new(
            "m",
            Atom::vars("T", &["x", "y"]),
            vec![Atom::vars("R", &["x", "y"])],
            vec![],
        );
        assert!(r.is_ok());
    }

    #[test]
    fn rule_safety_rejects_unbound_head_var() {
        let r = Rule::new(
            "m",
            Atom::vars("T", &["x", "z"]),
            vec![Atom::vars("R", &["x", "y"])],
            vec![],
        );
        assert!(matches!(r, Err(DatalogError::UnsafeRule { .. })));
    }

    #[test]
    fn rule_safety_rejects_unbound_skolem_arg() {
        let r = Rule::new(
            "m",
            Atom::new(
                "T",
                vec![Term::skolem("f", vec![Term::var("z")]), Term::var("x")],
            ),
            vec![Atom::vars("R", &["x", "y"])],
            vec![],
        );
        assert!(matches!(r, Err(DatalogError::UnsafeRule { .. })));
    }

    #[test]
    fn rule_safety_rejects_unbound_filter_var() {
        let r = Rule::new(
            "m",
            Atom::vars("T", &["x"]),
            vec![Atom::vars("R", &["x", "y"])],
            vec![Filter::new(Term::var("q"), CmpOp::Eq, Term::val(1))],
        );
        assert!(matches!(r, Err(DatalogError::UnsafeRule { .. })));
    }

    #[test]
    fn rule_safety_rejects_empty_body() {
        let r = Rule::new("m", Atom::vars("T", &["x"]), vec![], vec![]);
        assert!(r.is_err());
    }

    #[test]
    fn display_rule() {
        let r = Rule::new(
            "MA->C",
            Atom::vars("OPS", &["org", "prot", "seq"]),
            vec![
                Atom::vars("O", &["org", "oid"]),
                Atom::vars("P", &["prot", "pid"]),
                Atom::vars("S", &["oid", "pid", "seq"]),
            ],
            vec![],
        )
        .unwrap();
        let s = r.to_string();
        assert!(s.starts_with("[MA->C] OPS(org, prot, seq) :- O(org, oid)"));
    }

    #[test]
    fn filter_variables() {
        let f = Filter::new(Term::var("a"), CmpOp::Lt, Term::var("b"));
        assert_eq!(f.variables().len(), 2);
        assert_eq!(f.to_string(), "a < b");
    }

    #[test]
    fn body_variables() {
        let r = Rule::new(
            "m",
            Atom::vars("T", &["x"]),
            vec![Atom::vars("R", &["x", "y"]), Atom::vars("Q", &["y", "z"])],
            vec![],
        )
        .unwrap();
        let vars = r.body_variables();
        assert_eq!(vars.len(), 3);
    }
}
