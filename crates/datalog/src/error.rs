//! Errors for the mapping/chase layer.

use std::fmt;

/// Errors raised while compiling mappings or evaluating programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A rule is not *safe*: a head (or filter) variable does not occur in
    /// any positive body atom.
    UnsafeRule { rule: String, variable: String },
    /// An atom's arity disagrees with the relation schema.
    ArityMismatch {
        relation: String,
        expected: usize,
        actual: usize,
    },
    /// A relation referenced by a rule is not declared to the engine.
    UnknownRelation(String),
    /// A tgd is malformed (empty head/body, etc.).
    InvalidTgd(String),
    /// An error bubbled up from the relational layer.
    Relational(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::UnsafeRule { rule, variable } => {
                write!(
                    f,
                    "unsafe rule `{rule}`: variable `{variable}` not bound by body"
                )
            }
            DatalogError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for `{relation}`: expected {expected}, got {actual}"
            ),
            DatalogError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            DatalogError::InvalidTgd(msg) => write!(f, "invalid tgd: {msg}"),
            DatalogError::Relational(msg) => write!(f, "relational error: {msg}"),
        }
    }
}

impl std::error::Error for DatalogError {}

impl From<orchestra_relational::RelationalError> for DatalogError {
    fn from(e: orchestra_relational::RelationalError) -> Self {
        DatalogError::Relational(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DatalogError::UnsafeRule {
            rule: "m1".into(),
            variable: "x".into(),
        };
        assert!(e.to_string().contains("unsafe rule"));
        assert!(DatalogError::UnknownRelation("R".into())
            .to_string()
            .contains("unknown relation"));
        assert!(DatalogError::InvalidTgd("no head".into())
            .to_string()
            .contains("no head"));
    }

    #[test]
    fn from_relational() {
        let e: DatalogError =
            orchestra_relational::RelationalError::UnknownRelation("R".into()).into();
        assert!(matches!(e, DatalogError::Relational(_)));
    }
}
