//! The provenance graph: derivation records, well-founded derivability,
//! and polynomial extraction.
//!
//! One [`Derivation`] is recorded per distinct rule firing. The graph is
//! finite even for recursive mapping programs (at most one record per
//! `(rule, body-binding)`), which is why Orchestra stores provenance this
//! way rather than as unfolded polynomials.

use crate::ast::RuleId;
use crate::node::NodeId;
use orchestra_provenance::{Monomial, Polynomial, Semiring};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;

/// One rule firing: `head` was derived by `rule` from the `body` nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Derivation {
    /// The rule that fired.
    pub rule: RuleId,
    /// The derived node.
    pub head: NodeId,
    /// The body nodes, in rule-body order.
    pub body: Vec<NodeId>,
}

/// The provenance graph over interned nodes.
#[derive(Debug, Clone, Default)]
pub struct ProvGraph {
    derivations: Vec<Derivation>,
    /// head node → indexes of its derivations. Node ids are dense (the
    /// engine's interning order), so these adjacency lists are plain
    /// vectors grown on demand — recording a rule firing never hashes.
    by_head: Vec<Vec<u32>>,
    /// body node → indexes of derivations using it.
    by_body: Vec<Vec<u32>>,
    /// Dedup filter: `(head, fingerprint(rule, body))` of every recorded
    /// derivation. A miss proves the derivation is new without scanning;
    /// a hit falls back to structurally comparing the head's (usually
    /// tiny) derivation list, so hash collisions cannot drop records.
    /// Stores 12 bytes per derivation instead of a full second copy.
    seen: HashSet<(NodeId, u64)>,
    /// Nodes asserted as base facts (EDB / peer-published inserts).
    base: BTreeSet<NodeId>,
}

/// The dedup fingerprint of a derivation's `(rule, body)` — pure, so the
/// engine's parallel join phase can precompute it off the merge thread.
pub fn derivation_fingerprint(rule: &RuleId, body: &[NodeId]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    rule.hash(&mut h);
    // Matches `Vec<NodeId>`'s Hash (length prefix + elements).
    body.hash(&mut h);
    h.finish()
}

fn fingerprint(d: &Derivation) -> u64 {
    derivation_fingerprint(&d.rule, &d.body)
}

fn push_adj(adj: &mut Vec<Vec<u32>>, node: NodeId, idx: u32) {
    let i = node.0 as usize;
    if adj.len() <= i {
        adj.resize_with(i + 1, Vec::new);
    }
    adj[i].push(idx);
}

impl ProvGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ProvGraph::default()
    }

    /// Mark a node as a base fact.
    pub fn add_base(&mut self, node: NodeId) {
        self.base.insert(node);
    }

    /// Remove a node's base mark (it may remain derivable via rules).
    pub fn remove_base(&mut self, node: NodeId) -> bool {
        self.base.remove(&node)
    }

    /// True iff the node is currently a base fact.
    pub fn is_base(&self, node: NodeId) -> bool {
        self.base.contains(&node)
    }

    /// The current base set.
    pub fn base_nodes(&self) -> &BTreeSet<NodeId> {
        &self.base
    }

    /// Record a derivation (deduplicated). Returns `true` if new.
    pub fn add_derivation(&mut self, d: Derivation) -> bool {
        let fp = fingerprint(&d);
        self.add_derivation_fp(d, fp)
    }

    /// [`add_derivation`](Self::add_derivation) with the `(rule, body)`
    /// fingerprint precomputed (see [`derivation_fingerprint`]) — the
    /// engine's merge phase passes fingerprints its parallel workers
    /// already hashed.
    pub fn add_derivation_fp(&mut self, d: Derivation, fp: u64) -> bool {
        debug_assert_eq!(fp, fingerprint(&d), "mismatched precomputed fingerprint");
        let fp = (d.head, fp);
        if self.seen.contains(&fp) {
            // Possible duplicate — confirm structurally (collisions on the
            // fingerprint must not drop genuine derivations).
            if let Some(idxs) = self.by_head.get(d.head.0 as usize) {
                if idxs.iter().any(|&i| self.derivations[i as usize] == d) {
                    return false;
                }
            }
        }
        self.seen.insert(fp);
        // analyze: allow(panic) -- u32 derivation capacity (4B entries) is an accepted engine limit
        let idx = u32::try_from(self.derivations.len()).expect("derivation overflow");
        push_adj(&mut self.by_head, d.head, idx);
        for b in &d.body {
            push_adj(&mut self.by_body, *b, idx);
        }
        self.derivations.push(d);
        true
    }

    /// All derivations of a node.
    pub fn derivations_of(&self, node: NodeId) -> impl Iterator<Item = &Derivation> {
        self.by_head
            .get(node.0 as usize)
            .into_iter()
            .flatten()
            .map(move |&i| &self.derivations[i as usize])
    }

    /// All derivations using a node in their body.
    pub fn uses_of(&self, node: NodeId) -> impl Iterator<Item = &Derivation> {
        self.by_body
            .get(node.0 as usize)
            .into_iter()
            .flatten()
            .map(move |&i| &self.derivations[i as usize])
    }

    /// Total number of derivation records.
    pub fn num_derivations(&self) -> usize {
        self.derivations.len()
    }

    /// All derivation records, in recording order. The engine's merge
    /// phase records derivations in a deterministic order, so this
    /// sequence is comparable across engines (the thread-count parity
    /// suite diffs it verbatim).
    pub fn derivations(&self) -> impl Iterator<Item = &Derivation> {
        self.derivations.iter()
    }

    /// Well-founded derivability: the least set containing the (alive) base
    /// facts and closed under derivations. `dead` removes base facts
    /// *before* the fixpoint — this is exactly the provenance-based
    /// deletion-propagation test: cyclic derivations with no base support
    /// die, matching the least-fixpoint semantics of the mapping program.
    pub fn derivable_set(&self, dead: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        // Worklist over derivations with a satisfied-body counter.
        let mut remaining: Vec<usize> = self.derivations.iter().map(|d| d.body.len()).collect();
        let mut derivable: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for &b in &self.base {
            if !dead.contains(&b) && derivable.insert(b) {
                queue.push_back(b);
            }
        }
        // Derivations with empty bodies cannot exist (rules are safe with
        // non-empty bodies), but guard anyway.
        for (i, d) in self.derivations.iter().enumerate() {
            if d.body.is_empty() && derivable.insert(d.head) {
                let _ = i;
                queue.push_back(d.head);
            }
        }
        while let Some(n) = queue.pop_front() {
            if let Some(uses) = self.by_body.get(n.0 as usize) {
                for &i in uses {
                    let i = i as usize;
                    // A node occurring k times in one body decrements k times,
                    // matching body.len() counting.
                    remaining[i] = remaining[i].saturating_sub(
                        self.derivations[i].body.iter().filter(|&&b| b == n).count(),
                    );
                    if remaining[i] == 0 {
                        let head = self.derivations[i].head;
                        if derivable.insert(head) {
                            queue.push_back(head);
                        }
                    }
                }
            }
        }
        derivable
    }

    /// True iff `node` is well-foundedly derivable after deleting `dead`
    /// base facts.
    pub fn is_derivable(&self, node: NodeId, dead: &BTreeSet<NodeId>) -> bool {
        self.derivable_set(dead).contains(&node)
    }

    /// The provenance polynomial of a node in N\[X\], X = base node ids,
    /// summing over **simple proofs** (proof trees that do not repeat a
    /// node along any root-to-leaf path — finite even for recursive
    /// programs; for non-recursive programs this is exactly the standard
    /// polynomial).
    pub fn polynomial(&self, node: NodeId) -> Polynomial<NodeId> {
        let mut path: HashSet<NodeId> = HashSet::new();
        self.poly_rec(node, &mut path)
    }

    fn poly_rec(&self, node: NodeId, path: &mut HashSet<NodeId>) -> Polynomial<NodeId> {
        let mut acc = if self.base.contains(&node) {
            Polynomial::var(node)
        } else {
            Polynomial::zero()
        };
        if !path.insert(node) {
            // Node already on the current path: no simple proof this way.
            return Polynomial::zero();
        }
        for d in self.derivations_of(node) {
            let mut term = Polynomial::one();
            for &b in &d.body {
                let sub = self.poly_rec(b, path);
                if sub.is_zero() {
                    term = Polynomial::zero();
                    break;
                }
                term = term.times(&sub);
            }
            acc.plus_assign(&term);
        }
        path.remove(&node);
        acc
    }

    /// Evaluate the node's provenance in any commutative semiring by
    /// assigning values to base nodes (over simple proofs, like
    /// [`polynomial`](Self::polynomial)).
    pub fn eval<S: Semiring>(&self, node: NodeId, f: impl Fn(NodeId) -> S) -> S {
        self.polynomial(node).eval(|v| f(*v))
    }

    /// The base nodes of the node's **canonical proof**: follow each
    /// node's chronologically first derivation (or its own base fact).
    ///
    /// Because the first derivation of a node was recorded when the node
    /// first appeared, its body nodes all predate it — the canonical proof
    /// is well-founded by construction, so this runs in linear time with
    /// no cycle handling. Update translation uses it to attribute origins
    /// and derive antecedents: it names exactly the transactions whose
    /// data actually produced the tuple, without the exponential cost of
    /// enumerating every simple proof ([`polynomial`](Self::polynomial))
    /// and without the over-approximation of raw reachability
    /// ([`lineage`](Self::lineage)), which pseudo-cyclic derivations in
    /// recursive mapping programs would pollute.
    pub fn first_proof_lineage(&self, node: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        let mut visited: HashSet<NodeId> = HashSet::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if !visited.insert(n) {
                continue;
            }
            if self.base.contains(&n) {
                out.insert(n);
                continue;
            }
            if let Some(d) = self.derivations_of(n).next() {
                stack.extend(d.body.iter().copied());
            }
        }
        out
    }

    /// The set of base nodes a node's provenance mentions (its lineage).
    pub fn lineage(&self, node: NodeId) -> BTreeSet<NodeId> {
        // Reachability to base nodes through derivations.
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut out: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        queue.push_back(node);
        seen.insert(node);
        while let Some(n) = queue.pop_front() {
            if self.base.contains(&n) {
                out.insert(n);
            }
            for d in self.derivations_of(n) {
                for &b in &d.body {
                    if seen.insert(b) {
                        queue.push_back(b);
                    }
                }
            }
        }
        out
    }

    /// Monomial of one derivation's direct body (helper for displays).
    pub fn derivation_monomial(d: &Derivation) -> Monomial<NodeId> {
        Monomial::from_pairs(d.body.iter().map(|&b| (b, 1)))
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⇐ {}(", self.head, self.rule)?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_provenance::Boolean;
    use std::sync::Arc;

    fn rid(s: &str) -> RuleId {
        Arc::from(s)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn deriv(rule: &str, head: u32, body: &[u32]) -> Derivation {
        Derivation {
            rule: rid(rule),
            head: n(head),
            body: body.iter().map(|&b| n(b)).collect(),
        }
    }

    /// base 0, 1; 2 ⇐ m1(0,1); 3 ⇐ m2(2); 3 ⇐ m3(1).
    fn diamond() -> ProvGraph {
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        g.add_base(n(1));
        g.add_derivation(deriv("m1", 2, &[0, 1]));
        g.add_derivation(deriv("m2", 3, &[2]));
        g.add_derivation(deriv("m3", 3, &[1]));
        g
    }

    #[test]
    fn dedup_derivations() {
        let mut g = ProvGraph::new();
        assert!(g.add_derivation(deriv("m", 1, &[0])));
        assert!(!g.add_derivation(deriv("m", 1, &[0])));
        assert_eq!(g.num_derivations(), 1);
    }

    #[test]
    fn base_flags() {
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        assert!(g.is_base(n(0)));
        assert!(g.remove_base(n(0)));
        assert!(!g.is_base(n(0)));
        assert!(!g.remove_base(n(0)));
    }

    #[test]
    fn derivable_set_full() {
        let g = diamond();
        let d = g.derivable_set(&BTreeSet::new());
        assert_eq!(d, BTreeSet::from([n(0), n(1), n(2), n(3)]));
    }

    #[test]
    fn derivable_set_after_deletion() {
        let g = diamond();
        // Kill node 0: 2 dies (needs both 0 and 1), 3 survives via m3(1).
        let d = g.derivable_set(&BTreeSet::from([n(0)]));
        assert_eq!(d, BTreeSet::from([n(1), n(3)]));
        // Kill node 1: everything but 0 dies.
        let d = g.derivable_set(&BTreeSet::from([n(1)]));
        assert_eq!(d, BTreeSet::from([n(0)]));
        assert!(g.is_derivable(n(3), &BTreeSet::from([n(0)])));
        assert!(!g.is_derivable(n(2), &BTreeSet::from([n(0)])));
    }

    #[test]
    fn cyclic_support_is_not_well_founded() {
        // 1 ⇐ m(2), 2 ⇐ m'(1): a cycle with no base support must die.
        let mut g = ProvGraph::new();
        g.add_derivation(deriv("m", 1, &[2]));
        g.add_derivation(deriv("m'", 2, &[1]));
        let d = g.derivable_set(&BTreeSet::new());
        assert!(d.is_empty());
        // Give 1 base support: both become derivable.
        g.add_base(n(1));
        let d = g.derivable_set(&BTreeSet::new());
        assert_eq!(d, BTreeSet::from([n(1), n(2)]));
    }

    #[test]
    fn duplicate_body_node_requires_single_derivation() {
        // 2 ⇐ m(0,0): node 0 appears twice in the body.
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        g.add_derivation(deriv("m", 2, &[0, 0]));
        let d = g.derivable_set(&BTreeSet::new());
        assert!(d.contains(&n(2)));
    }

    #[test]
    fn polynomial_of_base_node() {
        let g = diamond();
        assert_eq!(g.polynomial(n(0)), Polynomial::var(n(0)));
    }

    #[test]
    fn polynomial_of_derived_nodes() {
        let g = diamond();
        // node 2 = x0 · x1.
        let p2 = g.polynomial(n(2));
        assert_eq!(p2, Polynomial::var(n(0)).times(&Polynomial::var(n(1))));
        // node 3 = x0·x1 + x1.
        let p3 = g.polynomial(n(3));
        assert_eq!(p3.num_terms(), 2);
        assert!(p3.mentions(&n(0)));
        assert!(p3.mentions(&n(1)));
    }

    #[test]
    fn polynomial_handles_cycles_via_simple_proofs() {
        // Identity loop: A(t) base; B(t) ⇐ id1(A(t)); A(t) ⇐ id2(B(t)).
        let mut g = ProvGraph::new();
        g.add_base(n(0)); // A(t)
        g.add_derivation(deriv("id1", 1, &[0])); // B(t) from A(t)
        g.add_derivation(deriv("id2", 0, &[1])); // A(t) from B(t)
        let pa = g.polynomial(n(0));
        // Simple proofs of A(t): base only (the round trip repeats A(t)).
        assert_eq!(pa, Polynomial::var(n(0)));
        let pb = g.polynomial(n(1));
        assert_eq!(pb, Polynomial::var(n(0)));
    }

    #[test]
    fn derived_and_base_node_sums_both() {
        // Node 1 is base AND derivable from 0.
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        g.add_base(n(1));
        g.add_derivation(deriv("m", 1, &[0]));
        let p = g.polynomial(n(1));
        // x1 + x0.
        assert_eq!(p, Polynomial::var(n(1)).plus(&Polynomial::var(n(0))));
    }

    #[test]
    fn eval_boolean_matches_derivability() {
        let g = diamond();
        for dead in [
            BTreeSet::new(),
            BTreeSet::from([n(0)]),
            BTreeSet::from([n(1)]),
            BTreeSet::from([n(0), n(1)]),
        ] {
            for node in [n(2), n(3)] {
                let via_poly = g.eval(node, |b| Boolean(!dead.contains(&b)));
                assert_eq!(
                    via_poly.0,
                    g.is_derivable(node, &dead),
                    "node {node}, dead {dead:?}"
                );
            }
        }
    }

    #[test]
    fn lineage_reaches_base() {
        let g = diamond();
        assert_eq!(g.lineage(n(3)), BTreeSet::from([n(0), n(1)]));
        assert_eq!(g.lineage(n(0)), BTreeSet::from([n(0)]));
    }

    #[test]
    fn uses_and_derivations_of() {
        let g = diamond();
        assert_eq!(g.derivations_of(n(3)).count(), 2);
        assert_eq!(g.uses_of(n(1)).count(), 2); // m1 and m3
        assert_eq!(g.uses_of(n(3)).count(), 0);
    }

    #[test]
    fn display_derivation() {
        let d = deriv("m1", 2, &[0, 1]);
        assert_eq!(d.to_string(), "n2 ⇐ m1(n0,n1)");
    }

    #[test]
    fn first_proof_lineage_follows_first_derivation() {
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        g.add_base(n(1));
        // Node 2 first derived from 0, later also from 1.
        g.add_derivation(deriv("m1", 2, &[0]));
        g.add_derivation(deriv("m2", 2, &[1]));
        assert_eq!(g.first_proof_lineage(n(2)), BTreeSet::from([n(0)]));
        // Full lineage sees both.
        assert_eq!(g.lineage(n(2)), BTreeSet::from([n(0), n(1)]));
    }

    #[test]
    fn first_proof_lineage_of_base_is_itself() {
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        // Base nodes stop the walk even if they are also derived.
        g.add_base(n(1));
        g.add_derivation(deriv("m", 1, &[0]));
        assert_eq!(g.first_proof_lineage(n(1)), BTreeSet::from([n(1)]));
        assert_eq!(g.first_proof_lineage(n(0)), BTreeSet::from([n(0)]));
    }

    #[test]
    fn first_proof_lineage_excludes_pseudo_cyclic_support() {
        // The scenario-4 pattern: node 3's first proof uses bases 0,1;
        // a later derivation routes through node 4, which derives from an
        // unrelated base 2. Reachability would include 2; the canonical
        // proof must not.
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        g.add_base(n(1));
        g.add_base(n(2));
        g.add_derivation(deriv("join", 3, &[0, 1])); // first proof
        g.add_derivation(deriv("echo", 4, &[2]));
        g.add_derivation(deriv("rejoin", 3, &[4])); // later alternative
        assert_eq!(g.first_proof_lineage(n(3)), BTreeSet::from([n(0), n(1)]));
        assert_eq!(g.lineage(n(3)), BTreeSet::from([n(0), n(1), n(2)]));
    }

    #[test]
    fn first_proof_lineage_of_unsupported_node_is_empty() {
        let mut g = ProvGraph::new();
        g.add_derivation(deriv("m", 1, &[0])); // body 0 is not base
        assert!(g.first_proof_lineage(n(1)).is_empty());
    }
}
