//! The provenance graph: derivation records, well-founded derivability,
//! and polynomial extraction — partitioned by the engine's shard routing.
//!
//! One [`Derivation`] is recorded per distinct rule firing. The graph is
//! finite even for recursive mapping programs (at most one record per
//! `(rule, body-binding)`), which is why Orchestra stores provenance this
//! way rather than as unfolded polynomials.
//!
//! ## Partitioning
//!
//! Since the partitioned-merge refactor the graph is split into one
//! [`ProvShard`] per engine shard, and a derivation lives in the shard of
//! its **head** node ([`NodeId::shard`] — a pure function of tuple
//! content). Each shard owns its derivation store, its head adjacency,
//! its body adjacency, and its fingerprint dedup filter, so the engine's
//! merge phase hands one [`ProvShardWriter`] to each concurrent sink and
//! records rule firings with **no** cross-shard coordination. The only
//! cross-shard state a firing produces — "body node *b* (shard *t*) is
//! used by derivation *d* (shard *s ≠ t*)" — is staged in the writer's
//! per-target outbox and spliced into shard *t* afterwards in fixed
//! `(target, source, recording)` order, so `by_body` lists are identical
//! at any thread count.
//!
//! **Recording order** is shard-major: [`derivations`](ProvGraph::derivations)
//! yields shard 0's records in local recording order, then shard 1's, and
//! so on. Each shard's local sequence is deterministic (sinks drain their
//! routed firings in fixed task order), so the flattened sequence is
//! byte-comparable across thread counts — the parity suite diffs it
//! verbatim.

use crate::ast::RuleId;
use crate::node::NodeId;
use orchestra_provenance::{Monomial, Polynomial, Semiring};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;

/// One rule firing: `head` was derived by `rule` from the `body` nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Derivation {
    /// The rule that fired.
    pub rule: RuleId,
    /// The derived node.
    pub head: NodeId,
    /// The body nodes, in rule-body order.
    pub body: Vec<NodeId>,
}

/// Reference to a derivation record: owning shard in the high bits, local
/// index in the low bits — the same packing rule as [`NodeId`], so one
/// `u32` per adjacency entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct DerivRef(u32);

impl DerivRef {
    #[inline]
    fn new(shard: usize, local: usize) -> DerivRef {
        // 2^24 derivations per shard is an accepted engine limit
        // (mirrors the NodeId packing).
        assert!(
            local <= ((1usize << NodeId::LOCAL_BITS) - 1),
            "derivation shard overflow"
        );
        DerivRef(((shard as u32) << NodeId::LOCAL_BITS) | local as u32)
    }

    #[inline]
    fn shard(self) -> usize {
        (self.0 >> NodeId::LOCAL_BITS) as usize
    }

    #[inline]
    fn local(self) -> usize {
        (self.0 & ((1 << NodeId::LOCAL_BITS) - 1)) as usize
    }
}

/// A staged cross-shard body edge: "local node `body_local` of the target
/// shard is used by derivation `dref`". Opaque to the engine — it only
/// moves outboxes between writers.
#[derive(Debug, Clone, Copy)]
pub struct CrossEdge {
    body_local: u32,
    dref: DerivRef,
}

/// One shard of the provenance graph (see module docs). All indexes are
/// keyed by **local** node index; `by_body` entries may reference
/// derivations in other shards (a body node used by a foreign head).
#[derive(Debug, Clone, Default)]
pub struct ProvShard {
    derivations: Vec<Derivation>,
    /// local head node index → local indexes of its derivations. A
    /// derivation always lives in its head's shard, so these entries are
    /// plain local indexes.
    by_head: Vec<Vec<u32>>,
    /// local body node index → derivations (any shard) using it.
    by_body: Vec<Vec<DerivRef>>,
    /// Dedup filter: `(local head, fingerprint(rule, body))` of every
    /// recorded derivation. A miss proves the derivation is new without
    /// scanning; a hit falls back to structurally comparing the head's
    /// (usually tiny) derivation list, so hash collisions cannot drop
    /// records.
    seen: HashSet<(u32, u64)>,
}

impl ProvShard {
    /// Record a derivation owned by this shard (`d.head.shard()` is this
    /// shard). Own-shard body edges are applied directly; cross-shard
    /// edges are pushed onto `outbox[target]`. Returns `true` if new.
    fn record(
        &mut self,
        shard: usize,
        d: Derivation,
        fp: u64,
        outbox: &mut [Vec<CrossEdge>],
    ) -> bool {
        debug_assert_eq!(d.head.shard(), shard, "derivation routed to wrong shard");
        let local_head = d.head.local() as u32;
        let key = (local_head, fp);
        if self.seen.contains(&key) {
            // Possible duplicate — confirm structurally (collisions on the
            // fingerprint must not drop genuine derivations).
            if let Some(idxs) = self.by_head.get(local_head as usize) {
                if idxs.iter().any(|&i| self.derivations[i as usize] == d) {
                    return false;
                }
            }
        }
        self.seen.insert(key);
        let local = self.derivations.len();
        let dref = DerivRef::new(shard, local);
        push_adj(&mut self.by_head, local_head as usize, local as u32);
        for b in &d.body {
            if b.shard() == shard {
                push_adj(&mut self.by_body, b.local(), dref);
            } else {
                outbox[b.shard()].push(CrossEdge {
                    body_local: b.local() as u32,
                    dref,
                });
            }
        }
        self.derivations.push(d);
        true
    }
}

/// The provenance graph over interned nodes, partitioned per shard (see
/// module docs).
#[derive(Debug, Clone, Default)]
pub struct ProvGraph {
    /// Grown lazily for the sequential API (hand-built graphs with flat
    /// shard-0 ids never see a second shard); the engine pre-grows to its
    /// configured shard count via [`ensure_shards`](Self::ensure_shards).
    shards: Vec<ProvShard>,
    /// Nodes asserted as base facts (EDB / peer-published inserts).
    base: BTreeSet<NodeId>,
}

/// The dedup fingerprint of a derivation's `(rule, body)` — pure, so the
/// engine's parallel join phase can precompute it off the merge thread.
pub fn derivation_fingerprint(rule: &RuleId, body: &[NodeId]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    rule.hash(&mut h);
    // Matches `Vec<NodeId>`'s Hash (length prefix + elements).
    body.hash(&mut h);
    h.finish()
}

fn fingerprint(d: &Derivation) -> u64 {
    derivation_fingerprint(&d.rule, &d.body)
}

fn push_adj<T>(adj: &mut Vec<Vec<T>>, i: usize, entry: T) {
    if adj.len() <= i {
        adj.resize_with(i + 1, Vec::new);
    }
    adj[i].push(entry);
}

/// A disjoint mutable view of one provenance shard, for the engine's
/// partitioned merge: sink `s` records every firing whose head routes to
/// shard `s` without touching any other shard. Cross-shard body edges
/// accumulate in the writer's outbox; the engine transposes outboxes
/// after the record pass and each writer splices its inbox (see
/// [`ProvGraph::transpose_outboxes`]).
#[derive(Debug)]
pub struct ProvShardWriter<'a> {
    shard: usize,
    inner: &'a mut ProvShard,
    /// Staged cross-shard body edges, by target shard.
    outbox: Vec<Vec<CrossEdge>>,
}

impl ProvShardWriter<'_> {
    /// Record a derivation routed to this shard, with its `(rule, body)`
    /// fingerprint precomputed (see [`derivation_fingerprint`]). Returns
    /// `true` if new.
    pub fn add_derivation_fp(&mut self, d: Derivation, fp: u64) -> bool {
        debug_assert_eq!(fp, fingerprint(&d), "mismatched precomputed fingerprint");
        self.inner.record(self.shard, d, fp, &mut self.outbox)
    }

    /// Take the staged cross-shard edges (by target shard), leaving the
    /// outbox empty.
    pub fn take_outbox(&mut self) -> Vec<Vec<CrossEdge>> {
        std::mem::take(&mut self.outbox)
    }

    /// Splice edges targeted at this shard, one `Vec` per **source**
    /// shard in shard order — the fixed `(target, source, recording)`
    /// order that keeps `by_body` lists thread-count-independent.
    pub fn splice_inbox(&mut self, inbox_by_source: Vec<Vec<CrossEdge>>) {
        for edges in inbox_by_source {
            for e in edges {
                push_adj(&mut self.inner.by_body, e.body_local as usize, e.dref);
            }
        }
    }
}

impl ProvGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ProvGraph::default()
    }

    /// Grow to at least `n` shards (never shrinks). The engine calls this
    /// once with its configured shard count so [`shard_writers`](Self::shard_writers)
    /// returns one writer per sink.
    pub fn ensure_shards(&mut self, n: usize) {
        if self.shards.len() < n {
            self.shards.resize_with(n, ProvShard::default);
        }
    }

    /// Number of shards materialized so far.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One disjoint mutable writer per materialized shard, in shard
    /// order.
    pub fn shard_writers(&mut self) -> Vec<ProvShardWriter<'_>> {
        let n = self.shards.len();
        self.shards
            .iter_mut()
            .enumerate()
            .map(|(shard, inner)| ProvShardWriter {
                shard,
                inner,
                outbox: (0..n).map(|_| Vec::new()).collect(),
            })
            .collect()
    }

    /// Transpose per-writer outboxes (`[source][target]`) into per-writer
    /// inboxes (`[target][source]`) for [`ProvShardWriter::splice_inbox`].
    pub fn transpose_outboxes(outboxes: Vec<Vec<Vec<CrossEdge>>>) -> Vec<Vec<Vec<CrossEdge>>> {
        let n = outboxes.len();
        let mut inboxes: Vec<Vec<Vec<CrossEdge>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        for per_target in outboxes {
            // Source shards arrive in shard order; each target collects
            // its slice, preserving that order.
            for (t, edges) in per_target.into_iter().enumerate() {
                inboxes[t].push(edges);
            }
        }
        inboxes
    }

    /// Mark a node as a base fact.
    pub fn add_base(&mut self, node: NodeId) {
        self.base.insert(node);
    }

    /// Remove a node's base mark (it may remain derivable via rules).
    pub fn remove_base(&mut self, node: NodeId) -> bool {
        self.base.remove(&node)
    }

    /// True iff the node is currently a base fact.
    pub fn is_base(&self, node: NodeId) -> bool {
        self.base.contains(&node)
    }

    /// The current base set.
    pub fn base_nodes(&self) -> &BTreeSet<NodeId> {
        &self.base
    }

    /// Record a derivation (deduplicated). Returns `true` if new.
    pub fn add_derivation(&mut self, d: Derivation) -> bool {
        let fp = fingerprint(&d);
        self.add_derivation_fp(d, fp)
    }

    /// [`add_derivation`](Self::add_derivation) with the `(rule, body)`
    /// fingerprint precomputed (see [`derivation_fingerprint`]) — the
    /// sequential recording path (deletion replay, hand-built graphs):
    /// routes to the head's shard and applies cross-shard body edges
    /// inline.
    pub fn add_derivation_fp(&mut self, d: Derivation, fp: u64) -> bool {
        debug_assert_eq!(fp, fingerprint(&d), "mismatched precomputed fingerprint");
        let max_shard = d
            .body
            .iter()
            .map(|b| b.shard())
            .chain([d.head.shard()])
            .max()
            .unwrap_or(0);
        self.ensure_shards(max_shard + 1);
        let s = d.head.shard();
        let n = self.shards.len();
        let mut outbox: Vec<Vec<CrossEdge>> = (0..n).map(|_| Vec::new()).collect();
        let added = self.shards[s].record(s, d, fp, &mut outbox);
        for (t, edges) in outbox.into_iter().enumerate() {
            for e in edges {
                push_adj(&mut self.shards[t].by_body, e.body_local as usize, e.dref);
            }
        }
        added
    }

    #[inline]
    fn deref_derivation(&self, r: DerivRef) -> &Derivation {
        &self.shards[r.shard()].derivations[r.local()]
    }

    /// All derivations of a node.
    pub fn derivations_of(&self, node: NodeId) -> impl Iterator<Item = &Derivation> {
        let shard = self.shards.get(node.shard());
        shard
            .and_then(|s| s.by_head.get(node.local()))
            .into_iter()
            .flatten()
            .map(move |&i| {
                // analyze: allow(panic) -- `shard` is Some whenever the adjacency entry exists
                &shard.unwrap().derivations[i as usize]
            })
    }

    /// All derivations using a node in their body.
    pub fn uses_of(&self, node: NodeId) -> impl Iterator<Item = &Derivation> {
        self.shards
            .get(node.shard())
            .and_then(|s| s.by_body.get(node.local()))
            .into_iter()
            .flatten()
            .map(move |&r| self.deref_derivation(r))
    }

    /// Total number of derivation records.
    pub fn num_derivations(&self) -> usize {
        self.shards.iter().map(|s| s.derivations.len()).sum()
    }

    /// All derivation records, in **shard-major recording order** (shard
    /// 0's records in local order, then shard 1's, …). Each shard's local
    /// sequence is deterministic under the engine's merge, so this
    /// sequence is comparable across engines at any thread count (the
    /// parity suite diffs it verbatim).
    pub fn derivations(&self) -> impl Iterator<Item = &Derivation> {
        self.shards.iter().flat_map(|s| s.derivations.iter())
    }

    /// Well-founded derivability: the least set containing the (alive) base
    /// facts and closed under derivations. `dead` removes base facts
    /// *before* the fixpoint — this is exactly the provenance-based
    /// deletion-propagation test: cyclic derivations with no base support
    /// die, matching the least-fixpoint semantics of the mapping program.
    pub fn derivable_set(&self, dead: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        // Worklist over derivations with a per-shard satisfied-body
        // counter, indexed [shard][local derivation].
        let mut remaining: Vec<Vec<usize>> = self
            .shards
            .iter()
            .map(|s| s.derivations.iter().map(|d| d.body.len()).collect())
            .collect();
        let mut derivable: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for &b in &self.base {
            if !dead.contains(&b) && derivable.insert(b) {
                queue.push_back(b);
            }
        }
        // Derivations with empty bodies cannot exist (rules are safe with
        // non-empty bodies), but guard anyway.
        for s in &self.shards {
            for d in &s.derivations {
                if d.body.is_empty() && derivable.insert(d.head) {
                    queue.push_back(d.head);
                }
            }
        }
        while let Some(n) = queue.pop_front() {
            let Some(uses) = self
                .shards
                .get(n.shard())
                .and_then(|s| s.by_body.get(n.local()))
            else {
                continue;
            };
            for &r in uses {
                let d = self.deref_derivation(r);
                // A node occurring k times in one body decrements k times,
                // matching body.len() counting.
                let slot = &mut remaining[r.shard()][r.local()];
                *slot = slot.saturating_sub(d.body.iter().filter(|&&b| b == n).count());
                if *slot == 0 {
                    let head = d.head;
                    if derivable.insert(head) {
                        queue.push_back(head);
                    }
                }
            }
        }
        derivable
    }

    /// True iff `node` is well-foundedly derivable after deleting `dead`
    /// base facts.
    pub fn is_derivable(&self, node: NodeId, dead: &BTreeSet<NodeId>) -> bool {
        self.derivable_set(dead).contains(&node)
    }

    /// The provenance polynomial of a node in N\[X\], X = base node ids,
    /// summing over **simple proofs** (proof trees that do not repeat a
    /// node along any root-to-leaf path — finite even for recursive
    /// programs; for non-recursive programs this is exactly the standard
    /// polynomial).
    pub fn polynomial(&self, node: NodeId) -> Polynomial<NodeId> {
        let mut path: HashSet<NodeId> = HashSet::new();
        self.poly_rec(node, &mut path)
    }

    fn poly_rec(&self, node: NodeId, path: &mut HashSet<NodeId>) -> Polynomial<NodeId> {
        let mut acc = if self.base.contains(&node) {
            Polynomial::var(node)
        } else {
            Polynomial::zero()
        };
        if !path.insert(node) {
            // Node already on the current path: no simple proof this way.
            return Polynomial::zero();
        }
        for d in self.derivations_of(node) {
            let mut term = Polynomial::one();
            for &b in &d.body {
                let sub = self.poly_rec(b, path);
                if sub.is_zero() {
                    term = Polynomial::zero();
                    break;
                }
                term = term.times(&sub);
            }
            acc.plus_assign(&term);
        }
        path.remove(&node);
        acc
    }

    /// Evaluate the node's provenance in any commutative semiring by
    /// assigning values to base nodes (over simple proofs, like
    /// [`polynomial`](Self::polynomial)).
    pub fn eval<S: Semiring>(&self, node: NodeId, f: impl Fn(NodeId) -> S) -> S {
        self.polynomial(node).eval(|v| f(*v))
    }

    /// The base nodes of the node's **canonical proof**: follow each
    /// node's chronologically first derivation (or its own base fact).
    ///
    /// Because the first derivation of a node was recorded when the node
    /// first appeared, its body nodes all predate it — the canonical proof
    /// is well-founded by construction, so this runs in linear time with
    /// no cycle handling. Update translation uses it to attribute origins
    /// and derive antecedents: it names exactly the transactions whose
    /// data actually produced the tuple, without the exponential cost of
    /// enumerating every simple proof ([`polynomial`](Self::polynomial))
    /// and without the over-approximation of raw reachability
    /// ([`lineage`](Self::lineage)), which pseudo-cyclic derivations in
    /// recursive mapping programs would pollute.
    pub fn first_proof_lineage(&self, node: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        let mut visited: HashSet<NodeId> = HashSet::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if !visited.insert(n) {
                continue;
            }
            if self.base.contains(&n) {
                out.insert(n);
                continue;
            }
            if let Some(d) = self.derivations_of(n).next() {
                stack.extend(d.body.iter().copied());
            }
        }
        out
    }

    /// The set of base nodes a node's provenance mentions (its lineage).
    pub fn lineage(&self, node: NodeId) -> BTreeSet<NodeId> {
        // Reachability to base nodes through derivations.
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut out: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        queue.push_back(node);
        seen.insert(node);
        while let Some(n) = queue.pop_front() {
            if self.base.contains(&n) {
                out.insert(n);
            }
            for d in self.derivations_of(n) {
                for &b in &d.body {
                    if seen.insert(b) {
                        queue.push_back(b);
                    }
                }
            }
        }
        out
    }

    /// Monomial of one derivation's direct body (helper for displays).
    pub fn derivation_monomial(d: &Derivation) -> Monomial<NodeId> {
        Monomial::from_pairs(d.body.iter().map(|&b| (b, 1)))
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⇐ {}(", self.head, self.rule)?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_provenance::Boolean;
    use std::sync::Arc;

    fn rid(s: &str) -> RuleId {
        Arc::from(s)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn deriv(rule: &str, head: u32, body: &[u32]) -> Derivation {
        Derivation {
            rule: rid(rule),
            head: n(head),
            body: body.iter().map(|&b| n(b)).collect(),
        }
    }

    fn sderiv(rule: &str, head: NodeId, body: &[NodeId]) -> Derivation {
        Derivation {
            rule: rid(rule),
            head,
            body: body.to_vec(),
        }
    }

    /// base 0, 1; 2 ⇐ m1(0,1); 3 ⇐ m2(2); 3 ⇐ m3(1).
    fn diamond() -> ProvGraph {
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        g.add_base(n(1));
        g.add_derivation(deriv("m1", 2, &[0, 1]));
        g.add_derivation(deriv("m2", 3, &[2]));
        g.add_derivation(deriv("m3", 3, &[1]));
        g
    }

    #[test]
    fn dedup_derivations() {
        let mut g = ProvGraph::new();
        assert!(g.add_derivation(deriv("m", 1, &[0])));
        assert!(!g.add_derivation(deriv("m", 1, &[0])));
        assert_eq!(g.num_derivations(), 1);
    }

    #[test]
    fn base_flags() {
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        assert!(g.is_base(n(0)));
        assert!(g.remove_base(n(0)));
        assert!(!g.is_base(n(0)));
        assert!(!g.remove_base(n(0)));
    }

    #[test]
    fn derivable_set_full() {
        let g = diamond();
        let d = g.derivable_set(&BTreeSet::new());
        assert_eq!(d, BTreeSet::from([n(0), n(1), n(2), n(3)]));
    }

    #[test]
    fn derivable_set_after_deletion() {
        let g = diamond();
        // Kill node 0: 2 dies (needs both 0 and 1), 3 survives via m3(1).
        let d = g.derivable_set(&BTreeSet::from([n(0)]));
        assert_eq!(d, BTreeSet::from([n(1), n(3)]));
        // Kill node 1: everything but 0 dies.
        let d = g.derivable_set(&BTreeSet::from([n(1)]));
        assert_eq!(d, BTreeSet::from([n(0)]));
        assert!(g.is_derivable(n(3), &BTreeSet::from([n(0)])));
        assert!(!g.is_derivable(n(2), &BTreeSet::from([n(0)])));
    }

    #[test]
    fn cyclic_support_is_not_well_founded() {
        // 1 ⇐ m(2), 2 ⇐ m'(1): a cycle with no base support must die.
        let mut g = ProvGraph::new();
        g.add_derivation(deriv("m", 1, &[2]));
        g.add_derivation(deriv("m'", 2, &[1]));
        let d = g.derivable_set(&BTreeSet::new());
        assert!(d.is_empty());
        // Give 1 base support: both become derivable.
        g.add_base(n(1));
        let d = g.derivable_set(&BTreeSet::new());
        assert_eq!(d, BTreeSet::from([n(1), n(2)]));
    }

    #[test]
    fn duplicate_body_node_requires_single_derivation() {
        // 2 ⇐ m(0,0): node 0 appears twice in the body.
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        g.add_derivation(deriv("m", 2, &[0, 0]));
        let d = g.derivable_set(&BTreeSet::new());
        assert!(d.contains(&n(2)));
    }

    #[test]
    fn polynomial_of_base_node() {
        let g = diamond();
        assert_eq!(g.polynomial(n(0)), Polynomial::var(n(0)));
    }

    #[test]
    fn polynomial_of_derived_nodes() {
        let g = diamond();
        // node 2 = x0 · x1.
        let p2 = g.polynomial(n(2));
        assert_eq!(p2, Polynomial::var(n(0)).times(&Polynomial::var(n(1))));
        // node 3 = x0·x1 + x1.
        let p3 = g.polynomial(n(3));
        assert_eq!(p3.num_terms(), 2);
        assert!(p3.mentions(&n(0)));
        assert!(p3.mentions(&n(1)));
    }

    #[test]
    fn polynomial_handles_cycles_via_simple_proofs() {
        // Identity loop: A(t) base; B(t) ⇐ id1(A(t)); A(t) ⇐ id2(B(t)).
        let mut g = ProvGraph::new();
        g.add_base(n(0)); // A(t)
        g.add_derivation(deriv("id1", 1, &[0])); // B(t) from A(t)
        g.add_derivation(deriv("id2", 0, &[1])); // A(t) from B(t)
        let pa = g.polynomial(n(0));
        // Simple proofs of A(t): base only (the round trip repeats A(t)).
        assert_eq!(pa, Polynomial::var(n(0)));
        let pb = g.polynomial(n(1));
        assert_eq!(pb, Polynomial::var(n(0)));
    }

    #[test]
    fn derived_and_base_node_sums_both() {
        // Node 1 is base AND derivable from 0.
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        g.add_base(n(1));
        g.add_derivation(deriv("m", 1, &[0]));
        let p = g.polynomial(n(1));
        // x1 + x0.
        assert_eq!(p, Polynomial::var(n(1)).plus(&Polynomial::var(n(0))));
    }

    #[test]
    fn eval_boolean_matches_derivability() {
        let g = diamond();
        for dead in [
            BTreeSet::new(),
            BTreeSet::from([n(0)]),
            BTreeSet::from([n(1)]),
            BTreeSet::from([n(0), n(1)]),
        ] {
            for node in [n(2), n(3)] {
                let via_poly = g.eval(node, |b| Boolean(!dead.contains(&b)));
                assert_eq!(
                    via_poly.0,
                    g.is_derivable(node, &dead),
                    "node {node}, dead {dead:?}"
                );
            }
        }
    }

    #[test]
    fn lineage_reaches_base() {
        let g = diamond();
        assert_eq!(g.lineage(n(3)), BTreeSet::from([n(0), n(1)]));
        assert_eq!(g.lineage(n(0)), BTreeSet::from([n(0)]));
    }

    #[test]
    fn uses_and_derivations_of() {
        let g = diamond();
        assert_eq!(g.derivations_of(n(3)).count(), 2);
        assert_eq!(g.uses_of(n(1)).count(), 2); // m1 and m3
        assert_eq!(g.uses_of(n(3)).count(), 0);
    }

    #[test]
    fn display_derivation() {
        let d = deriv("m1", 2, &[0, 1]);
        assert_eq!(d.to_string(), "n2 ⇐ m1(n0,n1)");
    }

    #[test]
    fn first_proof_lineage_follows_first_derivation() {
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        g.add_base(n(1));
        // Node 2 first derived from 0, later also from 1.
        g.add_derivation(deriv("m1", 2, &[0]));
        g.add_derivation(deriv("m2", 2, &[1]));
        assert_eq!(g.first_proof_lineage(n(2)), BTreeSet::from([n(0)]));
        // Full lineage sees both.
        assert_eq!(g.lineage(n(2)), BTreeSet::from([n(0), n(1)]));
    }

    #[test]
    fn first_proof_lineage_of_base_is_itself() {
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        // Base nodes stop the walk even if they are also derived.
        g.add_base(n(1));
        g.add_derivation(deriv("m", 1, &[0]));
        assert_eq!(g.first_proof_lineage(n(1)), BTreeSet::from([n(1)]));
        assert_eq!(g.first_proof_lineage(n(0)), BTreeSet::from([n(0)]));
    }

    #[test]
    fn first_proof_lineage_excludes_pseudo_cyclic_support() {
        // The scenario-4 pattern: node 3's first proof uses bases 0,1;
        // a later derivation routes through node 4, which derives from an
        // unrelated base 2. Reachability would include 2; the canonical
        // proof must not.
        let mut g = ProvGraph::new();
        g.add_base(n(0));
        g.add_base(n(1));
        g.add_base(n(2));
        g.add_derivation(deriv("join", 3, &[0, 1])); // first proof
        g.add_derivation(deriv("echo", 4, &[2]));
        g.add_derivation(deriv("rejoin", 3, &[4])); // later alternative
        assert_eq!(g.first_proof_lineage(n(3)), BTreeSet::from([n(0), n(1)]));
        assert_eq!(g.lineage(n(3)), BTreeSet::from([n(0), n(1), n(2)]));
    }

    #[test]
    fn first_proof_lineage_of_unsupported_node_is_empty() {
        let mut g = ProvGraph::new();
        g.add_derivation(deriv("m", 1, &[0])); // body 0 is not base
        assert!(g.first_proof_lineage(n(1)).is_empty());
    }

    #[test]
    fn cross_shard_derivations_route_to_head_shard() {
        // Heads in shards 1 and 2, bodies scattered across shards 0–2.
        let mut g = ProvGraph::new();
        let b0 = NodeId::new(0, 0);
        let b1 = NodeId::new(1, 0);
        let h1 = NodeId::new(1, 1);
        let h2 = NodeId::new(2, 0);
        g.add_base(b0);
        g.add_base(b1);
        g.add_derivation(sderiv("m1", h1, &[b0, b1]));
        g.add_derivation(sderiv("m2", h2, &[h1, b0]));
        assert_eq!(g.num_derivations(), 2);
        // Adjacency works across the shard boundary in both directions.
        assert_eq!(g.derivations_of(h1).count(), 1);
        assert_eq!(g.uses_of(b0).count(), 2, "b0 used by m1 (s1) and m2 (s2)");
        assert_eq!(g.uses_of(h1).count(), 1);
        // Well-founded derivability sees through shards.
        let full = g.derivable_set(&BTreeSet::new());
        assert_eq!(full, BTreeSet::from([b0, b1, h1, h2]));
        let dead = g.derivable_set(&BTreeSet::from([b1]));
        assert_eq!(dead, BTreeSet::from([b0]), "h1 and h2 lose support");
        assert_eq!(g.lineage(h2), BTreeSet::from([b0, b1]));
        assert_eq!(g.first_proof_lineage(h2), BTreeSet::from([b0, b1]));
        // Dedup is per (head shard, fingerprint).
        assert!(!g.add_derivation(sderiv("m1", h1, &[b0, b1])));
    }

    #[test]
    fn derivations_iterate_shard_major() {
        let mut g = ProvGraph::new();
        let h2 = NodeId::new(2, 0);
        let h0 = NodeId::new(0, 0);
        let b = NodeId::new(1, 0);
        g.add_derivation(sderiv("late_shard", h2, &[b]));
        g.add_derivation(sderiv("early_shard", h0, &[b]));
        let rules: Vec<&str> = g.derivations().map(|d| d.rule.as_ref()).collect();
        // Shard-major: shard 0's record first even though it was added second.
        assert_eq!(rules, ["early_shard", "late_shard"]);
    }

    #[test]
    fn writer_pass_matches_sequential_recording() {
        // The same derivations recorded (a) sequentially and (b) through
        // per-shard writers + outbox splice must produce identical
        // adjacency, dedup, and iteration order.
        let b0 = NodeId::new(0, 0);
        let b1 = NodeId::new(1, 0);
        let h1 = NodeId::new(1, 1);
        let h2 = NodeId::new(2, 0);
        let ds = [
            sderiv("m1", h1, &[b0, b1]),
            sderiv("m2", h2, &[h1, b0]),
            sderiv("m1", h1, &[b0, b1]), // duplicate
        ];

        let mut seq = ProvGraph::new();
        seq.ensure_shards(3);
        let added_seq: Vec<bool> = ds.iter().map(|d| seq.add_derivation(d.clone())).collect();

        let mut par = ProvGraph::new();
        par.ensure_shards(3);
        let mut added_par = Vec::new();
        let mut writers = par.shard_writers();
        for d in &ds {
            let fp = derivation_fingerprint(&d.rule, &d.body);
            added_par.push(writers[d.head.shard()].add_derivation_fp(d.clone(), fp));
        }
        let outboxes: Vec<_> = writers.iter_mut().map(|w| w.take_outbox()).collect();
        let inboxes = ProvGraph::transpose_outboxes(outboxes);
        for (w, inbox) in writers.iter_mut().zip(inboxes) {
            w.splice_inbox(inbox);
        }
        drop(writers);

        assert_eq!(added_seq, added_par);
        assert_eq!(added_seq, vec![true, true, false]);
        let a: Vec<_> = seq.derivations().collect();
        let b: Vec<_> = par.derivations().collect();
        assert_eq!(a, b);
        for node in [b0, b1, h1, h2] {
            let ua: Vec<_> = seq.uses_of(node).collect();
            let ub: Vec<_> = par.uses_of(node).collect();
            assert_eq!(ua, ub, "uses_of({node})");
            let da: Vec<_> = seq.derivations_of(node).collect();
            let db: Vec<_> = par.derivations_of(node).collect();
            assert_eq!(da, db, "derivations_of({node})");
        }
    }
}
