//! Conjunctive queries over peer-local instances.
//!
//! Peers "spend the majority of their time operating in a locally
//! autonomous mode, with users posing queries … directly over a local
//! database instance" (§2). This module gives that local query capability:
//! conjunctive queries with comparison filters, evaluated against an
//! [`Instance`] by backtracking join.

use crate::ast::{Atom, Filter, Term};
use crate::error::DatalogError;
use crate::Result;
use orchestra_relational::{Instance, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A conjunctive query: `select x̄ where body, filters`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Variables to project, in output order.
    pub select: Vec<Arc<str>>,
    /// Body atoms.
    pub body: Vec<Atom>,
    /// Comparison filters.
    pub filters: Vec<Filter>,
}

impl Query {
    /// Build a query, checking that selected and filter variables are bound
    /// by the body.
    pub fn new(select: &[&str], body: Vec<Atom>, filters: Vec<Filter>) -> Result<Query> {
        if body.is_empty() {
            return Err(DatalogError::InvalidTgd("query body is empty".into()));
        }
        let mut bound = std::collections::BTreeSet::new();
        for a in &body {
            bound.extend(a.variables());
        }
        for s in select {
            if !bound.contains(*s) {
                return Err(DatalogError::UnsafeRule {
                    rule: "<query>".into(),
                    variable: s.to_string(),
                });
            }
        }
        for f in &filters {
            for v in f.variables() {
                if !bound.contains(&v) {
                    return Err(DatalogError::UnsafeRule {
                        rule: "<query>".into(),
                        variable: v.to_string(),
                    });
                }
            }
        }
        Ok(Query {
            select: select.iter().map(|s| Arc::from(*s)).collect(),
            body,
            filters,
        })
    }

    /// Evaluate against an instance, returning projected rows (sorted,
    /// deduplicated — set semantics). Labeled nulls join like ordinary
    /// values (naive-table evaluation).
    pub fn eval(&self, instance: &Instance) -> Result<Vec<Tuple>> {
        let mut bindings: BTreeMap<Arc<str>, Value> = BTreeMap::new();
        let mut out: Vec<Tuple> = Vec::new();
        self.eval_rec(instance, 0, &mut bindings, &mut out)?;
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Evaluate returning **certain answers** over an instance containing
    /// labeled nulls (a universal solution produced by update exchange).
    ///
    /// Standard data-exchange result: for unions of conjunctive queries,
    /// naive evaluation followed by discarding rows that contain labeled
    /// nulls yields exactly the certain answers. Rows whose projected
    /// columns are all constants hold in *every* possible world; rows with
    /// an invented id may not.
    pub fn eval_certain(&self, instance: &Instance) -> Result<Vec<Tuple>> {
        Ok(self
            .eval(instance)?
            .into_iter()
            .filter(|t| !t.has_labeled_null())
            .collect())
    }

    fn eval_rec(
        &self,
        instance: &Instance,
        depth: usize,
        bindings: &mut BTreeMap<Arc<str>, Value>,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        if depth == self.body.len() {
            // Check filters (all variables bound by now — enforced in new).
            for f in &self.filters {
                let l = Self::term_value(&f.left, bindings)?;
                let r = Self::term_value(&f.right, bindings)?;
                if !f.op.apply(&l, &r) {
                    return Ok(());
                }
            }
            let row: Vec<Value> = self.select.iter().map(|v| bindings[v].clone()).collect();
            out.push(Tuple::new(row));
            return Ok(());
        }
        let atom = &self.body[depth];
        let rel = instance
            .relation(&atom.relation)
            .map_err(|_| DatalogError::UnknownRelation(atom.relation.to_string()))?;
        if rel.schema().arity() != atom.arity() {
            return Err(DatalogError::ArityMismatch {
                relation: atom.relation.to_string(),
                expected: rel.schema().arity(),
                actual: atom.arity(),
            });
        }
        'tuples: for t in rel.iter() {
            let mut newly: Vec<Arc<str>> = Vec::new();
            for (i, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if &t[i] != c {
                            for v in &newly {
                                bindings.remove(v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => {
                        if let Some(bound) = bindings.get(v) {
                            if bound != &t[i] {
                                for v in &newly {
                                    bindings.remove(v);
                                }
                                continue 'tuples;
                            }
                        } else {
                            bindings.insert(Arc::clone(v), t[i].clone());
                            newly.push(Arc::clone(v));
                        }
                    }
                    Term::Skolem { .. } => {
                        return Err(DatalogError::InvalidTgd(
                            "Skolem terms are not allowed in query bodies".into(),
                        ));
                    }
                }
            }
            self.eval_rec(instance, depth + 1, bindings, out)?;
            for v in &newly {
                bindings.remove(v);
            }
        }
        Ok(())
    }

    fn term_value(term: &Term, bindings: &BTreeMap<Arc<str>, Value>) -> Result<Value> {
        match term {
            Term::Const(c) => Ok(c.clone()),
            Term::Var(v) => Ok(bindings[v].clone()),
            Term::Skolem { .. } => Err(DatalogError::InvalidTgd(
                "Skolem terms are not allowed in query filters".into(),
            )),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        for (i, v) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, " where ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        for filt in &self.filters {
            write!(f, ", {filt}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_relational::{tuple, CmpOp, DatabaseSchema, RelationSchema, ValueType};

    fn instance() -> Instance {
        let db = DatabaseSchema::new("bio")
            .with_relation(
                RelationSchema::from_parts(
                    "O",
                    &[("org", ValueType::Str), ("oid", ValueType::Int)],
                )
                .unwrap(),
            )
            .unwrap()
            .with_relation(
                RelationSchema::from_parts(
                    "S",
                    &[
                        ("oid", ValueType::Int),
                        ("pid", ValueType::Int),
                        ("seq", ValueType::Str),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let mut inst = Instance::new(db);
        inst.insert("O", tuple!["HIV", 1]).unwrap();
        inst.insert("O", tuple!["Plasmodium", 2]).unwrap();
        inst.insert("S", tuple![1, 10, "MRV"]).unwrap();
        inst.insert("S", tuple![1, 11, "AVG"]).unwrap();
        inst.insert("S", tuple![2, 10, "KKL"]).unwrap();
        inst
    }

    #[test]
    fn single_atom_scan() {
        let q = Query::new(&["org"], vec![Atom::vars("O", &["org", "oid"])], vec![]).unwrap();
        let rows = q.eval(&instance()).unwrap();
        assert_eq!(rows, vec![tuple!["HIV"], tuple!["Plasmodium"]]);
    }

    #[test]
    fn join_two_atoms() {
        // Sequences of HIV: select seq where O('HIV'? no — org var) ...
        let q = Query::new(
            &["org", "seq"],
            vec![
                Atom::vars("O", &["org", "oid"]),
                Atom::vars("S", &["oid", "pid", "seq"]),
            ],
            vec![],
        )
        .unwrap();
        let rows = q.eval(&instance()).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.contains(&tuple!["HIV", "MRV"]));
        assert!(rows.contains(&tuple!["Plasmodium", "KKL"]));
    }

    #[test]
    fn constants_filter_in_atom() {
        let q = Query::new(
            &["seq"],
            vec![
                Atom::new("O", vec![Term::val("HIV"), Term::var("oid")]),
                Atom::vars("S", &["oid", "pid", "seq"]),
            ],
            vec![],
        )
        .unwrap();
        let rows = q.eval(&instance()).unwrap();
        assert_eq!(rows, vec![tuple!["AVG"], tuple!["MRV"]]);
    }

    #[test]
    fn comparison_filters() {
        let q = Query::new(
            &["pid"],
            vec![Atom::vars("S", &["oid", "pid", "seq"])],
            vec![Filter::new(Term::var("pid"), CmpOp::Gt, Term::val(10))],
        )
        .unwrap();
        let rows = q.eval(&instance()).unwrap();
        assert_eq!(rows, vec![tuple![11]]);
    }

    #[test]
    fn set_semantics_dedupes() {
        let q = Query::new(
            &["pid"],
            vec![Atom::vars("S", &["oid", "pid", "seq"])],
            vec![],
        )
        .unwrap();
        let rows = q.eval(&instance()).unwrap();
        assert_eq!(rows, vec![tuple![10], tuple![11]]);
    }

    #[test]
    fn unsafe_select_rejected() {
        let q = Query::new(&["zzz"], vec![Atom::vars("O", &["org", "oid"])], vec![]);
        assert!(q.is_err());
    }

    #[test]
    fn unknown_relation_errors_at_eval() {
        let q = Query::new(&["x"], vec![Atom::vars("Nope", &["x"])], vec![]).unwrap();
        assert!(q.eval(&instance()).is_err());
    }

    #[test]
    fn arity_mismatch_errors_at_eval() {
        let q = Query::new(&["x"], vec![Atom::vars("O", &["x"])], vec![]).unwrap();
        assert!(matches!(
            q.eval(&instance()),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn display() {
        let q = Query::new(
            &["org"],
            vec![Atom::vars("O", &["org", "oid"])],
            vec![Filter::new(Term::var("oid"), CmpOp::Gt, Term::val(0))],
        )
        .unwrap();
        assert_eq!(q.to_string(), "select org where O(org, oid), oid > 0");
    }

    #[test]
    fn empty_body_rejected() {
        assert!(Query::new(&[], vec![], vec![]).is_err());
    }

    #[test]
    fn certain_answers_drop_labeled_nulls() {
        use orchestra_relational::Value;
        let db = DatabaseSchema::new("u")
            .with_relation(
                RelationSchema::from_parts(
                    "O",
                    &[("org", ValueType::Str), ("oid", ValueType::Int)],
                )
                .unwrap(),
            )
            .unwrap();
        let mut inst = Instance::new(db);
        inst.insert("O", tuple!["HIV", 1]).unwrap();
        inst.insert(
            "O",
            Tuple::new(vec![
                Value::str("Rat"),
                Value::skolem("oid", vec![Value::str("Rat")]),
            ]),
        )
        .unwrap();
        // Asking for (org, oid): the invented id is not a certain answer.
        let q = Query::new(
            &["org", "oid"],
            vec![Atom::vars("O", &["org", "oid"])],
            vec![],
        )
        .unwrap();
        assert_eq!(q.eval(&inst).unwrap().len(), 2);
        assert_eq!(q.eval_certain(&inst).unwrap(), vec![tuple!["HIV", 1]]);
        // Projecting only org: both rows are certain.
        let q = Query::new(&["org"], vec![Atom::vars("O", &["org", "oid"])], vec![]).unwrap();
        assert_eq!(q.eval_certain(&inst).unwrap().len(), 2);
    }

    #[test]
    fn certain_answers_join_on_nulls_internally() {
        use orchestra_relational::Value;
        // S joins O on an invented id; the join goes through, and the
        // output is certain because only constants are projected.
        let db = DatabaseSchema::new("u")
            .with_relation(
                RelationSchema::from_parts(
                    "O",
                    &[("org", ValueType::Str), ("oid", ValueType::Int)],
                )
                .unwrap(),
            )
            .unwrap()
            .with_relation(
                RelationSchema::from_parts(
                    "S",
                    &[("oid", ValueType::Int), ("seq", ValueType::Str)],
                )
                .unwrap(),
            )
            .unwrap();
        let mut inst = Instance::new(db);
        let null_id = Value::skolem("oid", vec![Value::str("Rat")]);
        inst.insert("O", Tuple::new(vec![Value::str("Rat"), null_id.clone()]))
            .unwrap();
        inst.insert("S", Tuple::new(vec![null_id, Value::str("MEEP")]))
            .unwrap();
        let q = Query::new(
            &["org", "seq"],
            vec![
                Atom::vars("O", &["org", "oid"]),
                Atom::vars("S", &["oid", "seq"]),
            ],
            vec![],
        )
        .unwrap();
        assert_eq!(q.eval_certain(&inst).unwrap(), vec![tuple!["Rat", "MEEP"]]);
    }
}
