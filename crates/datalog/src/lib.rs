//! # orchestra-datalog
//!
//! The mapping and chase engine of the Orchestra CDSS: schema mappings
//! (tuple-generating dependencies) are compiled to datalog rules with Skolem
//! functions and evaluated by a semi-naive fixpoint engine that maintains a
//! **provenance graph** alongside the data — the formulation of Green,
//! Karvounarakis, Ives & Tannen, *Update exchange with mappings and
//! provenance* (the Orchestra paper's reference \[5\]).
//!
//! ## Why a provenance graph rather than polynomials directly?
//!
//! CDSS mapping programs are recursive (the paper's Figure 2 has identity
//! mappings `MA↔B`, `MC↔D` in both directions), so unfolded provenance
//! polynomials are infinite formal power series. Orchestra instead stores
//! one *derivation* record per rule firing — `(rule, body tuples) → head
//! tuple` — which is finite, supports well-founded derivability testing for
//! deletion propagation, and unfolds on demand into N\[X\] polynomials over
//! simple proofs ([`ProvGraph::polynomial`]).
//!
//! ## Layout
//!
//! * [`ast`] — terms, atoms, rules, filters; rules may carry Skolem terms
//!   in their heads.
//! * [`tgd`] — tuple-generating dependencies and their compilation to
//!   rules (skolemizing existential head variables).
//! * [`node`] — interning of `(relation, tuple)` pairs into dense node ids.
//! * [`provgraph`] — the derivation graph, well-founded derivability, and
//!   polynomial extraction.
//! * [`engine`] — the semi-naive fixpoint engine with incremental insert
//!   propagation and two deletion-propagation algorithms (provenance-based
//!   and DRed), plus a change log for update translation.
//! * [`merge`] — the partitioned merge phase: per-shard sinks that drain
//!   the join phase's routed firings concurrently.
//! * [`query`] — conjunctive queries over peer-local instances.

pub mod ast;
pub mod engine;
pub mod error;
pub mod merge;
pub mod node;
pub mod provgraph;
pub mod query;
pub mod tgd;

pub use ast::{Atom, Filter, Rule, RuleId, Term};
pub use engine::{
    Change, ChangeKind, DeletionAlgorithm, Engine, EngineStats, EvalOptions,
    DEFAULT_PARALLEL_THRESHOLD,
};
pub use error::DatalogError;
pub use node::{NodeId, NodeTable, RelId};
pub use provgraph::{Derivation, ProvGraph};
pub use query::Query;
pub use tgd::Tgd;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DatalogError>;
