//! The semi-naive fixpoint engine with provenance and incremental
//! maintenance.
//!
//! The engine owns the *materialized update-exchange state* of a CDSS
//! epoch: all peers' base (published) tuples, every tuple derivable through
//! the mapping program, and the provenance graph connecting them.
//!
//! Incremental behaviour — the point of the paper's provenance formulation:
//!
//! * **Insertions** enter a pending delta; [`Engine::propagate`] runs
//!   semi-naive evaluation from the delta only, touching work proportional
//!   to the new derivations rather than the whole database.
//! * **Deletions** are propagated by either of two algorithms
//!   ([`DeletionAlgorithm`]): the provenance-based test (restrict
//!   derivability to the affected subgraph — Orchestra's approach) or
//!   classic **DRed** (over-delete then re-derive by rule re-evaluation —
//!   the baseline), selected per call so benches can compare them
//!   (experiment E6).
//!
//! Every externally visible change to the materialized state is appended to
//! a change log ([`Engine::drain_changes`]) — update translation packages
//! those per-transaction (the `orchestra-core` crate).

use crate::ast::{Filter, Rule, RuleId, Term};
use crate::error::DatalogError;
use crate::node::{NodeId, NodeTable};
use crate::provgraph::{Derivation, ProvGraph};
use crate::Result;
use orchestra_provenance::Polynomial;
use orchestra_relational::{DatabaseSchema, Tuple, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Which deletion-propagation algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeletionAlgorithm {
    /// Orchestra's approach: test well-founded derivability over the
    /// affected region of the stored provenance graph.
    ProvenanceBased,
    /// The classic delete-and-rederive baseline: over-delete everything
    /// transitively derived through the deleted tuples by re-evaluating
    /// rules, then re-derive survivors from the remaining database.
    DRed,
}

/// Did a change add or remove a tuple?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeKind {
    /// The tuple became present.
    Added,
    /// The tuple became absent.
    Removed,
}

/// One externally visible change to the materialized state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Change {
    /// Relation the tuple belongs to.
    pub relation: Arc<str>,
    /// The tuple.
    pub tuple: Tuple,
    /// Added or removed.
    pub kind: ChangeKind,
    /// The tuple's interned node id.
    pub node: NodeId,
}

/// Aggregate counters, for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Semi-naive rounds executed.
    pub rounds: u64,
    /// Rule firings that produced a (possibly duplicate) head.
    pub firings: u64,
    /// Distinct derivation records added.
    pub derivations: u64,
    /// Tuples added to the materialized state.
    pub tuples_added: u64,
    /// Tuples removed from the materialized state.
    pub tuples_removed: u64,
}

/// One stored relation: alive tuples plus incrementally maintained hash
/// indexes on demand.
#[derive(Debug, Clone, Default)]
struct RelData {
    tuples: HashMap<Tuple, NodeId>,
    /// column set → (key values → tuples). Maintained through inserts and
    /// removals.
    indexes: HashMap<Vec<usize>, HashMap<Vec<Value>, Vec<Tuple>>>,
}

impl RelData {
    fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains_key(t)
    }

    fn insert(&mut self, t: Tuple, node: NodeId) {
        for (cols, idx) in self.indexes.iter_mut() {
            idx.entry(t.key_values(cols)).or_default().push(t.clone());
        }
        self.tuples.insert(t, node);
    }

    fn remove(&mut self, t: &Tuple) -> Option<NodeId> {
        let node = self.tuples.remove(t)?;
        for (cols, idx) in self.indexes.iter_mut() {
            if let Some(list) = idx.get_mut(&t.key_values(cols)) {
                if let Some(pos) = list.iter().position(|x| x == t) {
                    list.swap_remove(pos);
                }
            }
        }
        Some(node)
    }

    fn ensure_index(&mut self, cols: &[usize]) {
        if !self.indexes.contains_key(cols) {
            let mut idx: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
            for t in self.tuples.keys() {
                idx.entry(t.key_values(cols)).or_default().push(t.clone());
            }
            self.indexes.insert(cols.to_vec(), idx);
        }
    }

    fn probe(&self, cols: &[usize], vals: &[Value]) -> &[Tuple] {
        self.indexes
            .get(cols)
            .and_then(|idx| idx.get(vals))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// A term compiled against a rule's dense variable numbering.
#[derive(Debug, Clone)]
enum Slot {
    Var(usize),
    Const(Value),
    Skolem { function: Arc<str>, args: Vec<Slot> },
}

#[derive(Debug, Clone)]
struct CompiledAtom {
    relation: Arc<str>,
    slots: Vec<Slot>,
}

#[derive(Debug, Clone)]
struct CompiledFilter {
    filter: Filter,
    /// Dense ids of the variables the filter references; it is applied as
    /// soon as all of them are bound (join order is dynamic, so readiness
    /// is checked per join, not precompiled).
    vars: Vec<usize>,
    left: Slot,
    right: Slot,
}

#[derive(Debug, Clone)]
struct CompiledRule {
    id: RuleId,
    head: CompiledAtom,
    body: Vec<CompiledAtom>,
    filters: Vec<CompiledFilter>,
    num_vars: usize,
}

/// The provenance-annotated, incrementally maintained datalog engine.
#[derive(Debug, Clone)]
pub struct Engine {
    schema: DatabaseSchema,
    rules: Vec<CompiledRule>,
    /// body relation name → (rule index, body atom position).
    rules_by_body: HashMap<Arc<str>, Vec<(usize, usize)>>,
    nodes: NodeTable,
    graph: ProvGraph,
    data: HashMap<Arc<str>, RelData>,
    /// Tuples inserted but not yet propagated, per relation.
    pending: Vec<(Arc<str>, Tuple)>,
    changes: Vec<Change>,
    stats: EngineStats,
    /// When false, derivations are not recorded (ablation baseline for
    /// experiment E5). Provenance-based deletion then falls back to DRed.
    track_provenance: bool,
}

impl Engine {
    /// Build an engine for a schema and a mapping program.
    pub fn new(schema: DatabaseSchema, rules: Vec<Rule>) -> Result<Engine> {
        Self::with_provenance(schema, rules, true)
    }

    /// Build an engine, optionally **without** provenance tracking — the
    /// ablation baseline of experiment E5. Without provenance, trust
    /// evaluation and provenance-based deletion are unavailable
    /// ([`remove_base`](Engine::remove_base) silently uses DRed), but
    /// insert propagation is cheaper.
    pub fn with_provenance(
        schema: DatabaseSchema,
        rules: Vec<Rule>,
        track_provenance: bool,
    ) -> Result<Engine> {
        let mut data = HashMap::new();
        for r in schema.relations() {
            data.insert(r.name_arc(), RelData::default());
        }
        let mut compiled = Vec::with_capacity(rules.len());
        let mut rules_by_body: HashMap<Arc<str>, Vec<(usize, usize)>> = HashMap::new();
        for (ri, rule) in rules.into_iter().enumerate() {
            let c = Self::compile_rule(&schema, rule)?;
            for (ai, atom) in c.body.iter().enumerate() {
                rules_by_body
                    .entry(Arc::clone(&atom.relation))
                    .or_default()
                    .push((ri, ai));
            }
            compiled.push(c);
        }
        Ok(Engine {
            schema,
            rules: compiled,
            rules_by_body,
            nodes: NodeTable::new(),
            graph: ProvGraph::new(),
            data,
            pending: Vec::new(),
            changes: Vec::new(),
            stats: EngineStats::default(),
            track_provenance,
        })
    }

    fn compile_rule(schema: &DatabaseSchema, rule: Rule) -> Result<CompiledRule> {
        // Check relations and arities.
        let head_schema = schema
            .relation(&rule.head.relation)
            .map_err(|_| DatalogError::UnknownRelation(rule.head.relation.to_string()))?;
        if head_schema.arity() != rule.head.arity() {
            return Err(DatalogError::ArityMismatch {
                relation: rule.head.relation.to_string(),
                expected: head_schema.arity(),
                actual: rule.head.arity(),
            });
        }
        for atom in &rule.body {
            let rs = schema
                .relation(&atom.relation)
                .map_err(|_| DatalogError::UnknownRelation(atom.relation.to_string()))?;
            if rs.arity() != atom.arity() {
                return Err(DatalogError::ArityMismatch {
                    relation: atom.relation.to_string(),
                    expected: rs.arity(),
                    actual: atom.arity(),
                });
            }
        }

        // Dense variable numbering in first-occurrence order.
        let mut var_ids: HashMap<Arc<str>, usize> = HashMap::new();
        for atom in &rule.body {
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    let next = var_ids.len();
                    var_ids.entry(Arc::clone(v)).or_insert(next);
                }
            }
        }
        let compile_term = |t: &Term| -> Slot {
            match t {
                Term::Var(v) => Slot::Var(var_ids[v]),
                Term::Const(c) => Slot::Const(c.clone()),
                Term::Skolem { function, args } => Slot::Skolem {
                    function: Arc::clone(function),
                    args: args
                        .iter()
                        .map(|a| match a {
                            Term::Var(v) => Slot::Var(var_ids[v]),
                            Term::Const(c) => Slot::Const(c.clone()),
                            Term::Skolem { .. } => unreachable!("nested skolems rejected by Tgd"),
                        })
                        .collect(),
                },
            }
        };

        let body: Vec<CompiledAtom> = rule
            .body
            .iter()
            .map(|a| CompiledAtom {
                relation: Arc::clone(&a.relation),
                slots: a.terms.iter().map(compile_term).collect(),
            })
            .collect();
        let head = CompiledAtom {
            relation: Arc::clone(&rule.head.relation),
            slots: rule.head.terms.iter().map(compile_term).collect(),
        };
        let filters: Vec<CompiledFilter> = rule
            .filters
            .iter()
            .map(|f| {
                let vars = f.variables().iter().map(|v| var_ids[v]).collect();
                CompiledFilter {
                    vars,
                    left: compile_term(&f.left),
                    right: compile_term(&f.right),
                    filter: f.clone(),
                }
            })
            .collect();
        Ok(CompiledRule {
            id: rule.id,
            head,
            body,
            filters,
            num_vars: var_ids.len(),
        })
    }

    /// The engine's schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The provenance graph.
    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }

    /// The node table.
    pub fn nodes(&self) -> &NodeTable {
        &self.nodes
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// True iff the relation currently contains the tuple.
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> bool {
        self.data.get(relation).is_some_and(|r| r.contains(tuple))
    }

    /// Number of alive tuples in a relation.
    pub fn relation_len(&self, relation: &str) -> usize {
        self.data.get(relation).map_or(0, |r| r.tuples.len())
    }

    /// Alive tuples of a relation, sorted (deterministic).
    pub fn relation_tuples(&self, relation: &str) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .data
            .get(relation)
            .map(|r| r.tuples.keys().cloned().collect())
            .unwrap_or_default();
        out.sort();
        out
    }

    /// Total alive tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.data.values().map(|r| r.tuples.len()).sum()
    }

    /// Drain the change log.
    pub fn drain_changes(&mut self) -> Vec<Change> {
        std::mem::take(&mut self.changes)
    }

    /// Insert a base (published) tuple. Idempotent: re-inserting an already
    /// base tuple is a no-op. If the tuple exists only as derived, it
    /// additionally becomes base (gaining independent support).
    pub fn insert_base(&mut self, relation: &str, tuple: Tuple) -> Result<NodeId> {
        let rel_schema = self
            .schema
            .relation(relation)
            .map_err(|_| DatalogError::UnknownRelation(relation.to_string()))?;
        rel_schema.validate(&tuple)?;
        let rel_name = rel_schema.name_arc();
        let node = self.nodes.intern(&rel_name, &tuple);
        if self.graph.is_base(node) {
            return Ok(node);
        }
        self.graph.add_base(node);
        let rd = self.data.get_mut(&rel_name).expect("relation exists");
        if !rd.contains(&tuple) {
            rd.insert(tuple.clone(), node);
            self.stats.tuples_added += 1;
            self.changes.push(Change {
                relation: Arc::clone(&rel_name),
                tuple: tuple.clone(),
                kind: ChangeKind::Added,
                node,
            });
            self.pending.push((rel_name, tuple));
        }
        Ok(node)
    }

    /// Run semi-naive propagation from the pending delta to fixpoint.
    /// Returns the number of newly derived tuples.
    pub fn propagate(&mut self) -> Result<usize> {
        let mut delta = std::mem::take(&mut self.pending);
        let mut new_tuples = 0usize;
        while !delta.is_empty() {
            self.stats.rounds += 1;
            let mut next_delta: Vec<(Arc<str>, Tuple)> = Vec::new();
            // Group delta by relation to amortize rule lookup.
            let mut by_rel: HashMap<Arc<str>, Vec<Tuple>> = HashMap::new();
            for (r, t) in delta {
                by_rel.entry(r).or_default().push(t);
            }
            for (rel, tuples) in &by_rel {
                let Some(uses) = self.rules_by_body.get(rel).cloned() else {
                    continue;
                };
                for (ri, ai) in uses {
                    let firings = self.join_rule(ri, Some((ai, tuples)));
                    for (head_tuple, body_nodes) in firings {
                        self.stats.firings += 1;
                        let head_rel = Arc::clone(&self.rules[ri].head.relation);
                        let head_node = self.nodes.intern(&head_rel, &head_tuple);
                        if self.track_provenance {
                            let fresh_deriv = self.graph.add_derivation(Derivation {
                                rule: Arc::clone(&self.rules[ri].id),
                                head: head_node,
                                body: body_nodes,
                            });
                            if fresh_deriv {
                                self.stats.derivations += 1;
                            }
                        }
                        let rd = self.data.get_mut(&head_rel).expect("relation exists");
                        if !rd.contains(&head_tuple) {
                            rd.insert(head_tuple.clone(), head_node);
                            self.stats.tuples_added += 1;
                            new_tuples += 1;
                            self.changes.push(Change {
                                relation: Arc::clone(&head_rel),
                                tuple: head_tuple.clone(),
                                kind: ChangeKind::Added,
                                node: head_node,
                            });
                            next_delta.push((head_rel, head_tuple));
                        }
                    }
                }
            }
            delta = next_delta;
        }
        Ok(new_tuples)
    }

    /// Join one rule's body with an optional delta restriction at one atom
    /// position. Returns `(head tuple, body node ids)` per firing.
    ///
    /// Delta tuples need not be present in `data` (DRed's over-deletion
    /// joins deltas that have already been removed). Atoms are joined in a
    /// greedily planned order — delta atom first, then whichever remaining
    /// atom has the most bound positions — so multi-way joins always probe
    /// indexes instead of building cross products.
    fn join_rule(
        &mut self,
        rule_idx: usize,
        delta: Option<(usize, &Vec<Tuple>)>,
    ) -> Vec<(Tuple, Vec<NodeId>)> {
        let rule = self.rules[rule_idx].clone();
        let order = Self::plan_order(&rule, delta.map(|(p, _)| p), None);
        let mut results = Vec::new();
        let mut bindings: Vec<Option<Value>> = vec![None; rule.num_vars];
        let mut body_tuples: Vec<Option<Tuple>> = vec![None; rule.body.len()];
        let mut filters_applied: Vec<bool> = vec![false; rule.filters.len()];
        self.join_ordered(
            &rule,
            &order,
            0,
            delta,
            &mut bindings,
            &mut body_tuples,
            &mut filters_applied,
            &mut results,
        );
        results
    }

    /// Greedy join order: the delta atom (if any) first, then repeatedly
    /// the atom with the most bound positions (constants + already-bound
    /// variables). `pre_bound` marks variables seeded before the join
    /// (head bindings during DRed re-derivation).
    fn plan_order(
        rule: &CompiledRule,
        delta_pos: Option<usize>,
        pre_bound: Option<&[bool]>,
    ) -> Vec<usize> {
        let n = rule.body.len();
        let mut bound: Vec<bool> = match pre_bound {
            Some(b) => b.to_vec(),
            None => vec![false; rule.num_vars],
        };
        let mut used = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let bind = |ai: usize, bound: &mut Vec<bool>| {
            for slot in &rule.body[ai].slots {
                if let Slot::Var(v) = slot {
                    bound[*v] = true;
                }
            }
        };
        if let Some(dp) = delta_pos {
            order.push(dp);
            used[dp] = true;
            bind(dp, &mut bound);
        }
        while order.len() < n {
            let mut best = usize::MAX;
            let mut best_score = -1i64;
            for (ai, &ai_used) in used.iter().enumerate().take(n) {
                if ai_used {
                    continue;
                }
                let score = rule.body[ai]
                    .slots
                    .iter()
                    .filter(|s| match s {
                        Slot::Const(_) => true,
                        Slot::Var(v) => bound[*v],
                        Slot::Skolem { .. } => false,
                    })
                    .count() as i64;
                if score > best_score {
                    best_score = score;
                    best = ai;
                }
            }
            order.push(best);
            used[best] = true;
            bind(best, &mut bound);
        }
        order
    }

    #[allow(clippy::too_many_arguments)]
    fn join_ordered(
        &mut self,
        rule: &CompiledRule,
        order: &[usize],
        step: usize,
        delta: Option<(usize, &Vec<Tuple>)>,
        bindings: &mut Vec<Option<Value>>,
        body_tuples: &mut Vec<Option<Tuple>>,
        filters_applied: &mut Vec<bool>,
        results: &mut Vec<(Tuple, Vec<NodeId>)>,
    ) {
        if step == order.len() {
            // All atoms bound; instantiate head (body nodes in original
            // rule-body order — derivation identity depends on it).
            let head_tuple = Self::instantiate(&rule.head.slots, bindings);
            let body_nodes: Vec<NodeId> = body_tuples
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let t = t.as_ref().expect("bound");
                    self.nodes.intern(&rule.body[i].relation, t)
                })
                .collect();
            results.push((head_tuple, body_nodes));
            return;
        }
        let ai = order[step];
        let atom = &rule.body[ai];

        // Candidate tuples for this atom.
        let candidates: Vec<Tuple> = match delta {
            Some((dpos, dtuples)) if dpos == ai => dtuples.clone(),
            _ => self.candidates_from_data(atom, bindings),
        };

        'next_tuple: for t in candidates {
            if t.arity() != atom.slots.len() {
                continue;
            }
            // Match against slots, extending bindings.
            let mut newly_bound: Vec<usize> = Vec::new();
            let mut newly_applied: Vec<usize> = Vec::new();
            macro_rules! backtrack {
                () => {{
                    for &v in &newly_bound {
                        bindings[v] = None;
                    }
                    for &fi in &newly_applied {
                        filters_applied[fi] = false;
                    }
                }};
            }
            for (i, slot) in atom.slots.iter().enumerate() {
                match slot {
                    Slot::Const(c) => {
                        if &t[i] != c {
                            backtrack!();
                            continue 'next_tuple;
                        }
                    }
                    Slot::Var(v) => match &bindings[*v] {
                        Some(bound) => {
                            if bound != &t[i] {
                                backtrack!();
                                continue 'next_tuple;
                            }
                        }
                        None => {
                            bindings[*v] = Some(t[i].clone());
                            newly_bound.push(*v);
                        }
                    },
                    Slot::Skolem { .. } => {
                        // Skolem slots in bodies are not supported; rules
                        // from Tgd::compile never produce them.
                        backtrack!();
                        continue 'next_tuple;
                    }
                }
            }
            // Apply any filter whose variables are now all bound.
            for (fi, f) in rule.filters.iter().enumerate() {
                if filters_applied[fi] {
                    continue;
                }
                if f.vars.iter().all(|&v| bindings[v].is_some()) {
                    let l = Self::slot_value(&f.left, bindings);
                    let r = Self::slot_value(&f.right, bindings);
                    if !f.filter.op.apply(&l, &r) {
                        backtrack!();
                        continue 'next_tuple;
                    }
                    filters_applied[fi] = true;
                    newly_applied.push(fi);
                }
            }
            body_tuples[ai] = Some(t.clone());
            self.join_ordered(
                rule,
                order,
                step + 1,
                delta,
                bindings,
                body_tuples,
                filters_applied,
                results,
            );
            body_tuples[ai] = None;
            backtrack!();
        }
    }

    /// Tuples of `atom`'s relation consistent with current bindings, using
    /// an index over the bound columns when any exist.
    fn candidates_from_data(
        &mut self,
        atom: &CompiledAtom,
        bindings: &[Option<Value>],
    ) -> Vec<Tuple> {
        let mut bound_cols: Vec<usize> = Vec::new();
        let mut bound_vals: Vec<Value> = Vec::new();
        for (i, slot) in atom.slots.iter().enumerate() {
            match slot {
                Slot::Const(c) => {
                    bound_cols.push(i);
                    bound_vals.push(c.clone());
                }
                Slot::Var(v) => {
                    if let Some(val) = &bindings[*v] {
                        bound_cols.push(i);
                        bound_vals.push(val.clone());
                    }
                }
                Slot::Skolem { .. } => {}
            }
        }
        let Some(rd) = self.data.get_mut(&atom.relation) else {
            return Vec::new();
        };
        if bound_cols.is_empty() {
            rd.tuples.keys().cloned().collect()
        } else {
            rd.ensure_index(&bound_cols);
            rd.probe(&bound_cols, &bound_vals).to_vec()
        }
    }

    fn slot_value(slot: &Slot, bindings: &[Option<Value>]) -> Value {
        match slot {
            Slot::Const(c) => c.clone(),
            Slot::Var(v) => bindings[*v].clone().expect("filter var bound"),
            Slot::Skolem { function, args } => {
                let vals: Vec<Value> = args.iter().map(|a| Self::slot_value(a, bindings)).collect();
                Value::skolem(Arc::clone(function), vals)
            }
        }
    }

    fn instantiate(slots: &[Slot], bindings: &[Option<Value>]) -> Tuple {
        slots
            .iter()
            .map(|s| Self::slot_value(s, bindings))
            .collect()
    }

    /// Remove a base tuple and propagate the deletion with the chosen
    /// algorithm. Returns `true` if the tuple was a base fact.
    ///
    /// The tuple may remain alive if it is still derivable through the
    /// mapping program (or was independently published elsewhere).
    pub fn remove_base(
        &mut self,
        relation: &str,
        tuple: &Tuple,
        algorithm: DeletionAlgorithm,
    ) -> Result<bool> {
        let Some(node) = self.nodes.get(relation, tuple) else {
            return Ok(false);
        };
        if !self.graph.remove_base(node) {
            return Ok(false);
        }
        // Without a provenance graph only rule re-evaluation can decide
        // what else must go.
        let algorithm = if self.track_provenance {
            algorithm
        } else {
            DeletionAlgorithm::DRed
        };
        match algorithm {
            DeletionAlgorithm::ProvenanceBased => self.delete_provenance_based(node),
            DeletionAlgorithm::DRed => self.delete_dred(node),
        }
        Ok(true)
    }

    /// Provenance-based deletion: restrict attention to the subgraph
    /// forward-reachable from the deleted node and recompute well-founded
    /// derivability there, treating unaffected alive nodes as given.
    fn delete_provenance_based(&mut self, deleted: NodeId) {
        // Affected = forward closure through derivation uses.
        let mut affected: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        affected.insert(deleted);
        queue.push_back(deleted);
        while let Some(nd) = queue.pop_front() {
            let heads: Vec<NodeId> = self.graph.uses_of(nd).map(|d| d.head).collect();
            for h in heads {
                if affected.insert(h) {
                    queue.push_back(h);
                }
            }
        }
        // Worklist: start from support outside the affected region and from
        // base facts inside it.
        let mut derivable: HashSet<NodeId> = HashSet::new();
        let mut wl: VecDeque<NodeId> = VecDeque::new();
        for &a in &affected {
            if self.graph.is_base(a) && derivable.insert(a) {
                wl.push_back(a);
            }
            for d in self.graph.derivations_of(a) {
                let supported = d
                    .body
                    .iter()
                    .all(|b| !affected.contains(b) && self.is_alive(*b));
                if supported && derivable.insert(a) {
                    wl.push_back(a);
                }
            }
        }
        while let Some(nd) = wl.pop_front() {
            let heads: Vec<NodeId> = self
                .graph
                .uses_of(nd)
                .filter(|d| affected.contains(&d.head) && !derivable.contains(&d.head))
                .filter(|d| {
                    d.body.iter().all(|b| {
                        derivable.contains(b) || (!affected.contains(b) && self.is_alive(*b))
                    })
                })
                .map(|d| d.head)
                .collect();
            for h in heads {
                if derivable.insert(h) {
                    wl.push_back(h);
                }
            }
        }
        // Kill affected-but-underivable nodes.
        let dead: Vec<NodeId> = affected
            .iter()
            .copied()
            .filter(|a| !derivable.contains(a) && self.is_alive(*a))
            .collect();
        self.remove_nodes(&dead);
    }

    fn is_alive(&self, node: NodeId) -> bool {
        let Some((rel, tuple)) = self.nodes.resolve(node) else {
            return false;
        };
        self.data
            .get(rel)
            .is_some_and(|rd| rd.tuples.get(tuple) == Some(&node))
    }

    fn remove_nodes(&mut self, dead: &[NodeId]) {
        for &nd in dead {
            let Some((rel, tuple)) = self.nodes.resolve(nd) else {
                continue;
            };
            let rel = Arc::clone(rel);
            let tuple = tuple.clone();
            if let Some(rd) = self.data.get_mut(&rel) {
                if rd.remove(&tuple).is_some() {
                    self.stats.tuples_removed += 1;
                    self.changes.push(Change {
                        relation: rel,
                        tuple,
                        kind: ChangeKind::Removed,
                        node: nd,
                    });
                }
            }
        }
    }

    /// DRed: over-delete by re-evaluating rules against deltas of deleted
    /// tuples, then re-derive survivors from the remaining database.
    fn delete_dred(&mut self, deleted: NodeId) {
        let Some((rel0, t0)) = self.nodes.resolve(deleted) else {
            return;
        };
        let rel0 = Arc::clone(rel0);
        let t0 = t0.clone();

        // Phase 1: over-delete. Worklist of removed tuples; consequences
        // computed by joining each rule with the removed tuple as delta.
        let mut overdeleted: Vec<(Arc<str>, Tuple, NodeId)> = Vec::new();
        let mut wl: VecDeque<(Arc<str>, Tuple)> = VecDeque::new();
        if self.is_alive(deleted) {
            self.data.get_mut(&rel0).expect("rel").remove(&t0);
            overdeleted.push((Arc::clone(&rel0), t0.clone(), deleted));
            wl.push_back((rel0, t0));
        }
        while let Some((rel, t)) = wl.pop_front() {
            let Some(uses) = self.rules_by_body.get(&rel).cloned() else {
                continue;
            };
            let delta_vec = vec![t.clone()];
            for (ri, ai) in uses {
                let firings = self.join_rule(ri, Some((ai, &delta_vec)));
                for (head_tuple, _) in firings {
                    let head_rel = Arc::clone(&self.rules[ri].head.relation);
                    if let Some(node) = self
                        .data
                        .get_mut(&head_rel)
                        .and_then(|rd| rd.remove(&head_tuple))
                    {
                        overdeleted.push((Arc::clone(&head_rel), head_tuple.clone(), node));
                        wl.push_back((head_rel, head_tuple));
                    }
                }
            }
        }

        // Phase 2: re-derive. A removed tuple comes back if it is still
        // base, or some rule derives it from the remaining database.
        // Iterate to fixpoint (re-derived tuples can support others).
        let mut revived: HashSet<NodeId> = HashSet::new();
        loop {
            let mut changed = false;
            for (rel, t, node) in &overdeleted {
                if revived.contains(node) {
                    continue;
                }
                let back = self.graph.is_base(*node) || self.rederivable(rel, t);
                if back {
                    self.data
                        .get_mut(rel)
                        .expect("rel")
                        .insert(t.clone(), *node);
                    revived.insert(*node);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Log removals for tuples that stayed dead.
        let dead: Vec<NodeId> = overdeleted
            .iter()
            .filter(|(_, _, n)| !revived.contains(n))
            .map(|(_, _, n)| *n)
            .collect();
        for (rel, t, node) in &overdeleted {
            if !revived.contains(node) {
                self.stats.tuples_removed += 1;
                self.changes.push(Change {
                    relation: Arc::clone(rel),
                    tuple: t.clone(),
                    kind: ChangeKind::Removed,
                    node: *node,
                });
            }
        }
        let _ = dead;
    }

    /// Can any rule derive `(relation, tuple)` from the current database?
    fn rederivable(&mut self, relation: &str, tuple: &Tuple) -> bool {
        for ri in 0..self.rules.len() {
            if &*self.rules[ri].head.relation != relation {
                continue;
            }
            // Evaluate the rule body and compare instantiated heads. Head
            // bindings prune by seeding variables bound in the head slots.
            let firings = self.join_rule_with_head_filter(ri, tuple);
            if firings {
                return true;
            }
        }
        false
    }

    /// Evaluate rule `ri` and return whether some firing instantiates the
    /// head to exactly `target`. Head variable slots pre-seed the bindings
    /// so the join is index-driven.
    fn join_rule_with_head_filter(&mut self, ri: usize, target: &Tuple) -> bool {
        let rule = self.rules[ri].clone();
        if target.arity() != rule.head.slots.len() {
            return false;
        }
        let mut bindings: Vec<Option<Value>> = vec![None; rule.num_vars];
        // Seed bindings from head slots where possible; constants must match.
        for (i, slot) in rule.head.slots.iter().enumerate() {
            match slot {
                Slot::Const(c) => {
                    if &target[i] != c {
                        return false;
                    }
                }
                Slot::Var(v) => match &bindings[*v] {
                    Some(b) => {
                        if b != &target[i] {
                            return false;
                        }
                    }
                    None => bindings[*v] = Some(target[i].clone()),
                },
                Slot::Skolem { .. } => {
                    // Skolem head slot: target column must be a labeled
                    // null of this function; we don't invert it here, so
                    // fall back to not seeding (join will produce and the
                    // final comparison decides).
                }
            }
        }
        let pre_bound: Vec<bool> = bindings.iter().map(Option::is_some).collect();
        let order = Self::plan_order(&rule, None, Some(&pre_bound));
        let mut body_tuples: Vec<Option<Tuple>> = vec![None; rule.body.len()];
        let mut filters_applied: Vec<bool> = vec![false; rule.filters.len()];
        let mut results = Vec::new();
        self.join_ordered(
            &rule,
            &order,
            0,
            None,
            &mut bindings,
            &mut body_tuples,
            &mut filters_applied,
            &mut results,
        );
        results.iter().any(|(h, _)| h == target)
    }

    /// The provenance polynomial of an alive tuple (over simple proofs).
    pub fn provenance(&self, relation: &str, tuple: &Tuple) -> Option<Polynomial<NodeId>> {
        let node = self.nodes.get(relation, tuple)?;
        Some(self.graph.polynomial(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Rule};
    use crate::tgd::Tgd;
    use orchestra_provenance::Semiring;
    use orchestra_relational::{tuple, RelationSchema, ValueType};

    fn schema(rels: &[(&str, usize)]) -> DatabaseSchema {
        let mut db = DatabaseSchema::new("test");
        for (name, arity) in rels {
            let cols: Vec<(String, ValueType)> = (0..*arity)
                .map(|i| (format!("c{i}"), ValueType::Str))
                .collect();
            let col_refs: Vec<(&str, ValueType)> =
                cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            db.add_relation(RelationSchema::from_parts(*name, &col_refs).unwrap())
                .unwrap();
        }
        db
    }

    fn edge_path_engine() -> Engine {
        // path(x,y) :- edge(x,y).  path(x,z) :- edge(x,y), path(y,z).
        let db = schema(&[("edge", 2), ("path", 2)]);
        let r1 = Rule::new(
            "base",
            Atom::vars("path", &["x", "y"]),
            vec![Atom::vars("edge", &["x", "y"])],
            vec![],
        )
        .unwrap();
        let r2 = Rule::new(
            "step",
            Atom::vars("path", &["x", "z"]),
            vec![
                Atom::vars("edge", &["x", "y"]),
                Atom::vars("path", &["y", "z"]),
            ],
            vec![],
        )
        .unwrap();
        Engine::new(db, vec![r1, r2]).unwrap()
    }

    #[test]
    fn transitive_closure() {
        let mut e = edge_path_engine();
        e.insert_base("edge", tuple!["a", "b"]).unwrap();
        e.insert_base("edge", tuple!["b", "c"]).unwrap();
        e.insert_base("edge", tuple!["c", "d"]).unwrap();
        e.propagate().unwrap();
        assert_eq!(e.relation_len("path"), 6);
        assert!(e.contains("path", &tuple!["a", "d"]));
        assert!(!e.contains("path", &tuple!["d", "a"]));
    }

    #[test]
    fn incremental_insert_matches_full_recompute() {
        // Build incrementally.
        let mut inc = edge_path_engine();
        inc.insert_base("edge", tuple!["a", "b"]).unwrap();
        inc.propagate().unwrap();
        inc.insert_base("edge", tuple!["b", "c"]).unwrap();
        inc.propagate().unwrap();
        inc.insert_base("edge", tuple!["c", "d"]).unwrap();
        inc.propagate().unwrap();
        // Build from scratch.
        let mut full = edge_path_engine();
        for t in [tuple!["a", "b"], tuple!["b", "c"], tuple!["c", "d"]] {
            full.insert_base("edge", t).unwrap();
        }
        full.propagate().unwrap();
        assert_eq!(inc.relation_tuples("path"), full.relation_tuples("path"));
    }

    #[test]
    fn join_rule_filters_and_constants() {
        // out(x) :- r(x, 'keep'), x <> 'bad'.
        use orchestra_relational::CmpOp;
        let db = schema(&[("r", 2), ("out", 1)]);
        let rule = Rule::new(
            "f",
            Atom::vars("out", &["x"]),
            vec![Atom::new("r", vec![Term::var("x"), Term::val("keep")])],
            vec![crate::ast::Filter::new(
                Term::var("x"),
                CmpOp::Ne,
                Term::val("bad"),
            )],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![rule]).unwrap();
        e.insert_base("r", tuple!["good", "keep"]).unwrap();
        e.insert_base("r", tuple!["bad", "keep"]).unwrap();
        e.insert_base("r", tuple!["good2", "drop"]).unwrap();
        e.propagate().unwrap();
        assert_eq!(e.relation_tuples("out"), vec![tuple!["good"]]);
    }

    #[test]
    fn skolem_heads_invent_labeled_nulls() {
        // The paper's split: O(org, #oid(org)) :- OPS(org, prot, seq).
        let db = schema(&[("OPS", 3), ("O", 2)]);
        let m = Tgd::new(
            "MC->A",
            vec![Atom::vars("OPS", &["org", "prot", "seq"])],
            vec![Atom::new(
                "O",
                vec![
                    Term::var("org"),
                    Term::skolem("oid", vec![Term::var("org")]),
                ],
            )],
        )
        .unwrap();
        let mut e = Engine::new(db, m.compile().unwrap()).unwrap();
        e.insert_base("OPS", tuple!["HIV", "gp120", "MRV"]).unwrap();
        e.insert_base("OPS", tuple!["HIV", "gp41", "AVG"]).unwrap();
        e.propagate().unwrap();
        // Same org twice → same labeled null → one O tuple.
        assert_eq!(e.relation_len("O"), 1);
        let o = &e.relation_tuples("O")[0];
        assert!(o[1].is_labeled_null());
    }

    #[test]
    fn provenance_polynomial_of_join() {
        // t(x,z) :- r(x,y), s(y,z).
        let db = schema(&[("r", 2), ("s", 2), ("t", 2)]);
        let rule = Rule::new(
            "j",
            Atom::vars("t", &["x", "z"]),
            vec![Atom::vars("r", &["x", "y"]), Atom::vars("s", &["y", "z"])],
            vec![],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![rule]).unwrap();
        let nr = e.insert_base("r", tuple!["a", "b"]).unwrap();
        let ns = e.insert_base("s", tuple!["b", "c"]).unwrap();
        e.propagate().unwrap();
        let p = e.provenance("t", &tuple!["a", "c"]).unwrap();
        assert_eq!(p, Polynomial::var(nr).times(&Polynomial::var(ns)));
    }

    #[test]
    fn alternative_derivations_sum() {
        // t(x) :- r(x).  t(x) :- s(x).
        let db = schema(&[("r", 1), ("s", 1), ("t", 1)]);
        let r1 = Rule::new(
            "m1",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("r", &["x"])],
            vec![],
        )
        .unwrap();
        let r2 = Rule::new(
            "m2",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("s", &["x"])],
            vec![],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![r1, r2]).unwrap();
        let nr = e.insert_base("r", tuple!["a"]).unwrap();
        let ns = e.insert_base("s", tuple!["a"]).unwrap();
        e.propagate().unwrap();
        let p = e.provenance("t", &tuple!["a"]).unwrap();
        assert_eq!(p, Polynomial::var(nr).plus(&Polynomial::var(ns)));
    }

    #[test]
    fn deletion_provenance_based_keeps_alternatives() {
        let db = schema(&[("r", 1), ("s", 1), ("t", 1)]);
        let r1 = Rule::new(
            "m1",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("r", &["x"])],
            vec![],
        )
        .unwrap();
        let r2 = Rule::new(
            "m2",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("s", &["x"])],
            vec![],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![r1, r2]).unwrap();
        e.insert_base("r", tuple!["a"]).unwrap();
        e.insert_base("s", tuple!["a"]).unwrap();
        e.propagate().unwrap();
        e.remove_base("r", &tuple!["a"], DeletionAlgorithm::ProvenanceBased)
            .unwrap();
        assert!(!e.contains("r", &tuple!["a"]));
        assert!(e.contains("t", &tuple!["a"]), "alternative via s survives");
        e.remove_base("s", &tuple!["a"], DeletionAlgorithm::ProvenanceBased)
            .unwrap();
        assert!(!e.contains("t", &tuple!["a"]));
    }

    #[test]
    fn deletion_dred_matches_provenance_based() {
        for algo in [DeletionAlgorithm::ProvenanceBased, DeletionAlgorithm::DRed] {
            let mut e = edge_path_engine();
            e.insert_base("edge", tuple!["a", "b"]).unwrap();
            e.insert_base("edge", tuple!["b", "c"]).unwrap();
            e.insert_base("edge", tuple!["a", "c"]).unwrap();
            e.propagate().unwrap();
            // Deleting a→b kills path a→b but not a→c (direct edge remains).
            e.remove_base("edge", &tuple!["a", "b"], algo).unwrap();
            assert!(!e.contains("path", &tuple!["a", "b"]), "{algo:?}");
            assert!(e.contains("path", &tuple!["a", "c"]), "{algo:?}");
            assert!(e.contains("path", &tuple!["b", "c"]), "{algo:?}");
        }
    }

    #[test]
    fn deletion_in_cycle_is_well_founded() {
        // Identity cycle between two relations.
        let db = schema(&[("A", 1), ("B", 1)]);
        let r1 = Rule::new(
            "ab",
            Atom::vars("B", &["x"]),
            vec![Atom::vars("A", &["x"])],
            vec![],
        )
        .unwrap();
        let r2 = Rule::new(
            "ba",
            Atom::vars("A", &["x"]),
            vec![Atom::vars("B", &["x"])],
            vec![],
        )
        .unwrap();
        for algo in [DeletionAlgorithm::ProvenanceBased, DeletionAlgorithm::DRed] {
            let mut e = Engine::new(db.clone(), vec![r1.clone(), r2.clone()]).unwrap();
            e.insert_base("A", tuple!["t"]).unwrap();
            e.propagate().unwrap();
            assert!(e.contains("B", &tuple!["t"]));
            // Removing the only base support kills both, despite the cycle.
            e.remove_base("A", &tuple!["t"], algo).unwrap();
            assert!(!e.contains("A", &tuple!["t"]), "{algo:?}");
            assert!(!e.contains("B", &tuple!["t"]), "{algo:?}");
        }
    }

    #[test]
    fn base_and_derived_tuple_survives_base_removal() {
        // t(x) :- r(x); t('a') also inserted as base.
        let db = schema(&[("r", 1), ("t", 1)]);
        let rule = Rule::new(
            "m",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("r", &["x"])],
            vec![],
        )
        .unwrap();
        for algo in [DeletionAlgorithm::ProvenanceBased, DeletionAlgorithm::DRed] {
            let mut e = Engine::new(db.clone(), vec![rule.clone()]).unwrap();
            e.insert_base("r", tuple!["a"]).unwrap();
            e.insert_base("t", tuple!["a"]).unwrap();
            e.propagate().unwrap();
            // Remove the derived support; the base t('a') remains.
            e.remove_base("r", &tuple!["a"], algo).unwrap();
            assert!(e.contains("t", &tuple!["a"]), "{algo:?}");
            // Remove base support too: now it dies.
            e.remove_base("t", &tuple!["a"], algo).unwrap();
            assert!(!e.contains("t", &tuple!["a"]), "{algo:?}");
        }
    }

    #[test]
    fn change_log_records_adds_and_removes() {
        let mut e = edge_path_engine();
        e.insert_base("edge", tuple!["a", "b"]).unwrap();
        e.propagate().unwrap();
        let ch = e.drain_changes();
        assert_eq!(ch.len(), 2); // edge + path
        assert!(ch.iter().all(|c| c.kind == ChangeKind::Added));
        e.remove_base(
            "edge",
            &tuple!["a", "b"],
            DeletionAlgorithm::ProvenanceBased,
        )
        .unwrap();
        let ch = e.drain_changes();
        assert_eq!(ch.len(), 2);
        assert!(ch.iter().all(|c| c.kind == ChangeKind::Removed));
    }

    #[test]
    fn idempotent_base_insert() {
        let mut e = edge_path_engine();
        let n1 = e.insert_base("edge", tuple!["a", "b"]).unwrap();
        let n2 = e.insert_base("edge", tuple!["a", "b"]).unwrap();
        assert_eq!(n1, n2);
        e.propagate().unwrap();
        assert_eq!(e.relation_len("edge"), 1);
        assert_eq!(e.drain_changes().len(), 2);
    }

    #[test]
    fn unknown_relation_and_arity_errors() {
        let db = schema(&[("r", 1)]);
        let bad_rel = Rule::new(
            "m",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("r", &["x"])],
            vec![],
        )
        .unwrap();
        assert!(matches!(
            Engine::new(db.clone(), vec![bad_rel]),
            Err(DatalogError::UnknownRelation(_))
        ));
        let bad_arity = Rule::new(
            "m",
            Atom::vars("r", &["x"]),
            vec![Atom::vars("r", &["x", "y"])],
            vec![],
        )
        .unwrap();
        assert!(matches!(
            Engine::new(db.clone(), vec![bad_arity]),
            Err(DatalogError::ArityMismatch { .. })
        ));
        let mut ok = Engine::new(db, vec![]).unwrap();
        assert!(ok.insert_base("nope", tuple!["x"]).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut e = edge_path_engine();
        e.insert_base("edge", tuple!["a", "b"]).unwrap();
        e.insert_base("edge", tuple!["b", "c"]).unwrap();
        e.propagate().unwrap();
        let s = e.stats();
        assert!(s.rounds >= 2);
        assert!(s.firings >= 3);
        assert!(s.derivations >= 3);
        assert_eq!(s.tuples_added as usize, e.total_tuples());
    }

    #[test]
    fn remove_nonexistent_base_is_noop() {
        let mut e = edge_path_engine();
        assert!(!e
            .remove_base("edge", &tuple!["x", "y"], DeletionAlgorithm::DRed)
            .unwrap());
        // Derived tuples are not base: removing them is a no-op too.
        e.insert_base("edge", tuple!["a", "b"]).unwrap();
        e.propagate().unwrap();
        assert!(!e
            .remove_base("path", &tuple!["a", "b"], DeletionAlgorithm::DRed)
            .unwrap());
        assert!(e.contains("path", &tuple!["a", "b"]));
    }

    #[test]
    fn no_provenance_mode_matches_data_but_skips_graph() {
        let db = schema(&[("edge", 2), ("path", 2)]);
        let rules = vec![
            Rule::new(
                "base",
                Atom::vars("path", &["x", "y"]),
                vec![Atom::vars("edge", &["x", "y"])],
                vec![],
            )
            .unwrap(),
            Rule::new(
                "step",
                Atom::vars("path", &["x", "z"]),
                vec![
                    Atom::vars("edge", &["x", "y"]),
                    Atom::vars("path", &["y", "z"]),
                ],
                vec![],
            )
            .unwrap(),
        ];
        let mut with = Engine::with_provenance(db.clone(), rules.clone(), true).unwrap();
        let mut without = Engine::with_provenance(db, rules, false).unwrap();
        for e in [tuple!["a", "b"], tuple!["b", "c"], tuple!["c", "d"]] {
            with.insert_base("edge", e.clone()).unwrap();
            without.insert_base("edge", e).unwrap();
        }
        with.propagate().unwrap();
        without.propagate().unwrap();
        assert_eq!(
            with.relation_tuples("path"),
            without.relation_tuples("path")
        );
        assert!(with.stats().derivations > 0);
        assert_eq!(without.stats().derivations, 0, "graph not recorded");
        // Derived tuples have empty provenance without tracking.
        let p = without.provenance("path", &tuple!["a", "b"]).unwrap();
        assert!(p.is_zero());

        // Deletion still works (falls back to DRed) and agrees with the
        // provenance-tracking engine.
        with.remove_base(
            "edge",
            &tuple!["a", "b"],
            DeletionAlgorithm::ProvenanceBased,
        )
        .unwrap();
        without
            .remove_base(
                "edge",
                &tuple!["a", "b"],
                DeletionAlgorithm::ProvenanceBased,
            )
            .unwrap();
        assert_eq!(
            with.relation_tuples("path"),
            without.relation_tuples("path")
        );
    }

    #[test]
    fn join_order_handles_delta_at_last_atom() {
        // r3(x,z) :- r1(x,y), r2(y,z), with the delta arriving at r2: the
        // planner must start from r2 and probe r1 by index rather than
        // cross-producting r1 × r2.
        let db = schema(&[("r1", 2), ("r2", 2), ("r3", 2)]);
        let rule = Rule::new(
            "j",
            Atom::vars("r3", &["x", "z"]),
            vec![Atom::vars("r1", &["x", "y"]), Atom::vars("r2", &["y", "z"])],
            vec![],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![rule]).unwrap();
        for i in 0..50 {
            e.insert_base("r1", tuple![format!("x{i}"), format!("y{i}")])
                .unwrap();
        }
        e.propagate().unwrap();
        // Delta at r2.
        e.insert_base("r2", tuple!["y7", "z7"]).unwrap();
        e.propagate().unwrap();
        assert_eq!(e.relation_tuples("r3"), vec![tuple!["x7", "z7"]]);
        // The planner probes: firings stay near the delta size, far below
        // the 50 × 1 cross product.
        assert!(e.stats().firings <= 3, "firings = {}", e.stats().firings);
    }
}
