//! The semi-naive fixpoint engine with provenance and incremental
//! maintenance.
//!
//! The engine owns the *materialized update-exchange state* of a CDSS
//! epoch: all peers' base (published) tuples, every tuple derivable through
//! the mapping program, and the provenance graph connecting them.
//!
//! Incremental behaviour — the point of the paper's provenance formulation:
//!
//! * **Insertions** enter a pending delta; [`Engine::propagate`] runs
//!   semi-naive evaluation from the delta only, touching work proportional
//!   to the new derivations rather than the whole database.
//! * **Deletions** are propagated by either of two algorithms
//!   ([`DeletionAlgorithm`]): the provenance-based test (restrict
//!   derivability to the affected subgraph — Orchestra's approach) or
//!   classic **DRed** (over-delete then re-derive by rule re-evaluation —
//!   the baseline), selected per call so benches can compare them
//!   (experiment E6).
//!
//! Every externally visible change to the materialized state is appended to
//! a change log ([`Engine::drain_changes`]) — update translation packages
//! those per-transaction (the `orchestra-core` crate).
//!
//! ## The interned join pipeline
//!
//! Internally the engine never touches a
//! [`Value`](orchestra_relational::Value): at the API boundary every tuple
//! is interned through a [`ValueInterner`] into a [`SymTuple`] of dense
//! `u32` [`Sym`]s, and the whole evaluation pipeline — storage, secondary
//! indexes, join probes, provenance-node interning — runs on integers:
//!
//! * **Fixed-width index keys.** Secondary indexes map `[Sym]` slices to
//!   tuple lists; probes hash a handful of words and borrow the posting
//!   list in place (no per-probe `Vec` materialization, no `Value`
//!   clones).
//! * **Cached join plans.** The greedy join order (delta atom first, then
//!   most-bound-first) depends only on `(rule, delta position)` — it is
//!   compiled **once** per rule into a [`JoinPlan`] whose steps record
//!   statically which columns to probe, which to bind, and which filters
//!   become ready; execution is a plan interpreter with zero planning or
//!   `CompiledRule` cloning per delta batch.
//! * **Borrow-based candidate iteration.** Probe results are borrowed
//!   slices into the index; scans iterate the live tuple table directly.
//!   The only steady-state allocations are the derived head tuples
//!   themselves.
//! * **Integer skolemization.** Labeled nulls invented by tgd heads go
//!   through [`ValueInterner::intern_skolem`], one hash probe over
//!   `(function, arg syms)` once a null has been invented before.
//!
//! ## Sharded, shard-parallel evaluation
//!
//! Relations are stored as [`ShardedRel`]s: hash-partitioned into a fixed
//! number of shards on the relation's **partition columns** (the probe
//! column set the compiled plans use most — its dominant join/index key),
//! with per-shard insertion-ordered tuple tables and per-shard `[Sym]`
//! probe tables. A probe that covers the partition columns touches one
//! shard; others fan out in shard order.
//!
//! Each semi-naive round proceeds in three phases:
//!
//! 1. **Plan (sequential).** The pending delta is split into per-shard
//!    frontiers; any missing indexes are built.
//! 2. **Join (parallel).** One task per `(relation, rule, delta position,
//!    shard)` runs the plan interpreter over that shard's frontier against
//!    an immutable snapshot of the round's database. Tasks are pure reads
//!    — the interner, node table, and provenance graph are untouched —
//!    and stage their rule firings (with Skolem heads unresolved) plus
//!    per-task counters in private buffers. With `threads > 1` and a
//!    large enough frontier, tasks run on a reusable [`WorkerPool`];
//!    otherwise they run inline on the calling thread — **the single-thread
//!    path is `threads = 1` of the same code**, not a second engine.
//! 3. **Merge (partitioned).** Workers route every staged firing to its
//!    head tuple's shard (the same content-based routing the relations
//!    use), so the node table, provenance graph, and relation storage —
//!    all partitioned by that routing — drain through one per-shard sink
//!    each, concurrently (see [`crate::merge`]). A short sequential
//!    pre-pass folds per-task counters and interns first-occurrence
//!    labeled nulls (the only interner mutation); cross-shard provenance
//!    edges are spliced from per-target outboxes afterwards; and the
//!    sinks' counters, change-log entries, and next-round deltas fold
//!    back in shard order. Every mutation therefore happens in an order
//!    that is a pure function of the input — task order within a shard,
//!    shard order across shards — which makes the provenance graph,
//!    `NodeId` assignment (shard in the id's high bits, per-shard
//!    assignment order below), and [`Engine::drain_changes`] order
//!    identical at any thread count (pinned by the `engine_parity_props`
//!    suite).
//!
//! Symbols are process-local (insertion-ordered); everything that leaves
//! the engine — the change log, [`Engine::relation_tuples`], provenance
//! resolution — is translated back to `Value` tuples, and durable layers
//! serialize those structurally, so persisted state never depends on
//! interner ordering.

use crate::ast::{Filter, Rule, RuleId, Term};
use crate::error::DatalogError;
use crate::merge::{self, Firing, TaskOut};
use crate::node::{NodeId, NodeTable, RelId};
use crate::provgraph::ProvGraph;
use crate::Result;
use orchestra_provenance::Polynomial;
use orchestra_relational::{
    default_threads, host_parallelism, CmpOp, DatabaseSchema, Job, ShardedRel, Sym, SymTuple,
    Tuple, Value, ValueInterner, WorkerPool, DEFAULT_SHARDS,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Which deletion-propagation algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeletionAlgorithm {
    /// Orchestra's approach: test well-founded derivability over the
    /// affected region of the stored provenance graph.
    ProvenanceBased,
    /// The classic delete-and-rederive baseline: over-delete everything
    /// transitively derived through the deleted tuples by re-evaluating
    /// rules, then re-derive survivors from the remaining database.
    DRed,
}

/// Did a change add or remove a tuple?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeKind {
    /// The tuple became present.
    Added,
    /// The tuple became absent.
    Removed,
}

/// One externally visible change to the materialized state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Change {
    /// Relation the tuple belongs to.
    pub relation: Arc<str>,
    /// The tuple.
    pub tuple: Tuple,
    /// Added or removed.
    pub kind: ChangeKind,
    /// The tuple's interned node id.
    pub node: NodeId,
}

/// Aggregate counters, for the experiment harness.
///
/// Under parallel evaluation every counter stays **lost-update-safe**:
/// workers count into private per-task buffers that the merge phase folds
/// in at each round's barrier, so counts are identical at any thread
/// count (no racing increments, no atomics on the hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Semi-naive rounds executed.
    pub rounds: u64,
    /// Rule firings that produced a (possibly duplicate) head.
    pub firings: u64,
    /// Distinct derivation records added.
    pub derivations: u64,
    /// Tuples added to the materialized state.
    pub tuples_added: u64,
    /// Tuples removed from the materialized state.
    pub tuples_removed: u64,
    /// Secondary indexes built from scratch (first probe on a column set).
    pub index_builds: u64,
    /// Index probes issued by the join pipeline.
    pub index_probes: u64,
    /// Distinct values in the engine's interner.
    pub interner_symbols: u64,
    /// Intern calls answered without creating a symbol.
    pub interner_hits: u64,
    /// Labeled nulls re-invented through the integer fast path.
    pub skolem_fast_path: u64,
}

impl std::ops::AddAssign for EngineStats {
    fn add_assign(&mut self, o: EngineStats) {
        self.rounds += o.rounds;
        self.firings += o.firings;
        self.derivations += o.derivations;
        self.tuples_added += o.tuples_added;
        self.tuples_removed += o.tuples_removed;
        self.index_builds += o.index_builds;
        self.index_probes += o.index_probes;
        self.interner_symbols += o.interner_symbols;
        self.interner_hits += o.interner_hits;
        self.skolem_fast_path += o.skolem_fast_path;
    }
}

/// Default minimum round size (delta tuples) before a round's join phase
/// is dispatched to the worker pool: smaller rounds run inline — identical
/// results, none of the wakeup overhead.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1024;

/// Evaluation tunables: worker threads, shard count, and the parallel
/// dispatch threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Concurrent evaluation lanes (helper threads + the calling thread).
    /// `1` disables the pool entirely; results are identical either way.
    pub threads: usize,
    /// Fixed shard count for every relation's [`ShardedRel`].
    pub shards: usize,
    /// Minimum delta tuples in a round before going parallel.
    pub parallel_threshold: usize,
}

impl Default for EvalOptions {
    /// Threads default to `ORCHESTRA_EVAL_THREADS` (or the machine's
    /// available parallelism), **clamped to the host's parallelism** —
    /// oversubscribing cores never helps the deterministic pipeline and
    /// measurably regresses merge-heavy workloads (the 4/8-thread E11
    /// rows on a 2-core host). Explicit `EvalOptions { threads, .. }` and
    /// [`Engine::set_threads`] values are honored unclamped. Shards
    /// default to [`DEFAULT_SHARDS`].
    fn default() -> Self {
        EvalOptions {
            threads: default_threads().min(host_parallelism()).max(1),
            shards: DEFAULT_SHARDS,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }
}

/// A term compiled against a rule's dense variable numbering. Constants
/// are pre-interned, so runtime comparisons are symbol comparisons.
#[derive(Debug, Clone)]
enum Slot {
    Var(usize),
    Const(Sym),
    Skolem { function: Arc<str>, args: Vec<Slot> },
}

#[derive(Debug, Clone)]
struct CompiledAtom {
    rel: RelId,
    slots: Vec<Slot>,
}

#[derive(Debug, Clone)]
struct CompiledFilter {
    op: CmpOp,
    /// Dense ids of the variables the filter references; the plan applies
    /// it at the earliest step after which all of them are bound.
    vars: Vec<usize>,
    left: Slot,
    right: Slot,
}

#[derive(Debug, Clone)]
struct CompiledRule {
    id: RuleId,
    head: CompiledAtom,
    body: Vec<CompiledAtom>,
    filters: Vec<CompiledFilter>,
    num_vars: usize,
}

// ------------------------------------------------------------ join plans

/// Where a probe-key symbol comes from.
#[derive(Debug, Clone)]
enum KeySrc {
    Const(Sym),
    Var(usize),
}

/// How a step obtains its candidate tuples.
#[derive(Debug, Clone)]
enum Source {
    /// The caller-supplied delta slice (first step of a delta plan).
    Delta,
    /// Full iteration of the relation's live tuples (nothing bound).
    Scan,
    /// Index probe on the statically bound columns.
    Probe {
        cols: Box<[usize]>,
        key: Box<[KeySrc]>,
        /// When the probe covers the relation's partition columns:
        /// `part[i]` is the offset of the i-th partition column inside
        /// `cols`/`key`, so the probe targets a single shard. `None` ⇒
        /// fan out across shards. Filled in by
        /// [`Engine::annotate_plans`] once partitions are chosen.
        part: Option<Box<[usize]>>,
    },
}

/// Per-column action when matching one candidate tuple.
#[derive(Debug, Clone)]
enum ColAction {
    /// Column is covered by the probe key — guaranteed to match.
    Ignore,
    /// Column must equal this constant (delta/scan steps only).
    CheckConst(Sym),
    /// First occurrence of an unbound variable: bind it.
    Bind(usize),
    /// Variable already bound (earlier step, or earlier column of this
    /// atom): must match.
    CheckVar(usize),
}

/// One step of a compiled join: which atom, how to get candidates, what to
/// do per column, and which filters become ready afterwards.
#[derive(Debug, Clone)]
struct StepPlan {
    atom: usize,
    source: Source,
    actions: Box<[ColAction]>,
    /// Variables this step binds (reset on backtrack).
    binds: Box<[usize]>,
    /// Filters whose variables are all bound once this step matched.
    filters: Box<[usize]>,
}

/// A join order plus per-step access paths, compiled once per
/// `(rule, delta position)` — execution never re-plans and never clones
/// the rule.
#[derive(Debug, Clone)]
struct JoinPlan {
    steps: Vec<StepPlan>,
    /// Body contains a Skolem slot: no tuple can ever match (mapping
    /// compilation never produces these; hand-built rules could).
    impossible: bool,
}

/// All plans for one rule: one per delta position, plus the head-seeded
/// plan used by DRed re-derivation.
#[derive(Debug, Clone)]
struct RulePlans {
    delta: Vec<JoinPlan>,
    seeded: JoinPlan,
}

impl JoinPlan {
    /// Greedy join order — the delta atom (if any) first, then repeatedly
    /// the atom with the most statically bound positions (constants +
    /// bound variables) — with every step's access path decided at compile
    /// time. `pre_bound` marks variables seeded before the join (head
    /// bindings during DRed re-derivation).
    fn build(rule: &CompiledRule, delta_pos: Option<usize>, pre_bound: &[bool]) -> JoinPlan {
        let n = rule.body.len();
        let mut bound = pre_bound.to_vec();
        let mut used = vec![false; n];
        let mut filter_done = vec![false; rule.filters.len()];
        let mut steps = Vec::with_capacity(n);
        let mut impossible = false;
        for step_i in 0..n {
            let ai = match (step_i, delta_pos) {
                (0, Some(dp)) => dp,
                _ => {
                    let mut best = usize::MAX;
                    let mut best_score = -1i64;
                    for (cand, &cand_used) in used.iter().enumerate() {
                        if cand_used {
                            continue;
                        }
                        let score = rule.body[cand]
                            .slots
                            .iter()
                            .filter(|s| match s {
                                Slot::Const(_) => true,
                                Slot::Var(v) => bound[*v],
                                Slot::Skolem { .. } => false,
                            })
                            .count() as i64;
                        if score > best_score {
                            best_score = score;
                            best = cand;
                        }
                    }
                    best
                }
            };
            used[ai] = true;
            let atom = &rule.body[ai];
            let is_delta = step_i == 0 && delta_pos.is_some();
            let bound_before = bound.clone();
            let mut probe_cols: Vec<usize> = Vec::new();
            let mut key: Vec<KeySrc> = Vec::new();
            let mut actions: Vec<ColAction> = Vec::with_capacity(atom.slots.len());
            let mut binds: Vec<usize> = Vec::new();
            for (ci, slot) in atom.slots.iter().enumerate() {
                match slot {
                    Slot::Const(s) => {
                        if is_delta {
                            actions.push(ColAction::CheckConst(*s));
                        } else {
                            probe_cols.push(ci);
                            key.push(KeySrc::Const(*s));
                            actions.push(ColAction::Ignore);
                        }
                    }
                    Slot::Var(v) => {
                        if bound_before[*v] {
                            if is_delta {
                                actions.push(ColAction::CheckVar(*v));
                            } else {
                                probe_cols.push(ci);
                                key.push(KeySrc::Var(*v));
                                actions.push(ColAction::Ignore);
                            }
                        } else if bound[*v] {
                            // Repeated within this atom: first occurrence
                            // binds, later ones compare.
                            actions.push(ColAction::CheckVar(*v));
                        } else {
                            bound[*v] = true;
                            binds.push(*v);
                            actions.push(ColAction::Bind(*v));
                        }
                    }
                    Slot::Skolem { .. } => {
                        impossible = true;
                        actions.push(ColAction::Ignore);
                    }
                }
            }
            let source = if is_delta {
                Source::Delta
            } else if probe_cols.is_empty() {
                Source::Scan
            } else {
                Source::Probe {
                    cols: probe_cols.into(),
                    key: key.into(),
                    part: None,
                }
            };
            let filters: Vec<usize> = rule
                .filters
                .iter()
                .enumerate()
                .filter(|(fi, f)| !filter_done[*fi] && f.vars.iter().all(|&v| bound[v]))
                .map(|(fi, _)| fi)
                .collect();
            for &fi in &filters {
                filter_done[fi] = true;
            }
            steps.push(StepPlan {
                atom: ai,
                source,
                actions: actions.into(),
                binds: binds.into(),
                filters: filters.into(),
            });
        }
        JoinPlan { steps, impossible }
    }
}

// ---------------------------------------------------------- plan executor

/// The plan interpreter. **Read-only** over the engine: it borrows the
/// sharded data, the rule/plan storage, and the interner immutably, so
/// any number of `Exec`s can run concurrently over disjoint delta shards.
/// All effects are staged into the [`TaskOut`] buffers.
///
/// Everything resolvable against the round's immutable snapshot is
/// resolved **in the worker**: body node ids (every body tuple is alive
/// or a delta tuple, so it was interned when it first appeared), the
/// derivation's dedup fingerprint, the head's snapshot node/liveness,
/// already-interned Skolem nulls, and the head's **target shard** — so
/// the merge phase fans out over per-shard sinks with only the
/// first-occurrence nulls left on the sequential path.
struct Exec<'a> {
    rule: &'a CompiledRule,
    plan: &'a JoinPlan,
    data: &'a [ShardedRel<NodeId>],
    delta: Option<&'a [SymTuple]>,
    interner: &'a ValueInterner,
    nodes: &'a NodeTable,
    /// Shard count shared by every partitioned structure (head routing).
    shards: usize,
    bindings: Vec<Sym>,
    body_tuples: Vec<Option<&'a SymTuple>>,
    /// One reusable probe-key buffer per step: steady-state probing
    /// allocates nothing.
    key_bufs: Vec<Vec<Sym>>,
    /// Reusable posting-list buffers for probes that fan out across
    /// shards (non-covering column sets).
    slice_bufs: Vec<Vec<&'a [SymTuple]>>,
    out: TaskOut,
}

impl<'a> Exec<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        rule: &'a CompiledRule,
        plan: &'a JoinPlan,
        data: &'a [ShardedRel<NodeId>],
        delta: Option<&'a [SymTuple]>,
        interner: &'a ValueInterner,
        nodes: &'a NodeTable,
        shards: usize,
        bindings: Vec<Sym>,
    ) -> Self {
        Exec {
            body_tuples: vec![None; rule.body.len()],
            key_bufs: vec![Vec::new(); plan.steps.len()],
            slice_bufs: vec![Vec::new(); plan.steps.len()],
            out: TaskOut::default(),
            rule,
            plan,
            data,
            delta,
            interner,
            nodes,
            shards,
            bindings,
        }
    }

    fn run(&mut self) {
        if self.plan.impossible {
            return;
        }
        self.step(0);
    }

    fn step(&mut self, si: usize) {
        let plan = self.plan;
        if si == plan.steps.len() {
            self.emit();
            return;
        }
        let sp = &plan.steps[si];
        let data = self.data;
        match &sp.source {
            Source::Delta => {
                // analyze: allow(panic) -- plan selection sets Source::Delta only when run_delta supplied one
                let cands = self.delta.expect("delta plan executed without a delta");
                self.scan_candidates(si, sp, cands.iter());
            }
            Source::Scan => {
                let rd = &data[self.rule.body[sp.atom].rel.index()];
                self.scan_candidates(si, sp, rd.iter_tuples());
            }
            Source::Probe { cols, key, part } => {
                self.out.probes += 1;
                let mut buf = std::mem::take(&mut self.key_bufs[si]);
                buf.clear();
                for src in key.iter() {
                    buf.push(match src {
                        KeySrc::Const(s) => *s,
                        KeySrc::Var(v) => self.bindings[*v],
                    });
                }
                let rd = &data[self.rule.body[sp.atom].rel.index()];
                match part {
                    Some(positions) => {
                        // Covering probe: one shard owns every match.
                        let shard = rd.shard_for_key(positions, &buf);
                        let cands = rd.probe_shard(shard, cols, &buf);
                        self.key_bufs[si] = buf;
                        self.scan_candidates(si, sp, cands.iter());
                    }
                    None => {
                        // Fan out: collect per-shard posting lists, then
                        // iterate them in shard order (deterministic).
                        let mut slices = std::mem::take(&mut self.slice_bufs[si]);
                        slices.clear();
                        rd.probe_slices_into(cols, &buf, &mut slices);
                        self.key_bufs[si] = buf;
                        self.scan_candidates(si, sp, slices.iter().flat_map(|s| s.iter()));
                        self.slice_bufs[si] = slices;
                    }
                }
            }
        }
    }

    fn scan_candidates(
        &mut self,
        si: usize,
        sp: &'a StepPlan,
        cands: impl Iterator<Item = &'a SymTuple>,
    ) {
        'next_tuple: for t in cands {
            // Delta tuples are caller-supplied; everything else comes from
            // schema-validated storage.
            if t.arity() != sp.actions.len() {
                continue;
            }
            for (ci, act) in sp.actions.iter().enumerate() {
                let ok = match act {
                    ColAction::Ignore => true,
                    ColAction::CheckConst(s) => t[ci] == *s,
                    ColAction::CheckVar(v) => t[ci] == self.bindings[*v],
                    ColAction::Bind(v) => {
                        self.bindings[*v] = t[ci];
                        true
                    }
                };
                if !ok {
                    self.reset_binds(sp);
                    continue 'next_tuple;
                }
            }
            for &fi in sp.filters.iter() {
                if !self.filter_ok(fi) {
                    self.reset_binds(sp);
                    continue 'next_tuple;
                }
            }
            self.body_tuples[sp.atom] = Some(t);
            self.step(si + 1);
            self.body_tuples[sp.atom] = None;
            self.reset_binds(sp);
        }
    }

    #[inline]
    fn reset_binds(&mut self, sp: &StepPlan) {
        for &v in sp.binds.iter() {
            self.bindings[v] = Sym::NONE;
        }
    }

    fn filter_ok(&self, fi: usize) -> bool {
        let f = &self.rule.filters[fi];
        match (self.slot_sym(&f.left), self.slot_sym(&f.right)) {
            (Some(l), Some(r)) => match f.op {
                // Interning is injective: symbol equality is value equality.
                CmpOp::Eq => l == r,
                CmpOp::Ne => l != r,
                op => op.apply(self.interner.resolve(l), self.interner.resolve(r)),
            },
            // A filter mentioning a Skolem term (hand-built rules only —
            // tgd compilation never does this): compare structurally by
            // value, which needs no interner mutation.
            _ => {
                let l = self.slot_value(&f.left);
                let r = self.slot_value(&f.right);
                f.op.apply(&l, &r)
            }
        }
    }

    /// The symbol of a slot under the current bindings; `None` for Skolem
    /// slots (their null may not have been interned yet).
    fn slot_sym(&self, slot: &Slot) -> Option<Sym> {
        match slot {
            Slot::Var(v) => Some(self.bindings[*v]),
            Slot::Const(s) => Some(*s),
            Slot::Skolem { .. } => None,
        }
    }

    /// The value of a slot under the current bindings, constructing
    /// labeled nulls structurally (read-only fallback for filters).
    fn slot_value(&self, slot: &Slot) -> Value {
        match slot {
            Slot::Var(v) => self.interner.resolve(self.bindings[*v]).clone(),
            Slot::Const(s) => self.interner.resolve(*s).clone(),
            Slot::Skolem { function, args } => Value::skolem(
                Arc::clone(function),
                args.iter().map(|a| self.slot_value(a)).collect(),
            ),
        }
    }

    /// All atoms bound: stage the head, resolve the body node ids in
    /// original rule-body order (derivation identity depends on it),
    /// precompute the dedup fingerprint, and route the firing to its head
    /// shard — all against the round's immutable snapshot.
    ///
    /// Skolem head slots resolve read-only when every null already exists
    /// in the snapshot interner (the steady state once a null has been
    /// invented); a single missing null defers the whole head to the
    /// merge's sequential Skolem pass instead.
    fn emit(&mut self) {
        let rule = self.rule;
        let mut skolems: Vec<(u32, Vec<Sym>)> = Vec::new();
        let mut head_syms: Vec<Sym> = Vec::with_capacity(rule.head.slots.len());
        for (ci, s) in rule.head.slots.iter().enumerate() {
            head_syms.push(match s {
                Slot::Var(v) => {
                    let sym = self.bindings[*v];
                    debug_assert!(!sym.is_none(), "unbound head slot");
                    sym
                }
                Slot::Const(c) => *c,
                Slot::Skolem { args, .. } => {
                    let arg_syms: Vec<Sym> = args
                        .iter()
                        // analyze: allow(panic) -- Tgd compilation rejects any skolem arg that is not a var or constant
                        .map(|a| self.slot_sym(a).expect("skolem args are vars/constants"))
                        .collect();
                    skolems.push((ci as u32, arg_syms));
                    Sym::NONE
                }
            });
        }
        if !skolems.is_empty() {
            let mut resolved: Vec<Sym> = Vec::with_capacity(skolems.len());
            let all_known = skolems.iter().all(|(ci, args)| {
                let Slot::Skolem { function, .. } = &rule.head.slots[*ci as usize] else {
                    // analyze: allow(panic) -- skolems is built by iterating exactly the head's skolem slots
                    unreachable!("staged skolem at a non-skolem head slot")
                };
                match self.interner.get_skolem(function, args) {
                    Some(sym) => {
                        resolved.push(sym);
                        true
                    }
                    None => false,
                }
            });
            if all_known {
                for ((ci, _), sym) in skolems.iter().zip(resolved) {
                    head_syms[*ci as usize] = sym;
                }
                self.out.skolem_hits += skolems.len() as u64;
                skolems.clear();
            }
        }
        let head = SymTuple::new(head_syms);
        let body_nodes: Vec<NodeId> = (0..rule.body.len())
            .map(|i| {
                // analyze: allow(panic) -- a firing is only staged after every body atom matched, binding all slots
                let t = self.body_tuples[i].expect("bound");
                let rel = rule.body[i].rel;
                // Every candidate is either alive — its node rides along
                // as the relation payload — or a delta tuple interned at
                // `insert_base` / the merge that produced it; DRed's
                // over-deletion additionally joins deltas already removed
                // from `data`, whose nodes remain in the table.
                self.data[rel.index()]
                    .get(t)
                    .or_else(|| {
                        let shard = self.data[rel.index()].shard_of(t);
                        self.nodes.get(shard, rel, t)
                    })
                    // analyze: allow(panic) -- see comment above: candidates are interned on insert or merge
                    .expect("body tuple interned")
            })
            .collect();
        let fp = crate::provgraph::derivation_fingerprint(&rule.id, &body_nodes);
        if skolems.is_empty() {
            // One probe answers both "does the head already have a node"
            // and "is it alive" as of the snapshot (dead-but-interned
            // heads read as None — the sink intern then hits the shard's
            // table, same result).
            let rd = &self.data[rule.head.rel.index()];
            let shard = rd.shard_of(&head);
            let head_node = rd.get_in(shard, &head);
            if self.out.routed.is_empty() {
                self.out.routed.resize_with(self.shards, Vec::new);
            }
            self.out.routed[shard].push(Firing {
                head,
                skolems,
                head_node,
                body_nodes,
                fp,
            });
        } else {
            self.out.unrouted.push(Firing {
                head,
                skolems,
                head_node: None,
                body_nodes,
                fp,
            });
        }
    }
}

/// Run one join task: evaluate `plan` for `rule` over `delta` against an
/// immutable database snapshot. Pure — safe to run on any thread.
#[allow(clippy::too_many_arguments)]
fn run_task(
    rule: &CompiledRule,
    plan: &JoinPlan,
    data: &[ShardedRel<NodeId>],
    interner: &ValueInterner,
    nodes: &NodeTable,
    shards: usize,
    delta: Option<&[SymTuple]>,
    bindings: Vec<Sym>,
) -> TaskOut {
    if plan.impossible {
        return TaskOut::default();
    }
    let mut exec = Exec::new(rule, plan, data, delta, interner, nodes, shards, bindings);
    exec.run();
    exec.out
}

/// Finalize a staged head: intern any deferred Skolem nulls (sequential —
/// this is the merge phase's exclusive right to mutate the interner).
fn resolve_head(interner: &mut ValueInterner, rule: &CompiledRule, firing: &Firing) -> SymTuple {
    if firing.skolems.is_empty() {
        return firing.head.clone();
    }
    let mut syms: Vec<Sym> = firing.head.syms().to_vec();
    for (ci, args) in &firing.skolems {
        let Slot::Skolem { function, .. } = &rule.head.slots[*ci as usize] else {
            // analyze: allow(panic) -- firing.skolems is built by iterating exactly the head's skolem slots
            unreachable!("staged skolem at a non-skolem head slot")
        };
        syms[*ci as usize] = interner.intern_skolem(function, args);
    }
    SymTuple::new(syms)
}

/// One join task of a round: rule × delta position × delta shard.
struct TaskSpec {
    ri: u32,
    ai: u32,
    rel: u32,
    shard: u32,
}

// ----------------------------------------------------------------- engine

/// The provenance-annotated, incrementally maintained datalog engine.
#[derive(Debug, Clone)]
pub struct Engine {
    schema: DatabaseSchema,
    rules: Vec<CompiledRule>,
    plans: Vec<RulePlans>,
    /// body relation → (rule index, body atom position), indexed by RelId.
    rules_by_body: Vec<Vec<(u32, u32)>>,
    interner: ValueInterner,
    /// RelId → relation name.
    rel_names: Vec<Arc<str>>,
    /// relation name → RelId.
    rel_ids: HashMap<Arc<str>, RelId>,
    nodes: NodeTable,
    graph: ProvGraph,
    /// Indexed by RelId: hash-partitioned storage with per-shard indexes.
    data: Vec<ShardedRel<NodeId>>,
    /// Tuples inserted but not yet propagated.
    pending: Vec<(RelId, SymTuple)>,
    changes: Vec<Change>,
    stats: EngineStats,
    /// The slice of `stats` already exported to the `orchestra-obs`
    /// registry: the hot loops keep their plain `&mut` increments (no
    /// atomics per tuple), and [`obs_flush_stats`](Self::obs_flush_stats)
    /// publishes the diff once per propagate/remove entry point.
    mirrored: EngineStats,
    /// When false, derivations are not recorded (ablation baseline for
    /// experiment E5). Provenance-based deletion then falls back to DRed.
    track_provenance: bool,
    opts: EvalOptions,
    /// Lazily created; shared between cloned engines (and across a CDSS's
    /// peer engines) via `Arc`.
    pool: Option<Arc<WorkerPool>>,
    /// A lazily-initialized pool slot shared with sibling engines (a CDSS
    /// hands every peer engine the same slot): the first engine to
    /// actually dispatch a parallel round creates the pool, siblings
    /// reuse it, and nothing spawns threads for workloads that never
    /// cross the parallel threshold.
    shared_pool: Option<Arc<std::sync::OnceLock<Arc<WorkerPool>>>>,
}

impl Engine {
    /// Build an engine for a schema and a mapping program.
    pub fn new(schema: DatabaseSchema, rules: Vec<Rule>) -> Result<Engine> {
        Self::with_provenance(schema, rules, true)
    }

    /// Build an engine, optionally **without** provenance tracking — the
    /// ablation baseline of experiment E5. Without provenance, trust
    /// evaluation and provenance-based deletion are unavailable
    /// ([`remove_base`](Engine::remove_base) silently uses DRed), but
    /// insert propagation is cheaper.
    pub fn with_provenance(
        schema: DatabaseSchema,
        rules: Vec<Rule>,
        track_provenance: bool,
    ) -> Result<Engine> {
        Self::with_options(schema, rules, track_provenance, EvalOptions::default())
    }

    /// Build an engine with explicit evaluation tunables (thread count,
    /// shard count, parallel threshold).
    pub fn with_options(
        schema: DatabaseSchema,
        rules: Vec<Rule>,
        track_provenance: bool,
        opts: EvalOptions,
    ) -> Result<Engine> {
        let opts = EvalOptions {
            threads: opts.threads.max(1),
            // NodeIds pack the shard into their high bits, so the shard
            // count is bounded by the id space.
            shards: opts.shards.clamp(1, NodeId::MAX_SHARDS),
            parallel_threshold: opts.parallel_threshold,
        };
        let mut rel_names: Vec<Arc<str>> = Vec::new();
        let mut rel_ids: HashMap<Arc<str>, RelId> = HashMap::new();
        let mut arities: Vec<usize> = Vec::new();
        for r in schema.relations() {
            let id = RelId(rel_names.len() as u32);
            rel_names.push(r.name_arc());
            rel_ids.insert(r.name_arc(), id);
            arities.push(r.arity());
        }
        let mut interner = ValueInterner::new();
        let mut compiled = Vec::with_capacity(rules.len());
        let mut plans = Vec::with_capacity(rules.len());
        let mut rules_by_body: Vec<Vec<(u32, u32)>> = vec![Vec::new(); rel_names.len()];
        for (ri, rule) in rules.into_iter().enumerate() {
            let c = Self::compile_rule(&schema, &rel_ids, &mut interner, rule)?;
            for (ai, atom) in c.body.iter().enumerate() {
                rules_by_body[atom.rel.index()].push((ri as u32, ai as u32));
            }
            plans.push(Self::build_plans(&c));
            compiled.push(c);
        }
        // Pick each relation's partition columns from the compiled plans
        // (most-probed column set), then annotate every probe step with
        // its single-shard target where the probe covers them.
        let partitions = Self::choose_partitions(&arities, &compiled, &plans);
        Self::annotate_plans(&compiled, &mut plans, &partitions);
        let data = partitions
            .iter()
            .map(|cols| ShardedRel::new(opts.shards, cols.clone()))
            .collect();
        // The node table and provenance graph partition by the same shard
        // routing as the relations, so the merge phase's per-shard sinks
        // line up across all three.
        let mut graph = ProvGraph::new();
        graph.ensure_shards(opts.shards);
        Ok(Engine {
            schema,
            rules: compiled,
            plans,
            rules_by_body,
            interner,
            rel_names,
            rel_ids,
            nodes: NodeTable::with_shards(opts.shards),
            graph,
            data,
            pending: Vec::new(),
            changes: Vec::new(),
            stats: EngineStats::default(),
            mirrored: EngineStats::default(),
            track_provenance,
            opts,
            pool: None,
            shared_pool: None,
        })
    }

    /// Choose each relation's partition columns: the probe column set the
    /// compiled **delta** plans use most often (those run every round;
    /// head-seeded plans only serve DRed re-derivation and count as a
    /// fallback). Ties break on the lexicographically smallest set —
    /// deterministic. Relations never probed partition on the whole tuple.
    fn choose_partitions(
        arities: &[usize],
        rules: &[CompiledRule],
        plans: &[RulePlans],
    ) -> Vec<Vec<usize>> {
        let mut delta_counts: Vec<HashMap<Box<[usize]>, usize>> =
            vec![HashMap::new(); arities.len()];
        let mut seeded_counts: Vec<HashMap<Box<[usize]>, usize>> =
            vec![HashMap::new(); arities.len()];
        for (ri, rp) in plans.iter().enumerate() {
            let tally = |plan: &JoinPlan, counts: &mut Vec<HashMap<Box<[usize]>, usize>>| {
                for sp in &plan.steps {
                    if let Source::Probe { cols, .. } = &sp.source {
                        let rel = rules[ri].body[sp.atom].rel.index();
                        *counts[rel].entry(cols.clone()).or_insert(0) += 1;
                    }
                }
            };
            for plan in &rp.delta {
                tally(plan, &mut delta_counts);
            }
            tally(&rp.seeded, &mut seeded_counts);
        }
        let pick = |m: &HashMap<Box<[usize]>, usize>| -> Option<Vec<usize>> {
            let mut entries: Vec<(&Box<[usize]>, &usize)> = m.iter().collect();
            entries.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            entries.first().map(|(cols, _)| cols.to_vec())
        };
        (0..arities.len())
            .map(|rel| {
                pick(&delta_counts[rel])
                    .or_else(|| pick(&seeded_counts[rel]))
                    .unwrap_or_else(|| (0..arities[rel]).collect())
            })
            .collect()
    }

    /// Mark every probe step whose column set covers the target
    /// relation's partition columns with the key positions of those
    /// columns, so execution routes it to a single shard.
    fn annotate_plans(rules: &[CompiledRule], plans: &mut [RulePlans], partitions: &[Vec<usize>]) {
        for (ri, rp) in plans.iter_mut().enumerate() {
            for plan in rp.delta.iter_mut().chain(std::iter::once(&mut rp.seeded)) {
                for sp in &mut plan.steps {
                    if let Source::Probe { cols, part, .. } = &mut sp.source {
                        let rel = rules[ri].body[sp.atom].rel.index();
                        *part = partitions[rel]
                            .iter()
                            .map(|pc| cols.iter().position(|c| c == pc))
                            .collect();
                    }
                }
            }
        }
    }

    /// Compile every join plan a rule can need: one per delta position
    /// plus the head-seeded plan for DRed re-derivation. Planning happens
    /// exactly once per rule — delta batches reuse these verbatim.
    fn build_plans(rule: &CompiledRule) -> RulePlans {
        let no_seed = vec![false; rule.num_vars];
        let delta = (0..rule.body.len())
            .map(|ai| JoinPlan::build(rule, Some(ai), &no_seed))
            .collect();
        // Head-seeded: exactly the variables occurring as head Var slots
        // are bound before the join (Skolem-argument variables are not).
        let mut seed = vec![false; rule.num_vars];
        for slot in &rule.head.slots {
            if let Slot::Var(v) = slot {
                seed[*v] = true;
            }
        }
        let seeded = JoinPlan::build(rule, None, &seed);
        RulePlans { delta, seeded }
    }

    fn compile_rule(
        schema: &DatabaseSchema,
        rel_ids: &HashMap<Arc<str>, RelId>,
        interner: &mut ValueInterner,
        rule: Rule,
    ) -> Result<CompiledRule> {
        // Check relations and arities.
        let head_schema = schema
            .relation(&rule.head.relation)
            .map_err(|_| DatalogError::UnknownRelation(rule.head.relation.to_string()))?;
        if head_schema.arity() != rule.head.arity() {
            return Err(DatalogError::ArityMismatch {
                relation: rule.head.relation.to_string(),
                expected: head_schema.arity(),
                actual: rule.head.arity(),
            });
        }
        for atom in &rule.body {
            let rs = schema
                .relation(&atom.relation)
                .map_err(|_| DatalogError::UnknownRelation(atom.relation.to_string()))?;
            if rs.arity() != atom.arity() {
                return Err(DatalogError::ArityMismatch {
                    relation: atom.relation.to_string(),
                    expected: rs.arity(),
                    actual: atom.arity(),
                });
            }
        }

        // Dense variable numbering in first-occurrence order.
        let mut var_ids: HashMap<Arc<str>, usize> = HashMap::new();
        for atom in &rule.body {
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    let next = var_ids.len();
                    var_ids.entry(Arc::clone(v)).or_insert(next);
                }
            }
        }
        fn compile_term(
            t: &Term,
            var_ids: &HashMap<Arc<str>, usize>,
            interner: &mut ValueInterner,
        ) -> Slot {
            match t {
                Term::Var(v) => Slot::Var(var_ids[v]),
                Term::Const(c) => Slot::Const(interner.intern(c)),
                Term::Skolem { function, args } => Slot::Skolem {
                    function: Arc::clone(function),
                    args: args
                        .iter()
                        .map(|a| match a {
                            // analyze: allow(panic) -- Tgd::new validates skolem args are flat before compilation
                            Term::Skolem { .. } => unreachable!("nested skolems rejected by Tgd"),
                            other => compile_term(other, var_ids, interner),
                        })
                        .collect(),
                },
            }
        }

        let body: Vec<CompiledAtom> = rule
            .body
            .iter()
            .map(|a| CompiledAtom {
                rel: rel_ids[&a.relation],
                slots: a
                    .terms
                    .iter()
                    .map(|t| compile_term(t, &var_ids, interner))
                    .collect(),
            })
            .collect();
        let head = CompiledAtom {
            rel: rel_ids[&rule.head.relation],
            slots: rule
                .head
                .terms
                .iter()
                .map(|t| compile_term(t, &var_ids, interner))
                .collect(),
        };
        let filters: Vec<CompiledFilter> = rule
            .filters
            .iter()
            .map(|f: &Filter| {
                let vars = f.variables().iter().map(|v| var_ids[v]).collect();
                CompiledFilter {
                    vars,
                    op: f.op,
                    left: compile_term(&f.left, &var_ids, interner),
                    right: compile_term(&f.right, &var_ids, interner),
                }
            })
            .collect();
        Ok(CompiledRule {
            id: rule.id,
            head,
            body,
            filters,
            num_vars: var_ids.len(),
        })
    }

    /// The engine's schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The provenance graph.
    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }

    /// The node table.
    pub fn nodes(&self) -> &NodeTable {
        &self.nodes
    }

    /// The value interner (symbols are engine-local; see module docs).
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    /// Aggregate counters, including the interner's.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        let i = self.interner.stats();
        s.interner_symbols = i.symbols;
        s.interner_hits = i.hits;
        s.skolem_fast_path = i.skolem_fast_path;
        s
    }

    /// Publish the counters accumulated since the last flush to the
    /// `orchestra-obs` registry as `engine.*` deltas. Called once per
    /// propagate/deletion entry point — the hot loops never touch an
    /// atomic, so counts stay identical at any thread count.
    fn obs_flush_stats(&mut self) {
        if !orchestra_obs::ENABLED {
            return;
        }
        let d = self.stats();
        let m = self.mirrored;
        orchestra_obs::counter!("engine.rounds", d.rounds.saturating_sub(m.rounds));
        orchestra_obs::counter!("engine.firings", d.firings.saturating_sub(m.firings));
        orchestra_obs::counter!(
            "engine.derivations",
            d.derivations.saturating_sub(m.derivations)
        );
        orchestra_obs::counter!(
            "engine.tuples_added",
            d.tuples_added.saturating_sub(m.tuples_added)
        );
        orchestra_obs::counter!(
            "engine.tuples_removed",
            d.tuples_removed.saturating_sub(m.tuples_removed)
        );
        orchestra_obs::counter!(
            "engine.index_builds",
            d.index_builds.saturating_sub(m.index_builds)
        );
        orchestra_obs::counter!(
            "engine.index_probes",
            d.index_probes.saturating_sub(m.index_probes)
        );
        self.mirrored = d;
    }

    /// The engine's evaluation tunables.
    pub fn eval_options(&self) -> EvalOptions {
        self.opts
    }

    /// The evaluation thread count.
    pub fn threads(&self) -> usize {
        self.opts.threads
    }

    /// Change the evaluation thread count. Results are identical at any
    /// value (see module docs); only wall-clock changes. A mismatched
    /// lazily created pool is dropped and rebuilt on next use.
    pub fn set_threads(&mut self, threads: usize) {
        let t = threads.max(1);
        if t != self.opts.threads {
            self.opts.threads = t;
            self.pool = None;
        }
    }

    /// The per-relation shard count.
    pub fn shards(&self) -> usize {
        self.opts.shards
    }

    /// Share a worker pool with this engine (e.g. one pool across all of
    /// a CDSS's peer engines). Sets the thread count to the pool's size.
    pub fn set_worker_pool(&mut self, pool: Arc<WorkerPool>) {
        self.opts.threads = pool.size();
        self.pool = Some(pool);
    }

    /// Share a **lazy** pool slot with this engine: the pool is spawned
    /// only when some sharing engine first dispatches a parallel round.
    /// An engine whose thread count no longer matches the slot's pool
    /// falls back to a private pool; setting it back re-attaches.
    pub fn set_shared_pool_slot(&mut self, slot: Arc<std::sync::OnceLock<Arc<WorkerPool>>>) {
        self.shared_pool = Some(slot);
    }

    fn ensure_pool(&mut self) -> Arc<WorkerPool> {
        if let Some(p) = &self.pool {
            if p.size() == self.opts.threads {
                return Arc::clone(p);
            }
        }
        if let Some(slot) = &self.shared_pool {
            let p = slot.get_or_init(|| Arc::new(WorkerPool::new(self.opts.threads)));
            if p.size() == self.opts.threads {
                let p = Arc::clone(p);
                self.pool = Some(Arc::clone(&p));
                return p;
            }
        }
        let p = Arc::new(WorkerPool::new(self.opts.threads));
        self.pool = Some(Arc::clone(&p));
        p
    }

    /// The dense id of a relation, if known.
    pub fn rel_id(&self, relation: &str) -> Option<RelId> {
        self.rel_ids.get(relation).copied()
    }

    /// The interned node of `(relation, tuple)`, if both are known.
    pub fn node_id(&self, relation: &str, tuple: &Tuple) -> Option<NodeId> {
        let rel = self.rel_id(relation)?;
        let st = self.interner.get_tuple(tuple)?;
        let shard = self.data[rel.index()].shard_of(&st);
        self.nodes.get(shard, rel, &st)
    }

    /// The `(relation name, tuple)` behind a node id.
    pub fn resolve_node(&self, node: NodeId) -> Option<(&Arc<str>, Tuple)> {
        let (rel, st) = self.nodes.resolve(node)?;
        Some((
            &self.rel_names[rel.index()],
            self.interner.resolve_tuple(st),
        ))
    }

    /// True iff the relation currently contains the tuple.
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> bool {
        let Some(rel) = self.rel_id(relation) else {
            return false;
        };
        let Some(st) = self.interner.get_tuple(tuple) else {
            return false;
        };
        self.data[rel.index()].contains(&st)
    }

    /// Number of alive tuples in a relation.
    pub fn relation_len(&self, relation: &str) -> usize {
        self.rel_id(relation)
            .map_or(0, |r| self.data[r.index()].len())
    }

    /// Borrowing per-shard scan of a relation's alive tuples: interned
    /// tuples with their node ids, in the shards' deterministic sequence
    /// order (a pure function of the engine's mutation history — not
    /// insertion order once deletions happened), with **no** per-call
    /// materialization. Unknown relations yield nothing.
    pub fn scan<'e>(&'e self, relation: &str) -> impl Iterator<Item = (&'e SymTuple, NodeId)> + 'e {
        self.rel_id(relation)
            .into_iter()
            .flat_map(move |r| self.data[r.index()].iter().map(|(t, n)| (t, *n)))
    }

    /// Like [`scan`](Engine::scan), resolving each tuple back to values
    /// lazily (one tuple in flight at a time — reconcile/bench read paths
    /// use this instead of cloning whole relations).
    pub fn scan_resolved<'e>(&'e self, relation: &str) -> impl Iterator<Item = Tuple> + 'e {
        self.scan(relation)
            .map(move |(st, _)| self.interner.resolve_tuple(st))
    }

    /// Alive tuples of a relation, sorted (deterministic). Thin compat
    /// wrapper over [`scan_resolved`](Engine::scan_resolved) — prefer the
    /// iterators where a full sorted clone is not needed.
    pub fn relation_tuples(&self, relation: &str) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.scan_resolved(relation).collect();
        out.sort();
        out
    }

    /// Total alive tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.data.iter().map(ShardedRel::len).sum()
    }

    /// Drain the change log.
    pub fn drain_changes(&mut self) -> Vec<Change> {
        std::mem::take(&mut self.changes)
    }

    /// Insert a base (published) tuple. Idempotent: re-inserting an already
    /// base tuple is a no-op. If the tuple exists only as derived, it
    /// additionally becomes base (gaining independent support).
    pub fn insert_base(&mut self, relation: &str, tuple: Tuple) -> Result<NodeId> {
        let rel_schema = self
            .schema
            .relation(relation)
            .map_err(|_| DatalogError::UnknownRelation(relation.to_string()))?;
        rel_schema.validate(&tuple)?;
        let rel = self.rel_ids[relation];
        let st = self.interner.intern_tuple(&tuple);
        let shard = self.data[rel.index()].shard_of(&st);
        let node = self.nodes.intern(shard, rel, &st);
        if self.graph.is_base(node) {
            return Ok(node);
        }
        self.graph.add_base(node);
        let rd = &mut self.data[rel.index()];
        if rd.insert_if_absent(st.clone(), node) {
            self.stats.tuples_added += 1;
            self.changes.push(Change {
                relation: Arc::clone(&self.rel_names[rel.index()]),
                tuple,
                kind: ChangeKind::Added,
                node,
            });
            self.pending.push((rel, st));
        }
        Ok(node)
    }

    /// Run semi-naive propagation from the pending delta to fixpoint.
    /// Returns the number of newly derived tuples.
    ///
    /// Each round joins the delta against an immutable snapshot of the
    /// round's database — shard-parallel when `threads > 1` and the
    /// round is big enough — then merges the staged firings in a fixed
    /// order (see the module docs): the fixpoint, provenance graph,
    /// node ids, change order, and stats are identical at any thread
    /// count.
    pub fn propagate(&mut self) -> Result<usize> {
        let mut delta = std::mem::take(&mut self.pending);
        let mut new_tuples = 0usize;
        let n_rels = self.rel_names.len();
        let shards = self.opts.shards;
        while !delta.is_empty() {
            self.stats.rounds += 1;
            // Group the delta by dense rel id, in arrival order.
            let mut by_rel: Vec<Vec<SymTuple>> = vec![Vec::new(); n_rels];
            let mut total = 0usize;
            for (r, t) in delta.drain(..) {
                by_rel[r.index()].push(t);
                total += 1;
            }
            // Per-(relation, shard) delta frontiers — but only when the
            // round is big enough that splitting can pay: below the
            // threshold each relation keeps one frontier (and one task
            // per using rule), so tiny per-transaction rounds carry no
            // per-shard task overhead. The decision depends only on the
            // round's size — never on the thread count — so grouping,
            // task order, and therefore every downstream mutation stay
            // identical at any `threads` setting.
            let sharded = shards > 1 && total >= self.opts.parallel_threshold;
            let mut frontiers: Vec<Vec<Vec<SymTuple>>> = vec![Vec::new(); n_rels];
            for (rel, tuples) in by_rel.into_iter().enumerate() {
                if tuples.is_empty() {
                    continue;
                }
                if sharded {
                    let fr = &mut frontiers[rel];
                    fr.resize(shards, Vec::new());
                    for t in tuples {
                        let s = self.data[rel].shard_of(&t);
                        fr[s].push(t);
                    }
                } else {
                    frontiers[rel] = vec![tuples];
                }
            }
            // Sequential pre-phase: build any missing indexes so the join
            // phase only reads, and lay out the round's task list in its
            // fixed (relation, rule, shard) merge order.
            let mut tasks: Vec<TaskSpec> = Vec::new();
            orchestra_obs::time_histogram!("engine.round.plan_micros", {
                let Engine {
                    rules,
                    plans,
                    rules_by_body,
                    data,
                    stats,
                    ..
                } = self;
                for (rel, fr) in frontiers.iter().enumerate() {
                    if fr.is_empty() {
                        continue;
                    }
                    for &(ri, ai) in &rules_by_body[rel] {
                        let plan = &plans[ri as usize].delta[ai as usize];
                        for sp in &plan.steps {
                            if let Source::Probe { cols, .. } = &sp.source {
                                let target = rules[ri as usize].body[sp.atom].rel.index();
                                if data[target].ensure_index(cols) {
                                    stats.index_builds += 1;
                                }
                            }
                        }
                        for (s, tuples) in fr.iter().enumerate() {
                            if !tuples.is_empty() {
                                tasks.push(TaskSpec {
                                    ri,
                                    ai,
                                    rel: rel as u32,
                                    shard: s as u32,
                                });
                            }
                        }
                    }
                }
            });
            // Join phase: run every task against the round snapshot.
            let parallel =
                self.opts.threads > 1 && tasks.len() > 1 && total >= self.opts.parallel_threshold;
            let pool = if parallel {
                Some(self.ensure_pool())
            } else {
                None
            };
            let mut outs: Vec<Option<TaskOut>> = Vec::new();
            outs.resize_with(tasks.len(), || None);
            orchestra_obs::time_histogram!("engine.round.join_micros", {
                let Engine {
                    rules,
                    plans,
                    data,
                    interner,
                    nodes,
                    ..
                } = &*self;
                let run_one = |spec: &TaskSpec| -> TaskOut {
                    let rule = &rules[spec.ri as usize];
                    run_task(
                        rule,
                        &plans[spec.ri as usize].delta[spec.ai as usize],
                        data,
                        interner,
                        nodes,
                        shards,
                        Some(&frontiers[spec.rel as usize][spec.shard as usize]),
                        vec![Sym::NONE; rule.num_vars],
                    )
                };
                match pool.as_deref() {
                    Some(pool) => {
                        let jobs: Vec<Job<'_>> = outs
                            .iter_mut()
                            .zip(&tasks)
                            .map(|(slot, spec)| {
                                Box::new(move || {
                                    *slot = Some(run_one(spec));
                                }) as Job<'_>
                            })
                            .collect();
                        pool.run(jobs);
                    }
                    None => {
                        for (slot, spec) in outs.iter_mut().zip(&tasks) {
                            *slot = Some(run_one(spec));
                        }
                    }
                }
            });
            // Merge phase, partitioned by the same routing as the data.
            // Workers already routed each firing to its head's shard, so
            // the drains below are disjoint per shard and run on the
            // pool; every processing order is fixed (task order within a
            // shard, shard order across shards) and routing is a pure
            // function of tuple content, so NodeId assignment, provenance
            // recording, inserts, the change log, and the stats replay
            // identically at any thread count.
            delta = orchestra_obs::time_histogram!("engine.round.merge_micros", {
                let track = self.track_provenance;
                let Engine {
                    rules,
                    interner,
                    nodes,
                    graph,
                    data,
                    stats,
                    changes,
                    rel_names,
                    ..
                } = self;
                // M0 — sequential pre-pass, in task order: fold the join
                // phase's private counters and intern first-occurrence
                // labeled nulls (the merge's exclusive right to mutate
                // the interner), routing the now fully-resolved firings
                // into their task's shard buckets.
                let mut outs: Vec<TaskOut> = outs
                    .into_iter()
                    // analyze: allow(panic) -- the pool barrier completes every task before results are read
                    .map(|o| o.expect("join task executed"))
                    .collect();
                for (spec, out) in tasks.iter().zip(outs.iter_mut()) {
                    stats.index_probes += out.probes;
                    interner.note_skolem_hits(out.skolem_hits);
                    if out.unrouted.is_empty() {
                        continue;
                    }
                    if out.routed.is_empty() {
                        out.routed.resize_with(shards, Vec::new);
                    }
                    let rule = &rules[spec.ri as usize];
                    let head_rel = rule.head.rel;
                    for mut firing in out.unrouted.drain(..) {
                        firing.head = resolve_head(interner, rule, &firing);
                        firing.skolems.clear();
                        let rd = &data[head_rel.index()];
                        let shard = rd.shard_of(&firing.head);
                        firing.head_node = rd.get_in(shard, &firing.head);
                        out.routed[shard].push(firing);
                    }
                }
                // Transpose the per-task buckets into per-shard drain
                // queues (pointer moves only): `queues[s][k]` holds task
                // `k`'s firings for shard `s`.
                let mut queues: Vec<Vec<Vec<Firing>>> = Vec::new();
                queues.resize_with(shards, || Vec::with_capacity(tasks.len()));
                for out in outs.iter_mut() {
                    if out.routed.is_empty() {
                        for q in queues.iter_mut() {
                            q.push(Vec::new());
                        }
                    } else {
                        for (s, fs) in out.routed.drain(..).enumerate() {
                            queues[s].push(fs);
                        }
                    }
                }
                // M1 — per-shard sinks drain the queues concurrently.
                // Each sink owns shard `s` of the node table, the
                // provenance graph, and every relation, so the drains
                // never touch shared state.
                let rule_heads: Vec<(&RuleId, RelId)> = tasks
                    .iter()
                    .map(|spec| {
                        let rule = &rules[spec.ri as usize];
                        (&rule.id, rule.head.rel)
                    })
                    .collect();
                let mut sinks = merge::shard_sinks(nodes, graph, data);
                {
                    let interner = &*interner;
                    let rel_names: &[Arc<str>] = rel_names;
                    let rule_heads = &rule_heads;
                    let run_sink = |sink: &mut merge::ShardSink<'_>, queue: Vec<Vec<Firing>>| {
                        for (k, firings) in queue.into_iter().enumerate() {
                            let (rule_id, head_rel) = rule_heads[k];
                            sink.drain_task(rule_id, head_rel, firings, track, interner, rel_names);
                        }
                    };
                    match pool.as_deref() {
                        Some(pool) => {
                            let run_sink = &run_sink;
                            let jobs: Vec<Job<'_>> = sinks
                                .iter_mut()
                                .zip(queues)
                                .map(|(sink, queue)| {
                                    Box::new(move || run_sink(sink, queue)) as Job<'_>
                                })
                                .collect();
                            pool.run(jobs);
                        }
                        None => {
                            for (sink, queue) in sinks.iter_mut().zip(queues) {
                                run_sink(sink, queue);
                            }
                        }
                    }
                }
                // M2 — splice cross-shard body edges: collect each source
                // shard's outbox, transpose to per-target inboxes, and
                // let every target shard apply its inbox in the fixed
                // (target, source, recording) order.
                let outboxes: Vec<_> = sinks.iter_mut().map(|s| s.prov.take_outbox()).collect();
                let inboxes = ProvGraph::transpose_outboxes(outboxes);
                match pool.as_deref() {
                    Some(pool) => {
                        let jobs: Vec<Job<'_>> = sinks
                            .iter_mut()
                            .zip(inboxes)
                            .map(|(sink, inbox)| {
                                Box::new(move || sink.prov.splice_inbox(inbox)) as Job<'_>
                            })
                            .collect();
                        pool.run(jobs);
                    }
                    None => {
                        for (sink, inbox) in sinks.iter_mut().zip(inboxes) {
                            sink.prov.splice_inbox(inbox);
                        }
                    }
                }
                // M3 — sequential fold in shard order: counters, the
                // change log, and the next round's delta.
                let mut next_delta: Vec<(RelId, SymTuple)> = Vec::new();
                for sink in sinks {
                    stats.firings += sink.firings;
                    stats.derivations += sink.derivations;
                    stats.tuples_added += sink.tuples_added;
                    new_tuples += sink.tuples_added as usize;
                    changes.extend(sink.changes);
                    next_delta.extend(sink.next_delta);
                }
                next_delta
            });
        }
        self.obs_flush_stats();
        Ok(new_tuples)
    }

    /// Join one rule's body with a delta restriction at one atom position,
    /// using the plan cached at compile time. Returns
    /// `(head tuple, body node ids)` per firing — the sequential wrapper
    /// around the same plan interpreter the parallel rounds use (DRed's
    /// over-deletion closure runs through here).
    ///
    /// Delta tuples need not be present in `data` (DRed's over-deletion
    /// joins deltas that have already been removed).
    fn join_rule(
        &mut self,
        rule_idx: usize,
        delta_pos: usize,
        delta: &[SymTuple],
    ) -> Vec<(SymTuple, Vec<NodeId>)> {
        let shards = self.opts.shards;
        let Engine {
            rules,
            plans,
            data,
            nodes,
            interner,
            stats,
            ..
        } = self;
        let rule = &rules[rule_idx];
        let plan = &plans[rule_idx].delta[delta_pos];
        if plan.impossible {
            return Vec::new();
        }
        // Build any missing indexes up front so execution probes borrowed
        // slices with no further mutation of `data`.
        for sp in &plan.steps {
            if let Source::Probe { cols, .. } = &sp.source {
                if data[rule.body[sp.atom].rel.index()].ensure_index(cols) {
                    stats.index_builds += 1;
                }
            }
        }
        let out = run_task(
            rule,
            plan,
            data,
            interner,
            nodes,
            shards,
            Some(delta),
            vec![Sym::NONE; rule.num_vars],
        );
        stats.index_probes += out.probes;
        interner.note_skolem_hits(out.skolem_hits);
        out.into_firings()
            .map(|f| {
                let head = resolve_head(interner, rule, &f);
                (head, f.body_nodes)
            })
            .collect()
    }

    /// Remove a base tuple and propagate the deletion with the chosen
    /// algorithm. Returns `true` if the tuple was a base fact.
    ///
    /// The tuple may remain alive if it is still derivable through the
    /// mapping program (or was independently published elsewhere).
    pub fn remove_base(
        &mut self,
        relation: &str,
        tuple: &Tuple,
        algorithm: DeletionAlgorithm,
    ) -> Result<bool> {
        let Some(node) = self.node_id(relation, tuple) else {
            return Ok(false);
        };
        if !self.graph.remove_base(node) {
            return Ok(false);
        }
        // Without a provenance graph only rule re-evaluation can decide
        // what else must go.
        let algorithm = if self.track_provenance {
            algorithm
        } else {
            DeletionAlgorithm::DRed
        };
        match algorithm {
            DeletionAlgorithm::ProvenanceBased => self.delete_provenance_based(node),
            DeletionAlgorithm::DRed => self.delete_dred(node),
        }
        self.obs_flush_stats();
        Ok(true)
    }

    /// Provenance-based deletion: restrict attention to the subgraph
    /// forward-reachable from the deleted node and recompute well-founded
    /// derivability there, treating unaffected alive nodes as given.
    fn delete_provenance_based(&mut self, deleted: NodeId) {
        // Affected = forward closure through derivation uses.
        let mut affected: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        affected.insert(deleted);
        queue.push_back(deleted);
        while let Some(nd) = queue.pop_front() {
            let heads: Vec<NodeId> = self.graph.uses_of(nd).map(|d| d.head).collect();
            for h in heads {
                if affected.insert(h) {
                    queue.push_back(h);
                }
            }
        }
        // Worklist: start from support outside the affected region and from
        // base facts inside it.
        let mut derivable: HashSet<NodeId> = HashSet::new();
        let mut wl: VecDeque<NodeId> = VecDeque::new();
        for &a in &affected {
            if self.graph.is_base(a) && derivable.insert(a) {
                wl.push_back(a);
            }
            for d in self.graph.derivations_of(a) {
                let supported = d
                    .body
                    .iter()
                    .all(|b| !affected.contains(b) && self.is_alive(*b));
                if supported && derivable.insert(a) {
                    wl.push_back(a);
                }
            }
        }
        while let Some(nd) = wl.pop_front() {
            let heads: Vec<NodeId> = self
                .graph
                .uses_of(nd)
                .filter(|d| affected.contains(&d.head) && !derivable.contains(&d.head))
                .filter(|d| {
                    d.body.iter().all(|b| {
                        derivable.contains(b) || (!affected.contains(b) && self.is_alive(*b))
                    })
                })
                .map(|d| d.head)
                .collect();
            for h in heads {
                if derivable.insert(h) {
                    wl.push_back(h);
                }
            }
        }
        // Kill affected-but-underivable nodes, in node-id order: the
        // affected set iterates in per-instance hash order, but the change
        // log must replay identically across engines (the thread-count
        // parity property compares it verbatim).
        let mut dead: Vec<NodeId> = affected
            .iter()
            .copied()
            .filter(|a| !derivable.contains(a) && self.is_alive(*a))
            .collect();
        dead.sort_unstable();
        self.remove_nodes(&dead);
    }

    fn is_alive(&self, node: NodeId) -> bool {
        let Some((rel, tuple)) = self.nodes.resolve(node) else {
            return false;
        };
        self.data[rel.index()].get(tuple) == Some(node)
    }

    fn remove_nodes(&mut self, dead: &[NodeId]) {
        for &nd in dead {
            let Some((rel, tuple)) = self.nodes.resolve(nd) else {
                continue;
            };
            let tuple = tuple.clone();
            if self.data[rel.index()].remove(&tuple).is_some() {
                self.stats.tuples_removed += 1;
                self.changes.push(Change {
                    relation: Arc::clone(&self.rel_names[rel.index()]),
                    tuple: self.interner.resolve_tuple(&tuple),
                    kind: ChangeKind::Removed,
                    node: nd,
                });
            }
        }
    }

    /// DRed: over-delete by re-evaluating rules against deltas of deleted
    /// tuples, then re-derive survivors from the remaining database.
    fn delete_dred(&mut self, deleted: NodeId) {
        let Some((rel0, t0)) = self.nodes.resolve(deleted) else {
            return;
        };
        let t0 = t0.clone();

        // Phase 1: over-delete. Worklist of deleted tuples; consequences
        // computed by joining each rule with the deleted tuple as delta
        // **against the pre-deletion database** (tuples are only removed
        // after the closure is complete). Joining against a database with
        // deletions already applied would miss firings in which the
        // deleted tuple occurs at *several* body positions — e.g.
        // `h(x) :- r(c), r(x)` with `r(c)` deleted: the delta at the
        // second atom needs the first atom to still see `r(c)`.
        let mut overdeleted: Vec<(RelId, SymTuple, NodeId)> = Vec::new();
        let mut over_set: HashSet<NodeId> = HashSet::new();
        let mut wl: VecDeque<(RelId, SymTuple)> = VecDeque::new();
        if self.is_alive(deleted) {
            overdeleted.push((rel0, t0.clone(), deleted));
            over_set.insert(deleted);
            wl.push_back((rel0, t0));
        }
        while let Some((rel, t)) = wl.pop_front() {
            let delta = [t];
            for k in 0..self.rules_by_body[rel.index()].len() {
                let (ri, ai) = self.rules_by_body[rel.index()][k];
                let firings = self.join_rule(ri as usize, ai as usize, &delta);
                for (head_tuple, _) in firings {
                    let head_rel = self.rules[ri as usize].head.rel;
                    let Some(node) = self.data[head_rel.index()].get(&head_tuple) else {
                        continue;
                    };
                    if over_set.insert(node) {
                        overdeleted.push((head_rel, head_tuple.clone(), node));
                        wl.push_back((head_rel, head_tuple));
                    }
                }
            }
        }
        // Apply the over-deletion.
        for (rel, t, _) in &overdeleted {
            self.data[rel.index()].remove(t);
        }

        // Phase 2: re-derive. A removed tuple comes back if it is still
        // base, or some rule derives it from the remaining database.
        // Iterate to fixpoint (re-derived tuples can support others).
        let mut revived: HashSet<NodeId> = HashSet::new();
        loop {
            let mut changed = false;
            for (rel, t, node) in &overdeleted {
                if revived.contains(node) {
                    continue;
                }
                let back = self.graph.is_base(*node) || self.rederivable(*rel, t);
                if back {
                    self.data[rel.index()].insert(t.clone(), *node);
                    revived.insert(*node);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Log removals for tuples that stayed dead.
        for (rel, t, node) in &overdeleted {
            if !revived.contains(node) {
                self.stats.tuples_removed += 1;
                self.changes.push(Change {
                    relation: Arc::clone(&self.rel_names[rel.index()]),
                    tuple: self.interner.resolve_tuple(t),
                    kind: ChangeKind::Removed,
                    node: *node,
                });
            }
        }
    }

    /// Can any rule derive `(relation, tuple)` from the current database?
    fn rederivable(&mut self, rel: RelId, tuple: &SymTuple) -> bool {
        for ri in 0..self.rules.len() {
            if self.rules[ri].head.rel != rel {
                continue;
            }
            if self.join_rule_with_head_filter(ri, tuple) {
                return true;
            }
        }
        false
    }

    /// Evaluate rule `ri` (head-seeded plan) and return whether some
    /// firing instantiates the head to exactly `target`. Head variable
    /// slots pre-seed the bindings so the join is index-driven.
    fn join_rule_with_head_filter(&mut self, ri: usize, target: &SymTuple) -> bool {
        let shards = self.opts.shards;
        let Engine {
            rules,
            plans,
            data,
            nodes,
            interner,
            stats,
            ..
        } = self;
        let rule = &rules[ri];
        let plan = &plans[ri].seeded;
        if plan.impossible || target.arity() != rule.head.slots.len() {
            return false;
        }
        let mut bindings = vec![Sym::NONE; rule.num_vars];
        // Seed bindings from head slots where possible; constants must match.
        for (i, slot) in rule.head.slots.iter().enumerate() {
            match slot {
                Slot::Const(c) => {
                    if target[i] != *c {
                        return false;
                    }
                }
                Slot::Var(v) => {
                    if bindings[*v].is_none() {
                        bindings[*v] = target[i];
                    } else if bindings[*v] != target[i] {
                        return false;
                    }
                }
                Slot::Skolem { .. } => {
                    // Skolem head slot: we don't invert it here; the join
                    // produces and the final comparison decides.
                }
            }
        }
        for sp in &plan.steps {
            if let Source::Probe { cols, .. } = &sp.source {
                if data[rule.body[sp.atom].rel.index()].ensure_index(cols) {
                    stats.index_builds += 1;
                }
            }
        }
        let out = run_task(rule, plan, data, interner, nodes, shards, None, bindings);
        stats.index_probes += out.probes;
        interner.note_skolem_hits(out.skolem_hits);
        let hit = out
            .firings()
            .any(|f| resolve_head(interner, rule, f) == *target);
        hit
    }

    /// The provenance polynomial of an alive tuple (over simple proofs).
    pub fn provenance(&self, relation: &str, tuple: &Tuple) -> Option<Polynomial<NodeId>> {
        let node = self.node_id(relation, tuple)?;
        Some(self.graph.polynomial(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Rule};
    use crate::provgraph::Derivation;
    use crate::tgd::Tgd;
    use orchestra_provenance::Semiring;
    use orchestra_relational::{tuple, RelationSchema, ValueType};

    fn schema(rels: &[(&str, usize)]) -> DatabaseSchema {
        let mut db = DatabaseSchema::new("test");
        for (name, arity) in rels {
            let cols: Vec<(String, ValueType)> = (0..*arity)
                .map(|i| (format!("c{i}"), ValueType::Str))
                .collect();
            let col_refs: Vec<(&str, ValueType)> =
                cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            db.add_relation(RelationSchema::from_parts(*name, &col_refs).unwrap())
                .unwrap();
        }
        db
    }

    fn edge_path_rules() -> Vec<Rule> {
        // path(x,y) :- edge(x,y).  path(x,z) :- edge(x,y), path(y,z).
        let r1 = Rule::new(
            "base",
            Atom::vars("path", &["x", "y"]),
            vec![Atom::vars("edge", &["x", "y"])],
            vec![],
        )
        .unwrap();
        let r2 = Rule::new(
            "step",
            Atom::vars("path", &["x", "z"]),
            vec![
                Atom::vars("edge", &["x", "y"]),
                Atom::vars("path", &["y", "z"]),
            ],
            vec![],
        )
        .unwrap();
        vec![r1, r2]
    }

    fn edge_path_engine() -> Engine {
        let db = schema(&[("edge", 2), ("path", 2)]);
        Engine::new(db, edge_path_rules()).unwrap()
    }

    #[test]
    fn transitive_closure() {
        let mut e = edge_path_engine();
        e.insert_base("edge", tuple!["a", "b"]).unwrap();
        e.insert_base("edge", tuple!["b", "c"]).unwrap();
        e.insert_base("edge", tuple!["c", "d"]).unwrap();
        e.propagate().unwrap();
        assert_eq!(e.relation_len("path"), 6);
        assert!(e.contains("path", &tuple!["a", "d"]));
        assert!(!e.contains("path", &tuple!["d", "a"]));
    }

    #[test]
    fn incremental_insert_matches_full_recompute() {
        // Build incrementally.
        let mut inc = edge_path_engine();
        inc.insert_base("edge", tuple!["a", "b"]).unwrap();
        inc.propagate().unwrap();
        inc.insert_base("edge", tuple!["b", "c"]).unwrap();
        inc.propagate().unwrap();
        inc.insert_base("edge", tuple!["c", "d"]).unwrap();
        inc.propagate().unwrap();
        // Build from scratch.
        let mut full = edge_path_engine();
        for t in [tuple!["a", "b"], tuple!["b", "c"], tuple!["c", "d"]] {
            full.insert_base("edge", t).unwrap();
        }
        full.propagate().unwrap();
        assert_eq!(inc.relation_tuples("path"), full.relation_tuples("path"));
    }

    #[test]
    fn join_rule_filters_and_constants() {
        // out(x) :- r(x, 'keep'), x <> 'bad'.
        use orchestra_relational::CmpOp;
        let db = schema(&[("r", 2), ("out", 1)]);
        let rule = Rule::new(
            "f",
            Atom::vars("out", &["x"]),
            vec![Atom::new("r", vec![Term::var("x"), Term::val("keep")])],
            vec![crate::ast::Filter::new(
                Term::var("x"),
                CmpOp::Ne,
                Term::val("bad"),
            )],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![rule]).unwrap();
        e.insert_base("r", tuple!["good", "keep"]).unwrap();
        e.insert_base("r", tuple!["bad", "keep"]).unwrap();
        e.insert_base("r", tuple!["good2", "drop"]).unwrap();
        e.propagate().unwrap();
        assert_eq!(e.relation_tuples("out"), vec![tuple!["good"]]);
    }

    #[test]
    fn ordering_filters_resolve_values() {
        // out(x) :- r(x, y), x < y.  (non-equality filters compare values,
        // not symbols — interning must not change their semantics)
        use orchestra_relational::CmpOp;
        let db = schema(&[("r", 2), ("out", 1)]);
        let rule = Rule::new(
            "lt",
            Atom::vars("out", &["x"]),
            vec![Atom::vars("r", &["x", "y"])],
            vec![crate::ast::Filter::new(
                Term::var("x"),
                CmpOp::Lt,
                Term::var("y"),
            )],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![rule]).unwrap();
        // Insert in an order where symbol ids disagree with value order.
        e.insert_base("r", tuple!["zz", "aa"]).unwrap(); // zz > aa: dropped
        e.insert_base("r", tuple!["aa", "zz"]).unwrap(); // aa < zz: kept
        e.propagate().unwrap();
        assert_eq!(e.relation_tuples("out"), vec![tuple!["aa"]]);
    }

    #[test]
    fn repeated_variable_within_one_atom() {
        // loop(x) :- edge(x, x).
        let db = schema(&[("edge", 2), ("loop", 1)]);
        let rule = Rule::new(
            "self",
            Atom::vars("loop", &["x"]),
            vec![Atom::vars("edge", &["x", "x"])],
            vec![],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![rule]).unwrap();
        e.insert_base("edge", tuple!["a", "a"]).unwrap();
        e.insert_base("edge", tuple!["a", "b"]).unwrap();
        e.insert_base("edge", tuple!["b", "b"]).unwrap();
        e.propagate().unwrap();
        assert_eq!(
            e.relation_tuples("loop"),
            vec![tuple!["a"], tuple!["b"]],
            "only reflexive edges fire"
        );
    }

    #[test]
    fn skolem_heads_invent_labeled_nulls() {
        // The paper's split: O(org, #oid(org)) :- OPS(org, prot, seq).
        let db = schema(&[("OPS", 3), ("O", 2)]);
        let m = Tgd::new(
            "MC->A",
            vec![Atom::vars("OPS", &["org", "prot", "seq"])],
            vec![Atom::new(
                "O",
                vec![
                    Term::var("org"),
                    Term::skolem("oid", vec![Term::var("org")]),
                ],
            )],
        )
        .unwrap();
        let mut e = Engine::new(db, m.compile().unwrap()).unwrap();
        e.insert_base("OPS", tuple!["HIV", "gp120", "MRV"]).unwrap();
        e.insert_base("OPS", tuple!["HIV", "gp41", "AVG"]).unwrap();
        e.propagate().unwrap();
        // Same org twice → same labeled null → one O tuple.
        assert_eq!(e.relation_len("O"), 1);
        let o = &e.relation_tuples("O")[0];
        assert!(o[1].is_labeled_null());
    }

    #[test]
    fn provenance_polynomial_of_join() {
        // t(x,z) :- r(x,y), s(y,z).
        let db = schema(&[("r", 2), ("s", 2), ("t", 2)]);
        let rule = Rule::new(
            "j",
            Atom::vars("t", &["x", "z"]),
            vec![Atom::vars("r", &["x", "y"]), Atom::vars("s", &["y", "z"])],
            vec![],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![rule]).unwrap();
        let nr = e.insert_base("r", tuple!["a", "b"]).unwrap();
        let ns = e.insert_base("s", tuple!["b", "c"]).unwrap();
        e.propagate().unwrap();
        let p = e.provenance("t", &tuple!["a", "c"]).unwrap();
        assert_eq!(p, Polynomial::var(nr).times(&Polynomial::var(ns)));
    }

    #[test]
    fn alternative_derivations_sum() {
        // t(x) :- r(x).  t(x) :- s(x).
        let db = schema(&[("r", 1), ("s", 1), ("t", 1)]);
        let r1 = Rule::new(
            "m1",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("r", &["x"])],
            vec![],
        )
        .unwrap();
        let r2 = Rule::new(
            "m2",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("s", &["x"])],
            vec![],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![r1, r2]).unwrap();
        let nr = e.insert_base("r", tuple!["a"]).unwrap();
        let ns = e.insert_base("s", tuple!["a"]).unwrap();
        e.propagate().unwrap();
        let p = e.provenance("t", &tuple!["a"]).unwrap();
        assert_eq!(p, Polynomial::var(nr).plus(&Polynomial::var(ns)));
    }

    #[test]
    fn deletion_provenance_based_keeps_alternatives() {
        let db = schema(&[("r", 1), ("s", 1), ("t", 1)]);
        let r1 = Rule::new(
            "m1",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("r", &["x"])],
            vec![],
        )
        .unwrap();
        let r2 = Rule::new(
            "m2",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("s", &["x"])],
            vec![],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![r1, r2]).unwrap();
        e.insert_base("r", tuple!["a"]).unwrap();
        e.insert_base("s", tuple!["a"]).unwrap();
        e.propagate().unwrap();
        e.remove_base("r", &tuple!["a"], DeletionAlgorithm::ProvenanceBased)
            .unwrap();
        assert!(!e.contains("r", &tuple!["a"]));
        assert!(e.contains("t", &tuple!["a"]), "alternative via s survives");
        e.remove_base("s", &tuple!["a"], DeletionAlgorithm::ProvenanceBased)
            .unwrap();
        assert!(!e.contains("t", &tuple!["a"]));
    }

    #[test]
    fn deletion_dred_matches_provenance_based() {
        for algo in [DeletionAlgorithm::ProvenanceBased, DeletionAlgorithm::DRed] {
            let mut e = edge_path_engine();
            e.insert_base("edge", tuple!["a", "b"]).unwrap();
            e.insert_base("edge", tuple!["b", "c"]).unwrap();
            e.insert_base("edge", tuple!["a", "c"]).unwrap();
            e.propagate().unwrap();
            // Deleting a→b kills path a→b but not a→c (direct edge remains).
            e.remove_base("edge", &tuple!["a", "b"], algo).unwrap();
            assert!(!e.contains("path", &tuple!["a", "b"]), "{algo:?}");
            assert!(e.contains("path", &tuple!["a", "c"]), "{algo:?}");
            assert!(e.contains("path", &tuple!["b", "c"]), "{algo:?}");
        }
    }

    #[test]
    fn deletion_in_cycle_is_well_founded() {
        // Identity cycle between two relations.
        let db = schema(&[("A", 1), ("B", 1)]);
        let r1 = Rule::new(
            "ab",
            Atom::vars("B", &["x"]),
            vec![Atom::vars("A", &["x"])],
            vec![],
        )
        .unwrap();
        let r2 = Rule::new(
            "ba",
            Atom::vars("A", &["x"]),
            vec![Atom::vars("B", &["x"])],
            vec![],
        )
        .unwrap();
        for algo in [DeletionAlgorithm::ProvenanceBased, DeletionAlgorithm::DRed] {
            let mut e = Engine::new(db.clone(), vec![r1.clone(), r2.clone()]).unwrap();
            e.insert_base("A", tuple!["t"]).unwrap();
            e.propagate().unwrap();
            assert!(e.contains("B", &tuple!["t"]));
            // Removing the only base support kills both, despite the cycle.
            e.remove_base("A", &tuple!["t"], algo).unwrap();
            assert!(!e.contains("A", &tuple!["t"]), "{algo:?}");
            assert!(!e.contains("B", &tuple!["t"]), "{algo:?}");
        }
    }

    #[test]
    fn base_and_derived_tuple_survives_base_removal() {
        // t(x) :- r(x); t('a') also inserted as base.
        let db = schema(&[("r", 1), ("t", 1)]);
        let rule = Rule::new(
            "m",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("r", &["x"])],
            vec![],
        )
        .unwrap();
        for algo in [DeletionAlgorithm::ProvenanceBased, DeletionAlgorithm::DRed] {
            let mut e = Engine::new(db.clone(), vec![rule.clone()]).unwrap();
            e.insert_base("r", tuple!["a"]).unwrap();
            e.insert_base("t", tuple!["a"]).unwrap();
            e.propagate().unwrap();
            // Remove the derived support; the base t('a') remains.
            e.remove_base("r", &tuple!["a"], algo).unwrap();
            assert!(e.contains("t", &tuple!["a"]), "{algo:?}");
            // Remove base support too: now it dies.
            e.remove_base("t", &tuple!["a"], algo).unwrap();
            assert!(!e.contains("t", &tuple!["a"]), "{algo:?}");
        }
    }

    #[test]
    fn change_log_records_adds_and_removes() {
        let mut e = edge_path_engine();
        e.insert_base("edge", tuple!["a", "b"]).unwrap();
        e.propagate().unwrap();
        let ch = e.drain_changes();
        assert_eq!(ch.len(), 2); // edge + path
        assert!(ch.iter().all(|c| c.kind == ChangeKind::Added));
        e.remove_base(
            "edge",
            &tuple!["a", "b"],
            DeletionAlgorithm::ProvenanceBased,
        )
        .unwrap();
        let ch = e.drain_changes();
        assert_eq!(ch.len(), 2);
        assert!(ch.iter().all(|c| c.kind == ChangeKind::Removed));
    }

    #[test]
    fn idempotent_base_insert() {
        let mut e = edge_path_engine();
        let n1 = e.insert_base("edge", tuple!["a", "b"]).unwrap();
        let n2 = e.insert_base("edge", tuple!["a", "b"]).unwrap();
        assert_eq!(n1, n2);
        e.propagate().unwrap();
        assert_eq!(e.relation_len("edge"), 1);
        assert_eq!(e.drain_changes().len(), 2);
    }

    #[test]
    fn unknown_relation_and_arity_errors() {
        let db = schema(&[("r", 1)]);
        let bad_rel = Rule::new(
            "m",
            Atom::vars("t", &["x"]),
            vec![Atom::vars("r", &["x"])],
            vec![],
        )
        .unwrap();
        assert!(matches!(
            Engine::new(db.clone(), vec![bad_rel]),
            Err(DatalogError::UnknownRelation(_))
        ));
        let bad_arity = Rule::new(
            "m",
            Atom::vars("r", &["x"]),
            vec![Atom::vars("r", &["x", "y"])],
            vec![],
        )
        .unwrap();
        assert!(matches!(
            Engine::new(db.clone(), vec![bad_arity]),
            Err(DatalogError::ArityMismatch { .. })
        ));
        let mut ok = Engine::new(db, vec![]).unwrap();
        assert!(ok.insert_base("nope", tuple!["x"]).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut e = edge_path_engine();
        e.insert_base("edge", tuple!["a", "b"]).unwrap();
        e.insert_base("edge", tuple!["b", "c"]).unwrap();
        e.propagate().unwrap();
        let s = e.stats();
        assert!(s.rounds >= 2);
        assert!(s.firings >= 3);
        assert!(s.derivations >= 3);
        assert_eq!(s.tuples_added as usize, e.total_tuples());
        // Interned-engine counters: symbols for "a","b","c", probe work
        // from the recursive rule.
        assert!(s.interner_symbols >= 3);
        assert!(s.index_probes > 0);
        assert!(s.index_builds > 0);
    }

    #[test]
    fn remove_nonexistent_base_is_noop() {
        let mut e = edge_path_engine();
        assert!(!e
            .remove_base("edge", &tuple!["x", "y"], DeletionAlgorithm::DRed)
            .unwrap());
        // Derived tuples are not base: removing them is a no-op too.
        e.insert_base("edge", tuple!["a", "b"]).unwrap();
        e.propagate().unwrap();
        assert!(!e
            .remove_base("path", &tuple!["a", "b"], DeletionAlgorithm::DRed)
            .unwrap());
        assert!(e.contains("path", &tuple!["a", "b"]));
    }

    #[test]
    fn no_provenance_mode_matches_data_but_skips_graph() {
        let db = schema(&[("edge", 2), ("path", 2)]);
        let rules = edge_path_rules();
        let mut with = Engine::with_provenance(db.clone(), rules.clone(), true).unwrap();
        let mut without = Engine::with_provenance(db, rules, false).unwrap();
        for e in [tuple!["a", "b"], tuple!["b", "c"], tuple!["c", "d"]] {
            with.insert_base("edge", e.clone()).unwrap();
            without.insert_base("edge", e).unwrap();
        }
        with.propagate().unwrap();
        without.propagate().unwrap();
        assert_eq!(
            with.relation_tuples("path"),
            without.relation_tuples("path")
        );
        assert!(with.stats().derivations > 0);
        assert_eq!(without.stats().derivations, 0, "graph not recorded");
        // Derived tuples have empty provenance without tracking.
        let p = without.provenance("path", &tuple!["a", "b"]).unwrap();
        assert!(p.is_zero());

        // Deletion still works (falls back to DRed) and agrees with the
        // provenance-tracking engine.
        with.remove_base(
            "edge",
            &tuple!["a", "b"],
            DeletionAlgorithm::ProvenanceBased,
        )
        .unwrap();
        without
            .remove_base(
                "edge",
                &tuple!["a", "b"],
                DeletionAlgorithm::ProvenanceBased,
            )
            .unwrap();
        assert_eq!(
            with.relation_tuples("path"),
            without.relation_tuples("path")
        );
    }

    #[test]
    fn join_order_handles_delta_at_last_atom() {
        // r3(x,z) :- r1(x,y), r2(y,z), with the delta arriving at r2: the
        // planner must start from r2 and probe r1 by index rather than
        // cross-producting r1 × r2.
        let db = schema(&[("r1", 2), ("r2", 2), ("r3", 2)]);
        let rule = Rule::new(
            "j",
            Atom::vars("r3", &["x", "z"]),
            vec![Atom::vars("r1", &["x", "y"]), Atom::vars("r2", &["y", "z"])],
            vec![],
        )
        .unwrap();
        let mut e = Engine::new(db, vec![rule]).unwrap();
        for i in 0..50 {
            e.insert_base("r1", tuple![format!("x{i}"), format!("y{i}")])
                .unwrap();
        }
        e.propagate().unwrap();
        // Delta at r2.
        e.insert_base("r2", tuple!["y7", "z7"]).unwrap();
        e.propagate().unwrap();
        assert_eq!(e.relation_tuples("r3"), vec![tuple!["x7", "z7"]]);
        // The planner probes: firings stay near the delta size, far below
        // the 50 × 1 cross product.
        assert!(e.stats().firings <= 3, "firings = {}", e.stats().firings);
    }

    #[test]
    fn churny_delete_reinsert_does_not_leak_index_buckets() {
        // Regression: removal used to leave empty Vec buckets in every
        // secondary index, so delete/reinsert churn over a moving key
        // range grew memory without bound.
        let mut e = edge_path_engine();
        // Warm the index via the recursive rule.
        e.insert_base("edge", tuple!["seed", "seed2"]).unwrap();
        e.propagate().unwrap();
        for round in 0..50i64 {
            let a = format!("a{round}");
            let b = format!("b{round}");
            e.insert_base("edge", tuple![a.clone(), b.clone()]).unwrap();
            e.propagate().unwrap();
            e.remove_base("edge", &tuple![a, b], DeletionAlgorithm::ProvenanceBased)
                .unwrap();
        }
        let edge_rel = e.rel_id("edge").unwrap();
        let path_rel = e.rel_id("path").unwrap();
        let live = e.data[edge_rel.index()].len() + e.data[path_rel.index()].len();
        let buckets =
            e.data[edge_rel.index()].index_buckets() + e.data[path_rel.index()].index_buckets();
        // Every live bucket holds at least one live tuple; emptied buckets
        // must have been dropped, so buckets can never exceed live tuples
        // summed over the (few) per-relation indexes.
        assert!(
            buckets <= live * 4,
            "index buckets leaked: {buckets} buckets for {live} live tuples"
        );
    }

    #[test]
    fn node_id_and_resolve_roundtrip() {
        let mut e = edge_path_engine();
        let n = e.insert_base("edge", tuple!["a", "b"]).unwrap();
        assert_eq!(e.node_id("edge", &tuple!["a", "b"]), Some(n));
        assert_eq!(e.node_id("edge", &tuple!["a", "zzz"]), None);
        assert_eq!(e.node_id("nope", &tuple!["a", "b"]), None);
        let (rel, t) = e.resolve_node(n).unwrap();
        assert_eq!(&**rel, "edge");
        assert_eq!(t, tuple!["a", "b"]);
    }

    #[test]
    fn plan_cache_means_no_replanning_effect_on_results() {
        // Run many delta batches through the same rule; results must be
        // identical to a fresh engine fed the same facts at once.
        let mut inc = edge_path_engine();
        for i in 0..20 {
            inc.insert_base("edge", tuple![format!("n{i}"), format!("n{}", i + 1)])
                .unwrap();
            inc.propagate().unwrap();
        }
        let mut batch = edge_path_engine();
        for i in 0..20 {
            batch
                .insert_base("edge", tuple![format!("n{i}"), format!("n{}", i + 1)])
                .unwrap();
        }
        batch.propagate().unwrap();
        assert_eq!(inc.relation_tuples("path"), batch.relation_tuples("path"));
        assert_eq!(inc.total_tuples(), batch.total_tuples());
    }

    // ------------------------------------------------ sharded / parallel

    /// Build the transitive-closure engine with explicit eval options and
    /// load a dense-ish random graph.
    fn tc_engine_with(threads: usize) -> Engine {
        let db = schema(&[("edge", 2), ("path", 2)]);
        let opts = EvalOptions {
            threads,
            shards: 8,
            // Force the parallel dispatch path even for tiny rounds so
            // the test exercises pool scheduling, not just the inline arm.
            parallel_threshold: 0,
        };
        let mut e = Engine::with_options(db, edge_path_rules(), true, opts).unwrap();
        for i in 0..48i64 {
            let a = format!("n{}", i % 13);
            let b = format!("n{}", (i * 5 + 1) % 13);
            e.insert_base("edge", tuple![a, b]).unwrap();
        }
        e
    }

    /// Everything observable about an engine after a run, in comparable
    /// form: change log (with node ids), sorted data, stats, and the full
    /// derivation list in recording order.
    fn observables(e: &mut Engine) -> (Vec<Change>, Vec<Tuple>, EngineStats, Vec<Derivation>) {
        let changes = e.drain_changes();
        let mut tuples = e.relation_tuples("path");
        tuples.extend(e.relation_tuples("edge"));
        let derivs: Vec<Derivation> = e.graph().derivations().cloned().collect();
        (changes, tuples, e.stats(), derivs)
    }

    #[test]
    fn parallel_evaluation_is_byte_identical_to_single_thread() {
        let mut one = tc_engine_with(1);
        one.propagate().unwrap();
        let base = observables(&mut one);
        for threads in [2usize, 4, 8] {
            let mut n = tc_engine_with(threads);
            n.propagate().unwrap();
            let got = observables(&mut n);
            assert_eq!(got.0, base.0, "change log differs at {threads} threads");
            assert_eq!(got.1, base.1, "fixpoint differs at {threads} threads");
            assert_eq!(got.2, base.2, "stats differ at {threads} threads");
            assert_eq!(got.3, base.3, "derivations differ at {threads} threads");
        }
    }

    #[test]
    fn parallel_deletions_replay_identically() {
        let run = |threads: usize| {
            let mut e = tc_engine_with(threads);
            e.propagate().unwrap();
            e.drain_changes();
            for i in [0i64, 3, 7] {
                let a = format!("n{}", i % 13);
                let b = format!("n{}", (i * 5 + 1) % 13);
                e.remove_base("edge", &tuple![a, b], DeletionAlgorithm::ProvenanceBased)
                    .unwrap();
            }
            observables(&mut e)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn skolem_heads_resolve_identically_across_threads() {
        let run = |threads: usize| {
            let db = schema(&[("OPS", 3), ("O", 2), ("S", 3)]);
            let m = Tgd::new(
                "MC->A",
                vec![Atom::vars("OPS", &["org", "prot", "seq"])],
                vec![
                    Atom::new(
                        "O",
                        vec![
                            Term::var("org"),
                            Term::skolem("oid", vec![Term::var("org")]),
                        ],
                    ),
                    Atom::new(
                        "S",
                        vec![
                            Term::skolem("oid", vec![Term::var("org")]),
                            Term::var("prot"),
                            Term::var("seq"),
                        ],
                    ),
                ],
            )
            .unwrap();
            let opts = EvalOptions {
                threads,
                shards: 4,
                parallel_threshold: 0,
            };
            let mut e = Engine::with_options(db, m.compile().unwrap(), true, opts).unwrap();
            for i in 0..24i64 {
                e.insert_base(
                    "OPS",
                    tuple![format!("org{}", i % 5), format!("p{i}"), format!("s{i}")],
                )
                .unwrap();
            }
            e.propagate().unwrap();
            (
                e.drain_changes(),
                e.relation_tuples("O"),
                e.relation_tuples("S"),
                e.stats(),
            )
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn scan_is_a_borrowing_view_of_relation_tuples() {
        let mut e = edge_path_engine();
        for i in 0..12 {
            e.insert_base("edge", tuple![format!("n{i}"), format!("n{}", i + 1)])
                .unwrap();
        }
        e.propagate().unwrap();
        assert_eq!(e.scan("path").count(), e.relation_len("path"));
        let mut via_scan: Vec<Tuple> = e.scan_resolved("path").collect();
        via_scan.sort();
        assert_eq!(via_scan, e.relation_tuples("path"));
        // Node ids surfaced by scan match the node table.
        for (st, node) in e.scan("edge") {
            let t = e.interner().resolve_tuple(st);
            assert_eq!(e.node_id("edge", &t), Some(node));
        }
        assert_eq!(e.scan("nope").count(), 0);
    }

    #[test]
    fn partition_columns_follow_the_probed_key() {
        // path is probed on column 0 (by the recursive rule), edge on
        // column 1 (delta at path): the chosen partitions must make those
        // probes single-shard.
        let e = edge_path_engine();
        let path = e.rel_id("path").unwrap();
        let edge = e.rel_id("edge").unwrap();
        assert_eq!(e.data[path.index()].part_cols(), &[0]);
        assert_eq!(e.data[edge.index()].part_cols(), &[1]);
    }

    #[test]
    fn thread_count_is_tunable_at_runtime() {
        let mut e = tc_engine_with(1);
        assert_eq!(e.threads(), 1);
        e.set_threads(3);
        assert_eq!(e.threads(), 3);
        e.propagate().unwrap();
        e.set_threads(0); // clamped
        assert_eq!(e.threads(), 1);
        assert_eq!(e.shards(), 8);
        // A shared pool pins the thread count to the pool size.
        e.set_worker_pool(Arc::new(WorkerPool::new(2)));
        assert_eq!(e.threads(), 2);
        e.insert_base("edge", tuple!["x", "y"]).unwrap();
        e.propagate().unwrap();
        assert!(e.contains("path", &tuple!["x", "y"]));
    }
}
