//! The partitioned merge phase: per-shard sinks for the engine's rounds.
//!
//! PR 5's evaluation pipeline parallelized the join phase but merged its
//! results behind a single sequential drain — ProvGraph inserts, NodeId
//! assignment, and tuple inserts all serialized on one thread, the Amdahl
//! wall the `tc` E11 rows exposed. This module removes it.
//!
//! The key observation: every mutation the merge performs is keyed by the
//! head tuple, and head tuples already have a deterministic home — the
//! content-based shard [`ShardedRel::shard_of`] assigns them. So the node
//! table, the provenance graph, and the relation storage are all
//! partitioned by that same routing, and one [`ShardSink`] per shard
//! drains its slice of every task's firings with **no** shared mutable
//! state:
//!
//! * [`NodeShard`] — shard `s` of the node table; node ids pack
//!   `(shard, local)` so per-shard assignment needs no coordination.
//! * [`ProvShardWriter`] — shard `s` of the provenance graph; derivations
//!   live with their head, cross-shard body edges go to a per-target
//!   outbox spliced after the sinks finish.
//! * [`RelShardWriter`] — shard `s` of every relation.
//!
//! Determinism: routing is a pure function of tuple content, each sink
//! drains its buckets in the round's fixed task order, and the engine
//! folds the sinks' private counters/changes/deltas back in shard order —
//! so the result is byte-identical at any thread count, inline or pooled.

use crate::ast::RuleId;
use crate::engine::{Change, ChangeKind};
use crate::node::{NodeId, NodeShard, NodeTable, RelId};
use crate::provgraph::{Derivation, ProvGraph, ProvShardWriter};
use orchestra_relational::{RelShardWriter, ShardedRel, Sym, SymTuple, ValueInterner};
use std::sync::Arc;

/// One staged rule firing, produced by the (possibly parallel) join phase
/// and drained by its head shard's sink. Skolem head positions are left as
/// [`Sym::NONE`] with their argument symbols staged alongside when the
/// null was not in the round's snapshot interner, so the join phase never
/// mutates the interner.
pub(crate) struct Firing {
    /// The head tuple; `Sym::NONE` at unresolved Skolem positions.
    pub head: SymTuple,
    /// `(head column, argument symbols)` for each Skolem head slot whose
    /// null the worker could not resolve read-only.
    pub skolems: Vec<(u32, Vec<Sym>)>,
    /// The head's node id as of the round snapshot (`None` when the head
    /// was not alive then — it may still get interned by an earlier task
    /// draining into the same shard sink).
    pub head_node: Option<NodeId>,
    /// Node ids of the matched body tuples, in rule-body order
    /// (derivation identity depends on the order).
    pub body_nodes: Vec<NodeId>,
    /// Precomputed `(rule, body)` dedup fingerprint.
    pub fp: u64,
}

/// Everything one join task hands back to the merge phase: staged firings
/// routed to their head's shard, plus the task's private counters (merged
/// at the round barrier).
#[derive(Default)]
pub(crate) struct TaskOut {
    /// `routed[s]` holds this task's firings whose head lives in shard
    /// `s`, in discovery order. Left empty (not sized) when the task
    /// fired nothing routable.
    pub routed: Vec<Vec<Firing>>,
    /// Firings whose head contains a labeled null absent from the round
    /// snapshot: only these pay the sequential Skolem pass.
    pub unrouted: Vec<Firing>,
    /// Index probes issued by the task.
    pub probes: u64,
    /// Labeled nulls the worker resolved read-only against the snapshot
    /// interner (folded into the fast-path counter at the barrier).
    pub skolem_hits: u64,
}

impl TaskOut {
    /// Drain every staged firing in the fixed (shard, discovery) order.
    /// The sequential consumers (DRed over-deletion / re-derivation) use
    /// this; the round merge drains the buckets per shard instead.
    pub fn into_firings(self) -> impl Iterator<Item = Firing> {
        self.routed.into_iter().flatten().chain(self.unrouted)
    }

    /// Borrowing variant of [`into_firings`](TaskOut::into_firings),
    /// same order.
    pub fn firings(&self) -> impl Iterator<Item = &Firing> {
        self.routed.iter().flatten().chain(self.unrouted.iter())
    }
}

/// A disjoint mutable view of shard `s` across every partitioned
/// structure the merge writes: the node table, the provenance graph, and
/// each relation — plus private output buffers the engine folds back in
/// shard order after every sink has drained.
pub(crate) struct ShardSink<'a> {
    nodes: &'a mut NodeShard,
    /// Public to let the engine run the cross-shard splice (M2) on the
    /// same writers after the drain.
    pub prov: ProvShardWriter<'a>,
    rels: Vec<RelShardWriter<'a, NodeId>>,
    /// Change-log entries staged by this sink, in drain order.
    pub changes: Vec<Change>,
    /// Next-round delta tuples staged by this sink, in drain order.
    pub next_delta: Vec<(RelId, SymTuple)>,
    /// Private counters, folded into `EngineStats` in shard order.
    pub firings: u64,
    pub derivations: u64,
    pub tuples_added: u64,
}

/// Split the node table, provenance graph, and relation storage into one
/// [`ShardSink`] per shard. All three must already agree on the shard
/// count (the engine fixes it at construction).
pub(crate) fn shard_sinks<'a>(
    nodes: &'a mut NodeTable,
    graph: &'a mut ProvGraph,
    data: &'a mut [ShardedRel<NodeId>],
) -> Vec<ShardSink<'a>> {
    let node_shards = nodes.shards_mut();
    let prov_writers = graph.shard_writers();
    let shards = node_shards.len();
    debug_assert_eq!(prov_writers.len(), shards, "node/prov shard mismatch");
    let mut rels: Vec<Vec<RelShardWriter<'a, NodeId>>> = Vec::new();
    rels.resize_with(shards, Vec::new);
    for rel in data.iter_mut() {
        debug_assert_eq!(rel.shard_count(), shards, "relation shard mismatch");
        for (s, w) in rel.shard_writers().into_iter().enumerate() {
            rels[s].push(w);
        }
    }
    node_shards
        .into_iter()
        .zip(prov_writers)
        .zip(rels)
        .map(|((nodes, prov), rels)| ShardSink {
            nodes,
            prov,
            rels,
            changes: Vec::new(),
            next_delta: Vec::new(),
            firings: 0,
            derivations: 0,
            tuples_added: 0,
        })
        .collect()
}

impl ShardSink<'_> {
    /// Drain one task's firings for this sink's shard, in their staged
    /// order: intern the head node, record the derivation, apply the
    /// insert, and stage the change-log entry and next-round delta.
    ///
    /// Every firing handed here has a fully resolved head (the engine's
    /// sequential Skolem pass ran first) routed to this shard, so the
    /// writes below touch this shard only.
    #[allow(clippy::too_many_arguments)]
    pub fn drain_task(
        &mut self,
        rule_id: &RuleId,
        head_rel: RelId,
        firings: Vec<Firing>,
        track_provenance: bool,
        interner: &ValueInterner,
        rel_names: &[Arc<str>],
    ) {
        for firing in firings {
            self.firings += 1;
            // A head alive at the round snapshot needs no insert
            // (propagation is insert-only) and no interning — the worker
            // already resolved its node.
            let head_node = match firing.head_node {
                Some(n) => n,
                None => self.nodes.intern(head_rel, &firing.head),
            };
            if track_provenance {
                let fresh_deriv = self.prov.add_derivation_fp(
                    Derivation {
                        rule: Arc::clone(rule_id),
                        head: head_node,
                        body: firing.body_nodes,
                    },
                    firing.fp,
                );
                if fresh_deriv {
                    self.derivations += 1;
                }
            }
            if firing.head_node.is_some() {
                continue; // Was alive at snapshot: nothing to add.
            }
            if self.rels[head_rel.index()].insert_if_absent(firing.head.clone(), head_node) {
                self.tuples_added += 1;
                self.changes.push(Change {
                    relation: Arc::clone(&rel_names[head_rel.index()]),
                    tuple: interner.resolve_tuple(&firing.head),
                    kind: ChangeKind::Added,
                    node: head_node,
                });
                self.next_delta.push((head_rel, firing.head));
            }
        }
    }
}
