//! Fault-injection coverage for the two compaction-path failpoints
//! that nothing else exercised: `store.wal.rotate` (fail before the
//! active segment is sealed) and `store.snapshot.finish` (fail just
//! before the atomic rename, with the full snapshot body written).
//! Both must leave every published epoch readable, and a retry after
//! the schedule drains must succeed end to end.

use orchestra_relational::tuple;
use orchestra_store::{
    CacheMode, DurableOptions, DurableStore, StoreError, SyncPolicy, UpdateStore,
};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "orchestra-fault-compact-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn txn(seq: u64) -> Transaction {
    Transaction::new(
        TxnId::new(PeerId::new("P"), seq),
        Epoch::zero(),
        vec![Update::insert("R", tuple![seq as i64, format!("v{seq}")])],
    )
}

fn opts() -> DurableOptions {
    DurableOptions {
        segment_max_bytes: 1 << 20,
        sync_policy: SyncPolicy::Always,
        cache: CacheMode::Cached,
        compact_every_batches: None,
    }
}

fn assert_injected(err: StoreError) {
    match err {
        StoreError::Io { ref message, .. } if message == "injected failpoint" => {}
        other => panic!("expected injected failpoint error, got {other:?}"),
    }
}

#[test]
fn rotate_failure_keeps_active_segment_appendable() {
    let dir = fresh_dir("rotate");
    let store = DurableStore::open_with(&dir, opts()).unwrap();
    for seq in 1..=3u64 {
        store.publish(Epoch::new(seq), vec![txn(seq)]).unwrap();
    }

    {
        let _fp = orchestra_fault::scoped("store.wal.rotate=err@1x1", 11);
        assert_injected(store.compact().unwrap_err());
    }

    // The failed rotation sealed nothing: the store keeps accepting
    // publishes and the whole history stays readable.
    store.publish(Epoch::new(4), vec![txn(4)]).unwrap();
    assert_eq!(store.fetch_since(Epoch::zero()).unwrap().len(), 4);

    // With the schedule drained, the retry compacts for real.
    let covered = store.compact().unwrap();
    assert!(covered.is_some(), "retry must compact");
    drop(store);

    let store = DurableStore::open_with(&dir, opts()).unwrap();
    assert_eq!(store.fetch_since(Epoch::zero()).unwrap().len(), 4);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_finish_failure_never_publishes_a_partial_snapshot() {
    let dir = fresh_dir("finish");
    let store = DurableStore::open_with(&dir, opts()).unwrap();
    for seq in 1..=3u64 {
        store.publish(Epoch::new(seq), vec![txn(seq)]).unwrap();
    }

    {
        // Fires at the worst possible moment: the full snapshot body is
        // on disk, only the atomic rename is missing.
        let _fp = orchestra_fault::scoped("store.snapshot.finish=err@1x1", 13);
        assert_injected(store.compact().unwrap_err());
    }

    // No partial snapshot became visible; the WAL still carries
    // everything.
    assert_eq!(store.fetch_since(Epoch::zero()).unwrap().len(), 3);
    drop(store);

    // Reopen sweeps the abandoned tmp file, and a clean compaction run
    // publishes the snapshot it could not before.
    let store = DurableStore::open_with(&dir, opts()).unwrap();
    assert_eq!(store.fetch_since(Epoch::zero()).unwrap().len(), 3);
    store.publish(Epoch::new(4), vec![txn(4)]).unwrap();
    assert!(store.compact().unwrap().is_some());
    assert_eq!(store.fetch_since(Epoch::zero()).unwrap().len(), 4);
    let leftovers: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "tmp files swept: {leftovers:?}");
    fs::remove_dir_all(&dir).unwrap();
}
