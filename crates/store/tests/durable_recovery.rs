//! Crash-recovery guarantees of the durable archive:
//!
//! * kill-and-reopen: every published epoch is refetchable after restart,
//!   with no checksum failures, across segment rotations and compactions;
//! * torn-tail repair: truncating the WAL mid-frame loses exactly the torn
//!   batch and nothing else;
//! * sealed-file corruption is detected, never silently dropped.

use orchestra_relational::tuple;
use orchestra_store::durable::segment::{list_segments, segment_file_name};
use orchestra_store::{
    CacheMode, DurableOptions, DurableStore, FetchCursor, StoreError, SyncPolicy, UpdateStore,
};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "orchestra-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn txn(peer: &str, seq: u64) -> Transaction {
    Transaction::new(
        TxnId::new(PeerId::new(peer), seq),
        Epoch::zero(),
        vec![
            Update::insert("R", tuple![seq as i64, format!("v{seq}")]),
            Update::modify(
                "R",
                tuple![seq as i64, format!("v{seq}")],
                tuple![seq as i64, format!("w{seq}")],
            ),
        ],
    )
}

fn tiny_segments() -> DurableOptions {
    DurableOptions {
        segment_max_bytes: 64, // force a rotation on nearly every publish
        sync_policy: SyncPolicy::Always,
        cache: CacheMode::Cached,
        compact_every_batches: None,
    }
}

/// The core acceptance test: publish across several "process lifetimes"
/// (open → publish → drop), and after every reopen, every epoch ever
/// published is refetchable with correct contents.
#[test]
fn kill_and_reopen_preserves_every_epoch() {
    for cache in [CacheMode::Cached, CacheMode::DiskOnly] {
        let dir = fresh_dir("kill-reopen");
        let opts = DurableOptions {
            cache,
            ..tiny_segments()
        };
        let mut published: Vec<(u64, u64)> = Vec::new(); // (epoch, seq)
        for generation in 0..5u64 {
            let store = DurableStore::open_with(&dir, opts).unwrap();
            // Everything from prior generations is already there.
            let recovered = store.fetch_since(Epoch::zero()).unwrap();
            assert_eq!(
                recovered.len(),
                published.len(),
                "{cache:?} gen {generation}"
            );
            for ((epoch, seq), t) in published.iter().zip(&recovered) {
                assert_eq!(t.epoch, Epoch::new(*epoch));
                assert_eq!(t.id.seq, *seq);
                assert_eq!(t.updates.len(), 2, "payloads intact");
            }
            // Publish a few more epochs, crossing segment boundaries.
            for e in 0..3u64 {
                let epoch = generation * 3 + e + 1;
                let seq = epoch; // unique per publish
                store
                    .publish(Epoch::new(epoch), vec![txn("P", seq)])
                    .unwrap();
                published.push((epoch, seq));
            }
            // Mid-run compaction on generation 2 must not lose anything.
            if generation == 2 {
                store.compact().unwrap().expect("something to compact");
            }
            assert_eq!(store.latest_epoch(), Some(Epoch::new(generation * 3 + 3)));
            drop(store); // "kill"
        }
        let store = DurableStore::open_with(&dir, opts).unwrap();
        assert_eq!(store.len(), published.len());
        let all = store.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all.len(), published.len());
        // Epoch-filtered fetch still honors the boundary after recovery.
        let late = store.fetch_since(Epoch::new(10)).unwrap();
        assert_eq!(
            late.len(),
            published.iter().filter(|(e, _)| *e > 10).count()
        );
        assert!(store.durable_stats().recovered_txns == published.len() as u64);
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Chop the active segment mid-frame (a crash during append): reopening
/// yields exactly the durable prefix, and the store keeps working.
#[test]
fn torn_wal_tail_recovers_durable_prefix() {
    let dir = fresh_dir("torn");
    let opts = DurableOptions {
        segment_max_bytes: 1 << 20, // single segment
        ..tiny_segments()
    };
    {
        let store = DurableStore::open_with(&dir, opts).unwrap();
        for seq in 1..=4u64 {
            store.publish(Epoch::new(seq), vec![txn("P", seq)]).unwrap();
        }
    }
    let seg = dir.join(segment_file_name(1));
    let bytes = fs::read(&seg).unwrap();
    // Cut into the last frame but leave its header intact: a torn tail.
    fs::write(&seg, &bytes[..bytes.len() - 7]).unwrap();

    let store = DurableStore::open_with(&dir, opts).unwrap();
    let stats = store.durable_stats();
    assert!(stats.torn_bytes_truncated > 0, "tail was repaired");
    let all = store.fetch_since(Epoch::zero()).unwrap();
    assert_eq!(all.len(), 3, "exactly the durable prefix survives");
    assert_eq!(store.latest_epoch(), Some(Epoch::new(3)));

    // The repaired log accepts appends and round-trips once more.
    store.publish(Epoch::new(9), vec![txn("P", 9)]).unwrap();
    drop(store);
    let store = DurableStore::open_with(&dir, opts).unwrap();
    assert_eq!(store.fetch_since(Epoch::zero()).unwrap().len(), 4);
    assert_eq!(store.latest_epoch(), Some(Epoch::new(9)));
    fs::remove_dir_all(&dir).unwrap();
}

/// Truncating to a bare frame header (no payload at all) is also torn.
#[test]
fn torn_tail_at_header_boundary() {
    let dir = fresh_dir("torn-header");
    let opts = tiny_segments();
    {
        let store = DurableStore::open_with(&dir, opts).unwrap();
        store.publish(Epoch::new(1), vec![txn("P", 1)]).unwrap();
    }
    let segs = list_segments(&dir).unwrap();
    let seg = dir.join(segment_file_name(*segs.last().unwrap()));
    let mut bytes = fs::read(&seg).unwrap();
    let valid = bytes.len();
    // Append 5 garbage bytes: a header fragment of a frame never written.
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
    fs::write(&seg, &bytes).unwrap();

    let store = DurableStore::open_with(&dir, opts).unwrap();
    assert_eq!(store.fetch_since(Epoch::zero()).unwrap().len(), 1);
    assert_eq!(fs::metadata(&seg).unwrap().len(), valid as u64, "tail gone");
    fs::remove_dir_all(&dir).unwrap();
}

/// Bit-rot inside a *sealed* complete frame no longer fails the open: the
/// rotten frame is skipped (and counted), the rest of the archive loads,
/// and the store keeps accepting appends. The missing history is exactly
/// what a mesh neighbor re-fills via anti-entropy.
#[test]
fn corrupt_sealed_frame_quarantined_on_open() {
    let dir = fresh_dir("corrupt");
    let opts = tiny_segments();
    {
        let store = DurableStore::open_with(&dir, opts).unwrap();
        for seq in 1..=6u64 {
            store.publish(Epoch::new(seq), vec![txn("P", seq)]).unwrap();
        }
        assert!(store.durable_stats().segments > 1, "rotation happened");
    }
    let first = dir.join(segment_file_name(
        *list_segments(&dir).unwrap().first().unwrap(),
    ));
    let mut bytes = fs::read(&first).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(&first, &bytes).unwrap();

    let store = DurableStore::open_with(&dir, opts).unwrap();
    let stats = store.durable_stats();
    assert!(
        stats.corrupt_frames_skipped > 0,
        "the flip was noticed: {stats:?}"
    );
    let survivors = store.fetch_since(Epoch::zero()).unwrap();
    assert!(
        !survivors.is_empty() && survivors.len() < 6,
        "unaffected frames load, the rotten one is absent: {}",
        survivors.len()
    );
    // The archive stays writable past the damage.
    store.publish(Epoch::new(7), vec![txn("P", 7)]).unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

/// A live `scrub()` detects bit-rot without a restart, quarantines the
/// affected positions (reported unavailable, fetch refuses them), and a
/// later `absorb` of a healthy copy heals them — with the position listed
/// exactly once throughout (zero duplicate applies).
#[test]
fn scrub_quarantines_and_absorb_heals() {
    use orchestra_store::pages;
    let dir = fresh_dir("scrub-heal");
    let opts = tiny_segments();
    let store = DurableStore::open_with(&dir, opts).unwrap();
    let mut originals = Vec::new();
    for seq in 1..=6u64 {
        let mut t = txn("P", seq);
        store.publish(Epoch::new(seq), vec![t.clone()]).unwrap();
        // Keep the copy a neighbor would hold: stamped with the publish
        // epoch (publish re-stamps in the archive).
        t.epoch = Epoch::new(seq);
        originals.push(t);
    }

    // Rot a byte inside the first sealed segment, behind the store's back.
    let first = dir.join(segment_file_name(
        *list_segments(&dir).unwrap().first().unwrap(),
    ));
    let mut bytes = fs::read(&first).unwrap();
    bytes[20] ^= 0x40;
    fs::write(&first, &bytes).unwrap();

    let report = store.scrub().unwrap();
    assert!(report.corrupt_frames > 0, "{report:?}");
    assert!(report.quarantined > 0, "{report:?}");
    let gaps = store.quarantined();
    assert_eq!(gaps.len(), report.quarantined);

    // Quarantined positions: len unchanged, pages report unavailable,
    // point fetch refuses, re-publish refuses.
    assert_eq!(store.len(), 6, "positions never leave the archive");
    let mut seen = 0usize;
    let mut unavailable = Vec::new();
    for page in pages(&store, FetchCursor::at_epoch(Epoch::zero()), 4) {
        let page = page.unwrap();
        seen += page.scanned();
        unavailable.extend(page.unavailable.clone());
    }
    assert_eq!(seen, 6, "every position still scanned exactly once");
    assert_eq!(unavailable, gaps);
    let (_, gap_id) = &gaps[0];
    assert!(matches!(
        store.fetch(gap_id),
        Err(StoreError::Unavailable { .. })
    ));
    let gap_txn = originals
        .iter()
        .find(|t| &t.id == gap_id)
        .expect("quarantined id is one of ours")
        .clone();
    assert!(matches!(
        store.publish(Epoch::new(9), vec![gap_txn.clone()]),
        Err(StoreError::DuplicateTxn(_))
    ));

    // Heal: absorb healthy copies (as a neighbor's PULL_PAGES would
    // deliver them). Positions are restored, nothing double-applies.
    let healthy: Vec<_> = gaps
        .iter()
        .map(|(_, id)| originals.iter().find(|t| &t.id == id).unwrap().clone())
        .collect();
    let r = store.absorb(healthy).unwrap();
    assert_eq!(r.healed as usize, gaps.len());
    assert_eq!(r.absorbed, 0);
    assert_eq!(r.duplicates, 0);
    assert!(store.quarantined().is_empty());
    assert_eq!(store.durable_stats().quarantined, 0);
    let all = store.fetch_since(Epoch::zero()).unwrap();
    assert_eq!(all.len(), 6, "healed archive is whole again");
    assert_eq!(store.fetch(gap_id).unwrap().unwrap().id, *gap_id);

    // A second scrub finds the old rotten frame still on disk but has
    // nothing new to quarantine (the healed copies supersede it), and
    // compaction drops the rot for good.
    let again = store.scrub().unwrap();
    assert_eq!(again.quarantined, 0, "{again:?}");
    store.compact().unwrap().expect("compacted");
    let clean = store.scrub().unwrap();
    assert_eq!(clean.corrupt_frames, 0, "compaction dropped the rot");
    assert_eq!(store.fetch_since(Epoch::zero()).unwrap().len(), 6);
    fs::remove_dir_all(&dir).unwrap();
}

/// Torn-tail torture sweep: truncate the WAL at *every* byte offset of
/// the final frame, and bit-flip every byte of it, one mutation per
/// recovery. Recovery must never panic and never lose a committed prior
/// frame.
#[test]
fn torn_tail_torture_sweep() {
    let dir = fresh_dir("torture");
    let opts = tiny_segments();
    {
        let store = DurableStore::open_with(&dir, opts).unwrap();
        for seq in 1..=3u64 {
            store.publish(Epoch::new(seq), vec![txn("P", seq)]).unwrap();
        }
    }
    let segs = list_segments(&dir).unwrap();
    let last_seg = dir.join(segment_file_name(*segs.last().unwrap()));
    let pristine: std::collections::HashMap<_, _> = segs
        .iter()
        .map(|&s| {
            let p = dir.join(segment_file_name(s));
            (p.clone(), fs::read(&p).unwrap())
        })
        .collect();
    let tail = fs::read(&last_seg).unwrap();
    // `tiny_segments` rotates at 64 bytes, so the final segment holds
    // exactly one frame — every offset in it belongs to the final frame.
    let frame_len = tail.len();
    assert!(frame_len > 8, "final segment holds a whole frame");

    let restore = |dir: &std::path::Path| {
        for (p, bytes) in &pristine {
            fs::write(p, bytes).unwrap();
        }
        // Recovery may have truncated or appended nothing else; the LOCK
        // file is harmless to leave in place.
        let _ = dir;
    };

    // Sweep 1: truncate at every byte offset of the final frame.
    for cut in 0..frame_len {
        fs::write(&last_seg, &tail[..cut]).unwrap();
        let store = DurableStore::open_with(&dir, opts)
            .unwrap_or_else(|e| panic!("truncation at byte {cut} failed the open: {e}"));
        let survivors = store.fetch_since(Epoch::zero()).unwrap();
        assert!(
            survivors.len() >= 2,
            "truncation at {cut} lost a committed prior frame: {} survivors",
            survivors.len()
        );
        assert!(survivors.iter().any(|t| t.id == txn("P", 1).id));
        assert!(survivors.iter().any(|t| t.id == txn("P", 2).id));
        drop(store);
        restore(&dir);
    }

    // Sweep 2: flip every single byte of the final frame.
    for flip in 0..frame_len {
        let mut mutated = tail.clone();
        mutated[flip] ^= 0x01;
        fs::write(&last_seg, &mutated).unwrap();
        let store = DurableStore::open_with(&dir, opts)
            .unwrap_or_else(|e| panic!("bit-flip at byte {flip} failed the open: {e}"));
        let survivors = store.fetch_since(Epoch::zero()).unwrap();
        assert!(
            survivors.iter().any(|t| t.id == txn("P", 1).id)
                && survivors.iter().any(|t| t.id == txn("P", 2).id),
            "bit-flip at {flip} lost a committed prior frame"
        );
        drop(store);
        restore(&dir);
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Compaction folds sealed segments into a snapshot, deletes them, and
/// recovery afterwards sees identical contents (and a bounded replay).
#[test]
fn compaction_bounds_recovery_without_losing_data() {
    let dir = fresh_dir("compact");
    let opts = tiny_segments();
    {
        let store = DurableStore::open_with(&dir, opts).unwrap();
        for seq in 1..=10u64 {
            store.publish(Epoch::new(seq), vec![txn("P", seq)]).unwrap();
        }
        let before = store.durable_stats();
        assert!(before.segments > 2);

        let watermark = store.compact().unwrap().expect("compacted");
        let after = store.durable_stats();
        assert_eq!(after.snapshot_watermark, Some(watermark));
        assert_eq!(after.segments, 1, "only the fresh active segment remains");
        assert!(list_segments(&dir).unwrap().iter().all(|&s| s > watermark));

        // Contents identical through the compaction.
        let all = store.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all.len(), 10);

        // A second compact with nothing new is a no-op.
        assert_eq!(store.compact().unwrap(), None);

        // Publishing continues after compaction.
        for seq in 11..=13u64 {
            store.publish(Epoch::new(seq), vec![txn("P", seq)]).unwrap();
        }
    }
    let store = DurableStore::open_with(&dir, opts).unwrap();
    let all = store.fetch_since(Epoch::zero()).unwrap();
    assert_eq!(all.len(), 13);
    for (i, t) in all.iter().enumerate() {
        assert_eq!(t.epoch, Epoch::new(i as u64 + 1));
    }
    // Fetch-by-id reaches both tiers: snapshot and live WAL.
    assert!(store
        .fetch(&TxnId::new(PeerId::new("P"), 2))
        .unwrap()
        .is_some());
    assert!(store
        .fetch(&TxnId::new(PeerId::new("P"), 13))
        .unwrap()
        .is_some());
    fs::remove_dir_all(&dir).unwrap();
}

/// Auto-compaction via `compact_every_batches` keeps working transparently.
#[test]
fn auto_compaction_is_transparent() {
    let dir = fresh_dir("auto-compact");
    let opts = DurableOptions {
        compact_every_batches: Some(4),
        ..tiny_segments()
    };
    let store = DurableStore::open_with(&dir, opts).unwrap();
    for seq in 1..=20u64 {
        store.publish(Epoch::new(seq), vec![txn("P", seq)]).unwrap();
    }
    let stats = store.durable_stats();
    assert!(stats.compactions >= 4, "{stats:?}");
    assert_eq!(store.fetch_since(Epoch::zero()).unwrap().len(), 20);
    drop(store);
    let store = DurableStore::open_with(&dir, opts).unwrap();
    assert_eq!(store.fetch_since(Epoch::zero()).unwrap().len(), 20);
    fs::remove_dir_all(&dir).unwrap();
}

/// Duplicate detection must consult recovered state, not just the current
/// process's publishes.
#[test]
fn duplicates_rejected_across_restarts() {
    let dir = fresh_dir("dup");
    {
        let store = DurableStore::open(&dir).unwrap();
        store.publish(Epoch::new(1), vec![txn("P", 1)]).unwrap();
    }
    let store = DurableStore::open(&dir).unwrap();
    let err = store.publish(Epoch::new(2), vec![txn("P", 1)]);
    assert!(matches!(err, Err(StoreError::DuplicateTxn(_))));
    fs::remove_dir_all(&dir).unwrap();
}

/// Relaxed sync policies trade the crash guarantee for throughput but
/// still recover cleanly from an orderly shutdown.
#[test]
fn relaxed_sync_policies_roundtrip() {
    for policy in [SyncPolicy::EveryN(3), SyncPolicy::Never] {
        let dir = fresh_dir("sync-policy");
        let opts = DurableOptions {
            sync_policy: policy,
            ..DurableOptions::default()
        };
        {
            let store = DurableStore::open_with(&dir, opts).unwrap();
            for seq in 1..=7u64 {
                store.publish(Epoch::new(seq), vec![txn("P", seq)]).unwrap();
            }
            store.sync().unwrap();
        }
        let store = DurableStore::open_with(&dir, opts).unwrap();
        assert_eq!(
            store.fetch_since(Epoch::zero()).unwrap().len(),
            7,
            "{policy:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Two concurrent stores on one directory would corrupt each other's
/// WAL offsets: the second open must be refused while the first lives,
/// and succeed once it's dropped.
#[cfg(unix)]
#[test]
fn concurrent_open_refused_by_lock() {
    let dir = fresh_dir("lock");
    let first = DurableStore::open(&dir).unwrap();
    match DurableStore::open(&dir) {
        Err(StoreError::Io { op, message, .. }) => {
            assert_eq!(op, "lock");
            assert!(message.contains("already open"), "{message}");
        }
        other => panic!("expected lock refusal, got {other:?}"),
    }
    drop(first);
    DurableStore::open(&dir).unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

/// An empty directory opens as an empty archive; opening is idempotent.
#[test]
fn empty_and_reopen_idempotent() {
    let dir = fresh_dir("empty");
    {
        let store = DurableStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.latest_epoch(), None);
    }
    let store = DurableStore::open(&dir).unwrap();
    assert!(store.is_empty());
    assert_eq!(store.durable_stats().recovered_txns, 0);
    fs::remove_dir_all(&dir).unwrap();
}

/// A paging cursor taken in one process lifetime resumes in the next:
/// the (epoch, id) order is rebuilt identically by recovery — including
/// across segment rotations and a compaction — so paged and one-shot
/// reads agree even when a restart (or both) interrupts the walk.
#[test]
fn fetch_page_cursor_resumes_across_restart() {
    use orchestra_store::FetchCursor;
    for cache in [CacheMode::Cached, CacheMode::DiskOnly] {
        let dir = fresh_dir("cursor-resume");
        let opts = DurableOptions {
            cache,
            ..tiny_segments()
        };
        {
            let store = DurableStore::open_with(&dir, opts).unwrap();
            for ep in 1..=6u64 {
                let batch = (0..4).map(|i| txn("P", ep * 10 + i)).collect();
                store.publish(Epoch::new(ep), batch).unwrap();
            }
        }

        // First lifetime: read the full history one-shot, then walk the
        // first two pages and remember where we stopped.
        let (one_shot, mid_cursor) = {
            let store = DurableStore::open_with(&dir, opts).unwrap();
            let one_shot = store.fetch_since(Epoch::zero()).unwrap();
            assert_eq!(one_shot.len(), 24);
            let p1 = store
                .fetch_page(&FetchCursor::after_epoch(Epoch::zero()), 5)
                .unwrap();
            let p2 = store.fetch_page(&p1.next_cursor.unwrap(), 5).unwrap();
            assert_eq!(
                one_shot[..10],
                p1.txns.iter().chain(&p2.txns).cloned().collect::<Vec<_>>()[..],
            );
            (one_shot, p2.next_cursor.unwrap())
        };

        // Second lifetime: compact (rewrites every file), then resume the
        // walk from the saved cursor — the tail matches exactly.
        let store = DurableStore::open_with(&dir, opts).unwrap();
        store.compact().unwrap();
        let tail: Vec<_> = orchestra_store::pages(&store, mid_cursor, 5)
            .flat_map(|p| p.unwrap().txns)
            .collect();
        assert_eq!(tail, one_shot[10..], "cache mode {cache:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Anti-entropy absorb writes WAL batches with the epochs their
/// publishers stamped — possibly *behind* the newest local epoch. The
/// merged order must survive a reopen and a compaction, and re-absorbing
/// the same transactions must stay idempotent across restarts.
#[test]
fn absorbed_out_of_order_epochs_survive_reopen_and_compaction() {
    let dir = fresh_dir("absorb");
    let scan_epochs = |store: &DurableStore| -> Vec<u64> {
        store
            .fetch_since(Epoch::zero())
            .unwrap()
            .iter()
            .map(|t| t.epoch.value())
            .collect()
    };
    {
        let store = DurableStore::open_with(&dir, tiny_segments()).unwrap();
        store.publish(Epoch::new(6), vec![txn("A", 1)]).unwrap();
        // Gossip backfill: older epochs land behind the local frontier.
        let mut b1 = txn("B", 1);
        b1.epoch = Epoch::new(2);
        let mut b2 = txn("B", 2);
        b2.epoch = Epoch::new(9);
        let r = store.absorb(vec![b1, b2, txn("A", 1)]).unwrap();
        assert_eq!((r.absorbed, r.duplicates), (2, 1));
        assert_eq!(scan_epochs(&store), vec![2, 6, 9]);
    }
    // Reopen replays the WAL: same merged order, still idempotent.
    {
        let store = DurableStore::open_with(&dir, tiny_segments()).unwrap();
        assert_eq!(scan_epochs(&store), vec![2, 6, 9]);
        let mut again = txn("B", 1);
        again.epoch = Epoch::new(2);
        let r = store.absorb(vec![again]).unwrap();
        assert_eq!((r.absorbed, r.duplicates), (0, 1));
        store.compact().unwrap();
        assert_eq!(scan_epochs(&store), vec![2, 6, 9]);
    }
    // And once more after the compaction rewrote every file.
    let store = DurableStore::open_with(&dir, tiny_segments()).unwrap();
    assert_eq!(scan_epochs(&store), vec![2, 6, 9]);
    assert_eq!(store.len(), 3);
    fs::remove_dir_all(&dir).unwrap();
}
