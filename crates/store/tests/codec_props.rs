//! Property tests for the durable archive's binary codec: arbitrary
//! transactions (nested skolems, full-range ints/doubles, odd strings)
//! survive frame encode → decode bit-exactly, and mangled frames never
//! decode successfully.

use orchestra_relational::{Tuple, Value};
use orchestra_store::durable::codec::{decode_batch, encode_batch, get_cursor, put_cursor, Cursor};
use orchestra_store::frame::{crc32, frame, read_frame, FrameRead};
use orchestra_store::{CursorBound, FetchCursor};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Double),
        "[a-zA-Z0-9 ,()\\\\\t]{0,12}".prop_map(Value::from),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        ("[a-z]{1,6}", proptest::collection::vec(inner, 0..3))
            .prop_map(|(f, args)| Value::skolem(f, args))
    })
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(value_strategy(), 0..4).prop_map(Tuple::new)
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        ("[A-Z]{1,3}", tuple_strategy()).prop_map(|(r, t)| Update::insert(r, t)),
        ("[A-Z]{1,3}", tuple_strategy()).prop_map(|(r, t)| Update::delete(r, t)),
        ("[A-Z]{1,3}", tuple_strategy(), tuple_strategy())
            .prop_map(|(r, old, new)| Update::modify(r, old, new)),
    ]
}

fn txn_id_strategy() -> impl Strategy<Value = TxnId> {
    ("[a-zA-Z]{1,8}", 0u64..1000).prop_map(|(p, s)| TxnId::new(PeerId::new(p), s))
}

fn txn_strategy() -> impl Strategy<Value = Transaction> {
    (
        txn_id_strategy(),
        0u64..100,
        proptest::collection::vec(update_strategy(), 0..5),
        proptest::collection::btree_set(txn_id_strategy(), 0..4),
    )
        .prop_map(|(id, epoch, updates, ants)| {
            Transaction::new(id, Epoch::new(epoch), updates).with_antecedents(ants)
        })
}

fn cursor_strategy() -> impl Strategy<Value = FetchCursor> {
    (0u64..10_000, 0u8..3, txn_id_strategy()).prop_map(|(epoch, tag, id)| {
        let bound = match tag {
            0 => CursorBound::Start,
            1 => CursorBound::At(id),
            _ => CursorBound::After(id),
        };
        FetchCursor::from_parts(Epoch::new(epoch), bound)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any cursor survives encode → decode → encode byte-identically —
    /// the stability a resume position needs to cross the wire (and a
    /// process restart) unchanged.
    #[test]
    fn cursor_roundtrips_byte_identically(cursor in cursor_strategy()) {
        let mut first = Vec::new();
        put_cursor(&mut first, &cursor);
        let mut c = Cursor::new(&first);
        let decoded = get_cursor(&mut c).unwrap();
        prop_assert!(c.is_empty(), "trailing bytes after cursor");
        prop_assert_eq!(&decoded, &cursor);
        let mut second = Vec::new();
        put_cursor(&mut second, &decoded);
        prop_assert_eq!(first, second);
    }

    /// Any batch survives the encode → frame → read_frame → decode path
    /// bit-exactly.
    #[test]
    fn batch_roundtrips_through_frames(
        epoch in 0u64..10_000,
        txns in proptest::collection::vec(txn_strategy(), 0..6),
    ) {
        let payload = encode_batch(Epoch::new(epoch), &txns);
        let framed = frame(&payload);
        match read_frame(&framed, 0) {
            FrameRead::Ok { payload: p, size } => {
                prop_assert_eq!(size, framed.len());
                let (ep, decoded) = decode_batch(&p).unwrap();
                prop_assert_eq!(ep, Epoch::new(epoch));
                prop_assert_eq!(decoded, txns);
            }
            other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
        }
    }

    /// Every strict prefix of a framed batch reads as Torn — the recovery
    /// path's signature — never as Ok or Corrupt.
    #[test]
    fn every_prefix_is_torn(txns in proptest::collection::vec(txn_strategy(), 1..3)) {
        let framed = frame(&encode_batch(Epoch::new(1), &txns));
        for cut in 1..framed.len() {
            prop_assert_eq!(read_frame(&framed[..cut], 0), FrameRead::Torn, "cut {}", cut);
        }
    }

    /// A single flipped payload bit is always caught by the checksum.
    #[test]
    fn bit_flips_never_decode(
        txns in proptest::collection::vec(txn_strategy(), 1..3),
        byte_pick in any::<prop::sample::Index>(),
        bit in 0u32..8,
    ) {
        let payload = encode_batch(Epoch::new(1), &txns);
        let mut framed = frame(&payload);
        let idx = 8 + byte_pick.index(payload.len());
        framed[idx] ^= 1u8 << bit;
        prop_assert!(
            matches!(read_frame(&framed, 0), FrameRead::Corrupt { .. }),
            "flip at byte {} bit {}", idx, bit
        );
    }

    /// Back-to-back frames in one buffer (the segment layout) all read
    /// back in order.
    #[test]
    fn concatenated_frames_scan_in_order(batches in proptest::collection::vec(
        proptest::collection::vec(txn_strategy(), 0..3), 1..5)
    ) {
        let mut buf = Vec::new();
        for (i, txns) in batches.iter().enumerate() {
            buf.extend_from_slice(&frame(&encode_batch(Epoch::new(i as u64), txns)));
        }
        let mut offset = 0usize;
        let mut seen = 0usize;
        loop {
            match read_frame(&buf, offset) {
                FrameRead::Ok { payload, size } => {
                    let (ep, decoded) = decode_batch(&payload).unwrap();
                    prop_assert_eq!(ep, Epoch::new(seen as u64));
                    prop_assert_eq!(&decoded, &batches[seen]);
                    offset += size;
                    seen += 1;
                }
                FrameRead::Eof => break,
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
        }
        prop_assert_eq!(seen, batches.len());
    }

    /// The hand-rolled CRC32 matches the IEEE reference incrementally:
    /// crc(a ++ b) is deterministic and sensitive to order.
    #[test]
    fn crc32_detects_transpositions(a in proptest::collection::vec(any::<u8>(), 1..20),
                                    b in proptest::collection::vec(any::<u8>(), 1..20)) {
        let ab: Vec<u8> = a.iter().chain(&b).copied().collect();
        let ba: Vec<u8> = b.iter().chain(&a).copied().collect();
        if ab != ba {
            prop_assert_ne!(crc32(&ab), crc32(&ba));
        }
    }
}
