//! The `UpdateStore` contract, run identically against every backend.
//!
//! Whatever holds for the reference [`InMemoryStore`] must hold for the
//! simulated DHT (with every node up) and for the durable archive in both
//! cache modes — publishing, epoch-filtered fetches, deterministic order,
//! atomic duplicate rejection, and counters.

use orchestra_relational::tuple;
use orchestra_store::{
    CacheMode, DurableOptions, DurableStore, FetchCursor, InMemoryStore, ReplicatedStore,
    StoreError, UpdateStore,
};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn txn(peer: &str, seq: u64) -> Transaction {
    Transaction::new(
        TxnId::new(PeerId::new(peer), seq),
        Epoch::zero(),
        vec![Update::insert("R", tuple![seq as i64])],
    )
}

fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "orchestra-behavior-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Backend {
    name: &'static str,
    store: Box<dyn UpdateStore>,
    dir: Option<PathBuf>,
}

impl Drop for Backend {
    fn drop(&mut self) {
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// One fresh store per backend flavor.
fn backends() -> Vec<Backend> {
    let durable_dir = fresh_dir();
    let disk_only_dir = fresh_dir();
    vec![
        Backend {
            name: "memory",
            store: Box::new(InMemoryStore::new()),
            dir: None,
        },
        Backend {
            name: "replicated",
            store: Box::new(ReplicatedStore::new(16, 3).unwrap()),
            dir: None,
        },
        Backend {
            name: "durable-cached",
            store: Box::new(DurableStore::open(&durable_dir).unwrap()),
            dir: Some(durable_dir),
        },
        Backend {
            name: "durable-disk-only",
            store: Box::new(
                DurableStore::open_with(
                    &disk_only_dir,
                    DurableOptions {
                        cache: CacheMode::DiskOnly,
                        ..DurableOptions::default()
                    },
                )
                .unwrap(),
            ),
            dir: Some(disk_only_dir),
        },
    ]
}

#[test]
fn publish_and_fetch_since() {
    for b in backends() {
        let s = &b.store;
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("B", 1)])
            .unwrap();
        s.publish(Epoch::new(2), vec![txn("A", 2)]).unwrap();
        let all = s.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all.len(), 3, "{}", b.name);
        assert!(
            all.iter().all(|t| t.epoch >= Epoch::new(1)),
            "{}: epochs stamp onto transactions",
            b.name
        );
        let recent = s.fetch_since(Epoch::new(1)).unwrap();
        assert_eq!(recent.len(), 1, "{}", b.name);
        assert_eq!(recent[0].id, TxnId::new(PeerId::new("A"), 2), "{}", b.name);
    }
}

#[test]
fn fetch_order_is_deterministic() {
    for b in backends() {
        let s = &b.store;
        s.publish(Epoch::new(1), vec![txn("B", 1), txn("A", 1)])
            .unwrap();
        s.publish(Epoch::new(2), vec![txn("C", 1)]).unwrap();
        let all = s.fetch_since(Epoch::zero()).unwrap();
        let names: Vec<&str> = all.iter().map(|t| t.id.peer.name()).collect();
        assert_eq!(names, ["A", "B", "C"], "{}: (epoch, id) order", b.name);
    }
}

#[test]
fn duplicate_rejected_atomically() {
    for b in backends() {
        let s = &b.store;
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        let err = s.publish(Epoch::new(2), vec![txn("C", 1), txn("A", 1)]);
        assert!(
            matches!(err, Err(StoreError::DuplicateTxn(_))),
            "{}",
            b.name
        );
        assert_eq!(s.len(), 1, "{}: batch failed atomically", b.name);
    }
}

#[test]
fn fetch_by_id() {
    for b in backends() {
        let s = &b.store;
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        let got = s.fetch(&TxnId::new(PeerId::new("A"), 1)).unwrap();
        assert!(got.is_some(), "{}", b.name);
        assert!(
            s.fetch(&TxnId::new(PeerId::new("Z"), 9)).unwrap().is_none(),
            "{}",
            b.name
        );
    }
}

#[test]
fn latest_epoch_and_len() {
    for b in backends() {
        let s = &b.store;
        assert!(s.is_empty(), "{}", b.name);
        assert_eq!(s.latest_epoch(), None, "{}", b.name);
        s.publish(Epoch::new(3), vec![txn("A", 1)]).unwrap();
        s.publish(Epoch::new(5), vec![txn("A", 2)]).unwrap();
        assert_eq!(s.latest_epoch(), Some(Epoch::new(5)), "{}", b.name);
        assert_eq!(s.len(), 2, "{}", b.name);
    }
}

#[test]
fn stats_count() {
    for b in backends() {
        let s = &b.store;
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("A", 2)])
            .unwrap();
        s.fetch_since(Epoch::zero()).unwrap();
        let st = s.stats();
        assert_eq!(st.published, 2, "{}", b.name);
        assert_eq!(st.fetched, 2, "{}", b.name);
    }
}

#[test]
fn empty_fetch() {
    for b in backends() {
        assert!(
            b.store.fetch_since(Epoch::zero()).unwrap().is_empty(),
            "{}",
            b.name
        );
    }
}

/// Drain the archive through `fetch_page` with the given limit,
/// returning the concatenated transactions and the page count.
fn drain_pages(
    s: &dyn UpdateStore,
    since: Epoch,
    limit: usize,
) -> (Vec<orchestra_updates::Transaction>, usize) {
    let mut out = Vec::new();
    let mut pages = 0usize;
    for page in orchestra_store::pages(s, FetchCursor::after_epoch(since), limit) {
        let page = page.unwrap();
        assert!(page.scanned() <= limit.max(1), "page respects the limit");
        assert!(page.unavailable.is_empty(), "all nodes up: no gaps");
        out.extend(page.txns);
        pages += 1;
    }
    (out, pages)
}

/// Seed a store with an awkward shape: uneven epochs, interleaved peers,
/// publish order different from id order.
fn seed_pages(s: &dyn UpdateStore) {
    s.publish(Epoch::new(1), vec![txn("B", 1), txn("A", 1), txn("C", 1)])
        .unwrap();
    s.publish(Epoch::new(2), vec![txn("A", 2)]).unwrap();
    s.publish(Epoch::new(4), (3..9).map(|i| txn("A", i)).collect())
        .unwrap();
    s.publish(Epoch::new(7), vec![txn("C", 2), txn("B", 2)])
        .unwrap();
}

#[test]
fn paged_fetch_matches_one_shot_fetch_at_every_page_size() {
    for b in backends() {
        let s = &*b.store;
        seed_pages(s);
        let one_shot = s.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(one_shot.len(), 12, "{}", b.name);
        for limit in [1usize, 2, 3, 5, 7, 12, 100] {
            let (paged, pages) = drain_pages(s, Epoch::zero(), limit);
            assert_eq!(paged, one_shot, "{}: limit {limit}", b.name);
            assert_eq!(
                pages,
                12usize.div_ceil(limit),
                "{}: limit {limit} page count",
                b.name
            );
        }
        // Epoch-filtered paging matches epoch-filtered one-shot fetch.
        let late = s.fetch_since(Epoch::new(2)).unwrap();
        let (paged_late, _) = drain_pages(s, Epoch::new(2), 4);
        assert_eq!(paged_late, late, "{}", b.name);
        assert!(s.stats().pages > 0, "{}: pages counted", b.name);
    }
}

#[test]
fn page_boundaries_are_deterministic() {
    for b in backends() {
        let s = &*b.store;
        seed_pages(s);
        // The same walk twice produces identical pages and cursors.
        let walk = || {
            let mut cursors = Vec::new();
            let mut cursor = FetchCursor::after_epoch(Epoch::zero());
            loop {
                let page = s.fetch_page(&cursor, 5).unwrap();
                cursors.push(format!("{cursor}"));
                match page.next_cursor {
                    Some(c) => cursor = c,
                    None => break,
                }
            }
            cursors
        };
        assert_eq!(walk(), walk(), "{}", b.name);
    }
}

#[test]
fn pages_are_stable_across_interleaved_publishes() {
    // A cursor taken mid-walk stays valid when new epochs land before the
    // next page is fetched: positions already scanned never change.
    for b in backends() {
        let s = &*b.store;
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("A", 2)])
            .unwrap();
        let p1 = s
            .fetch_page(&FetchCursor::after_epoch(Epoch::zero()), 1)
            .unwrap();
        assert_eq!(p1.txns.len(), 1, "{}", b.name);
        s.publish(Epoch::new(2), vec![txn("B", 1)]).unwrap();
        let rest: Vec<_> = orchestra_store::pages(s, p1.next_cursor.unwrap(), 10)
            .flat_map(|p| p.unwrap().txns)
            .collect();
        let ids: Vec<String> = rest.iter().map(|t| t.id.to_string()).collect();
        assert_eq!(ids, ["A#2", "B#1"], "{}", b.name);
    }
}

#[test]
fn in_batch_duplicate_rejected_atomically() {
    for b in backends() {
        let s = &*b.store;
        let err = s.publish(Epoch::new(1), vec![txn("A", 1), txn("B", 1), txn("A", 1)]);
        assert!(
            matches!(err, Err(StoreError::DuplicateTxn(_))),
            "{}: in-batch duplicate must be rejected",
            b.name
        );
        assert_eq!(s.len(), 0, "{}: nothing archived", b.name);
        assert!(
            s.fetch_since(Epoch::zero()).unwrap().is_empty(),
            "{}: no double-indexed ghost entries",
            b.name
        );
        // The same id can then be published cleanly exactly once.
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        assert_eq!(s.fetch_since(Epoch::zero()).unwrap().len(), 1, "{}", b.name);
    }
}

#[test]
fn stale_epoch_publish_rejected() {
    // Publishing behind the newest archived epoch would plant history that
    // advanced cursors can never see; every backend rejects it. Appending
    // into the newest epoch stays allowed.
    for b in backends() {
        let s = &*b.store;
        s.publish(Epoch::new(5), vec![txn("A", 1)]).unwrap();
        let err = s.publish(Epoch::new(3), vec![txn("B", 1)]);
        assert!(
            matches!(
                err,
                Err(StoreError::StaleEpoch {
                    epoch: 3,
                    latest: 5
                })
            ),
            "{}",
            b.name
        );
        assert_eq!(s.len(), 1, "{}: stale batch not archived", b.name);
        s.publish(Epoch::new(5), vec![txn("B", 1)]).unwrap();
        s.publish(Epoch::new(6), vec![txn("C", 1)]).unwrap();
        assert_eq!(s.fetch_since(Epoch::zero()).unwrap().len(), 3, "{}", b.name);
        // An empty batch is a vacuous no-op at any epoch: nothing a
        // cursor could miss, so no staleness to enforce.
        s.publish(Epoch::new(1), vec![]).unwrap();
    }
}

#[test]
fn updates_and_antecedents_survive_the_store() {
    // Full payload fidelity: modify/delete updates and antecedent sets
    // come back exactly as published, from every backend.
    for b in backends() {
        let s = &b.store;
        let rich = Transaction::new(
            TxnId::new(PeerId::new("A"), 1),
            Epoch::zero(),
            vec![
                Update::insert("R", tuple![1, "a"]),
                Update::modify("R", tuple![1, "a"], tuple![1, "b"]),
                Update::delete("S", tuple![2.5, false]),
            ],
        )
        .with_antecedents([TxnId::new(PeerId::new("B"), 3)]);
        s.publish(Epoch::new(1), vec![rich.clone()]).unwrap();
        let got = s.fetch(&rich.id).unwrap().unwrap();
        assert_eq!(got.updates, rich.updates, "{}", b.name);
        assert_eq!(got.antecedents, rich.antecedents, "{}", b.name);
    }
}
