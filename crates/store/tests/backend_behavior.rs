//! The `UpdateStore` contract, run identically against every backend.
//!
//! Whatever holds for the reference [`InMemoryStore`] must hold for the
//! simulated DHT (with every node up) and for the durable archive in both
//! cache modes — publishing, epoch-filtered fetches, deterministic order,
//! atomic duplicate rejection, and counters.

use orchestra_relational::tuple;
use orchestra_store::{
    CacheMode, DurableOptions, DurableStore, InMemoryStore, ReplicatedStore, StoreError,
    UpdateStore,
};
use orchestra_updates::{Epoch, PeerId, Transaction, TxnId, Update};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn txn(peer: &str, seq: u64) -> Transaction {
    Transaction::new(
        TxnId::new(PeerId::new(peer), seq),
        Epoch::zero(),
        vec![Update::insert("R", tuple![seq as i64])],
    )
}

fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "orchestra-behavior-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Backend {
    name: &'static str,
    store: Box<dyn UpdateStore>,
    dir: Option<PathBuf>,
}

impl Drop for Backend {
    fn drop(&mut self) {
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// One fresh store per backend flavor.
fn backends() -> Vec<Backend> {
    let durable_dir = fresh_dir();
    let disk_only_dir = fresh_dir();
    vec![
        Backend {
            name: "memory",
            store: Box::new(InMemoryStore::new()),
            dir: None,
        },
        Backend {
            name: "replicated",
            store: Box::new(ReplicatedStore::new(16, 3).unwrap()),
            dir: None,
        },
        Backend {
            name: "durable-cached",
            store: Box::new(DurableStore::open(&durable_dir).unwrap()),
            dir: Some(durable_dir),
        },
        Backend {
            name: "durable-disk-only",
            store: Box::new(
                DurableStore::open_with(
                    &disk_only_dir,
                    DurableOptions {
                        cache: CacheMode::DiskOnly,
                        ..DurableOptions::default()
                    },
                )
                .unwrap(),
            ),
            dir: Some(disk_only_dir),
        },
    ]
}

#[test]
fn publish_and_fetch_since() {
    for b in backends() {
        let s = &b.store;
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("B", 1)])
            .unwrap();
        s.publish(Epoch::new(2), vec![txn("A", 2)]).unwrap();
        let all = s.fetch_since(Epoch::zero()).unwrap();
        assert_eq!(all.len(), 3, "{}", b.name);
        assert!(
            all.iter().all(|t| t.epoch >= Epoch::new(1)),
            "{}: epochs stamp onto transactions",
            b.name
        );
        let recent = s.fetch_since(Epoch::new(1)).unwrap();
        assert_eq!(recent.len(), 1, "{}", b.name);
        assert_eq!(recent[0].id, TxnId::new(PeerId::new("A"), 2), "{}", b.name);
    }
}

#[test]
fn fetch_order_is_deterministic() {
    for b in backends() {
        let s = &b.store;
        s.publish(Epoch::new(1), vec![txn("B", 1), txn("A", 1)])
            .unwrap();
        s.publish(Epoch::new(2), vec![txn("C", 1)]).unwrap();
        let all = s.fetch_since(Epoch::zero()).unwrap();
        let names: Vec<&str> = all.iter().map(|t| t.id.peer.name()).collect();
        assert_eq!(names, ["A", "B", "C"], "{}: (epoch, id) order", b.name);
    }
}

#[test]
fn duplicate_rejected_atomically() {
    for b in backends() {
        let s = &b.store;
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        let err = s.publish(Epoch::new(2), vec![txn("C", 1), txn("A", 1)]);
        assert!(
            matches!(err, Err(StoreError::DuplicateTxn(_))),
            "{}",
            b.name
        );
        assert_eq!(s.len(), 1, "{}: batch failed atomically", b.name);
    }
}

#[test]
fn fetch_by_id() {
    for b in backends() {
        let s = &b.store;
        s.publish(Epoch::new(1), vec![txn("A", 1)]).unwrap();
        let got = s.fetch(&TxnId::new(PeerId::new("A"), 1)).unwrap();
        assert!(got.is_some(), "{}", b.name);
        assert!(
            s.fetch(&TxnId::new(PeerId::new("Z"), 9)).unwrap().is_none(),
            "{}",
            b.name
        );
    }
}

#[test]
fn latest_epoch_and_len() {
    for b in backends() {
        let s = &b.store;
        assert!(s.is_empty(), "{}", b.name);
        assert_eq!(s.latest_epoch(), None, "{}", b.name);
        s.publish(Epoch::new(3), vec![txn("A", 1)]).unwrap();
        s.publish(Epoch::new(5), vec![txn("A", 2)]).unwrap();
        assert_eq!(s.latest_epoch(), Some(Epoch::new(5)), "{}", b.name);
        assert_eq!(s.len(), 2, "{}", b.name);
    }
}

#[test]
fn stats_count() {
    for b in backends() {
        let s = &b.store;
        s.publish(Epoch::new(1), vec![txn("A", 1), txn("A", 2)])
            .unwrap();
        s.fetch_since(Epoch::zero()).unwrap();
        let st = s.stats();
        assert_eq!(st.published, 2, "{}", b.name);
        assert_eq!(st.fetched, 2, "{}", b.name);
    }
}

#[test]
fn empty_fetch() {
    for b in backends() {
        assert!(
            b.store.fetch_since(Epoch::zero()).unwrap().is_empty(),
            "{}",
            b.name
        );
    }
}

#[test]
fn updates_and_antecedents_survive_the_store() {
    // Full payload fidelity: modify/delete updates and antecedent sets
    // come back exactly as published, from every backend.
    for b in backends() {
        let s = &b.store;
        let rich = Transaction::new(
            TxnId::new(PeerId::new("A"), 1),
            Epoch::zero(),
            vec![
                Update::insert("R", tuple![1, "a"]),
                Update::modify("R", tuple![1, "a"], tuple![1, "b"]),
                Update::delete("S", tuple![2.5, false]),
            ],
        )
        .with_antecedents([TxnId::new(PeerId::new("B"), 3)]);
        s.publish(Epoch::new(1), vec![rich.clone()]).unwrap();
        let got = s.fetch(&rich.id).unwrap().unwrap();
        assert_eq!(got.updates, rich.updates, "{}", b.name);
        assert_eq!(got.antecedents, rich.antecedents, "{}", b.name);
    }
}
