//! The update-store contract.

use orchestra_updates::{Epoch, Transaction, TxnId};
use std::fmt;

/// Errors raised by update stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A transaction with this id was already archived (ids are immutable
    /// once published).
    DuplicateTxn(String),
    /// A transaction's payload could not be retrieved from any replica
    /// (all holders are offline).
    Unavailable {
        /// The unreachable transaction.
        txn: String,
    },
    /// The store was configured inconsistently (e.g. zero nodes).
    InvalidConfig(String),
    /// A filesystem operation failed (durable store only). The `io::Error`
    /// is flattened to strings so `StoreError` stays `Clone + Eq`.
    Io {
        /// The operation attempted (`"open segment"`, `"fsync"`, …).
        op: String,
        /// The file or directory involved.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// On-disk data failed validation (durable store only): a checksum
    /// mismatch, an undecodable record, or a sealed file ending mid-frame.
    Corrupt {
        /// The corrupt file.
        path: String,
        /// Byte offset of the bad frame/record.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateTxn(id) => write!(f, "transaction `{id}` already archived"),
            StoreError::Unavailable { txn } => {
                write!(f, "transaction `{txn}` unavailable: all replicas offline")
            }
            StoreError::InvalidConfig(msg) => write!(f, "invalid store config: {msg}"),
            StoreError::Io { op, path, message } => {
                write!(f, "io error during {op} on `{path}`: {message}")
            }
            StoreError::Corrupt {
                path,
                offset,
                reason,
            } => {
                write!(f, "corrupt store file `{path}` at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Counters exposed by store implementations for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Transactions archived.
    pub published: u64,
    /// Transactions returned by fetches.
    pub fetched: u64,
    /// Storage-node probes performed (replicated store only).
    pub probes: u64,
    /// Fetches that found no alive replica.
    pub misses: u64,
}

/// The archive of published transactions shared by all CDSS peers.
///
/// Implementations are internally synchronized (`&self` methods): many
/// peers publish and reconcile against one shared store.
pub trait UpdateStore: Send + Sync {
    /// Archive a batch of transactions published in the given epoch.
    fn publish(&self, epoch: Epoch, txns: Vec<Transaction>) -> crate::Result<()>;

    /// Every archived transaction with epoch **greater than** `since`, in
    /// deterministic (epoch, txn id) order. Transactions whose payload is
    /// unreachable are reported in the error.
    fn fetch_since(&self, since: Epoch) -> crate::Result<Vec<Transaction>>;

    /// Fetch one transaction by id, if archived and reachable.
    fn fetch(&self, id: &TxnId) -> crate::Result<Option<Transaction>>;

    /// Number of archived transactions (metadata view; counts unreachable
    /// payloads too).
    fn len(&self) -> usize;

    /// True iff nothing is archived.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The latest epoch with archived transactions, if any.
    fn latest_epoch(&self) -> Option<Epoch>;

    /// Counters snapshot.
    fn stats(&self) -> StoreStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(StoreError::DuplicateTxn("A#1".into())
            .to_string()
            .contains("already archived"));
        assert!(StoreError::Unavailable { txn: "A#1".into() }
            .to_string()
            .contains("unavailable"));
        assert!(StoreError::InvalidConfig("zero nodes".into())
            .to_string()
            .contains("zero nodes"));
    }

    #[test]
    fn stats_default() {
        let s = StoreStats::default();
        assert_eq!(s.published, 0);
        assert_eq!(s.misses, 0);
    }
}
