//! The update-store contract.

use orchestra_updates::{Epoch, Transaction, TxnId};
use std::collections::BTreeMap;
use std::fmt;

/// Default page size for [`UpdateStore::fetch_page`] and the
/// [`UpdateStore::fetch_since`] convenience wrapper: the most transactions
/// a store materializes in memory per call.
pub const DEFAULT_PAGE_LIMIT: usize = 1024;

/// Errors raised by update stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A transaction with this id was already archived (ids are immutable
    /// once published), or appeared twice in one publish batch.
    DuplicateTxn(String),
    /// A transaction's payload could not be stored or retrieved: at fetch
    /// time every replica holding it is offline; at publish time no alive
    /// storage node was available to hold it.
    Unavailable {
        /// The unreachable transaction.
        txn: String,
    },
    /// A publish targeted an epoch older than the newest archived one.
    /// Inserting history *behind* existing epochs would be silently
    /// invisible to any cursor already past that position, so the archive
    /// enforces epoch-monotone appends.
    StaleEpoch {
        /// The rejected publish epoch.
        epoch: u64,
        /// The newest epoch already archived.
        latest: u64,
    },
    /// The store was configured inconsistently (e.g. zero nodes).
    InvalidConfig(String),
    /// A filesystem operation failed (durable store only). The `io::Error`
    /// is flattened to strings so `StoreError` stays `Clone + Eq`.
    Io {
        /// The operation attempted (`"open segment"`, `"fsync"`, …).
        op: String,
        /// The file or directory involved.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// On-disk data failed validation (durable store only): a checksum
    /// mismatch, an undecodable record, or a sealed file ending mid-frame.
    Corrupt {
        /// The corrupt file.
        path: String,
        /// Byte offset of the bad frame/record.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateTxn(id) => write!(f, "transaction `{id}` already archived"),
            StoreError::Unavailable { txn } => {
                write!(f, "transaction `{txn}` unavailable: no alive replica")
            }
            StoreError::StaleEpoch { epoch, latest } => write!(
                f,
                "publish epoch e{epoch} is behind the newest archived epoch e{latest}: \
                 appends must be epoch-monotone"
            ),
            StoreError::InvalidConfig(msg) => write!(f, "invalid store config: {msg}"),
            StoreError::Io { op, path, message } => {
                write!(f, "io error during {op} on `{path}`: {message}")
            }
            StoreError::Corrupt {
                path,
                offset,
                reason,
            } => {
                write!(f, "corrupt store file `{path}` at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Counters exposed by store implementations for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Transactions archived.
    pub published: u64,
    /// Transactions returned by fetches.
    pub fetched: u64,
    /// Storage-node probes performed (replicated store only).
    pub probes: u64,
    /// Lookups that found no alive replica.
    pub misses: u64,
    /// Pages served by [`UpdateStore::fetch_page`].
    pub pages: u64,
    /// Transactions reported unreachable by paged scans.
    pub unavailable: u64,
    /// Transactions published onto fewer replicas than the configured
    /// replication factor (replicated store only).
    pub degraded: u64,
}

/// Internally synchronized [`StoreStats`] so read paths can count under a
/// shared read lock (concurrent fetches must not serialize on a write
/// lock just to bump counters).
///
/// Each field is a shard of the corresponding `store.*` counter in the
/// `orchestra-obs` registry: `snapshot()` reads this instance's own
/// shard (per-store view, same semantics as before), while the registry
/// aggregates every live store plus all dropped ones.
#[derive(Debug)]
pub(crate) struct AtomicStats {
    published: orchestra_obs::CounterHandle,
    fetched: orchestra_obs::CounterHandle,
    probes: orchestra_obs::CounterHandle,
    misses: orchestra_obs::CounterHandle,
    pages: orchestra_obs::CounterHandle,
    unavailable: orchestra_obs::CounterHandle,
    degraded: orchestra_obs::CounterHandle,
}

impl Default for AtomicStats {
    fn default() -> Self {
        AtomicStats {
            published: orchestra_obs::counter("store.published"),
            fetched: orchestra_obs::counter("store.fetched"),
            probes: orchestra_obs::counter("store.probes"),
            misses: orchestra_obs::counter("store.misses"),
            pages: orchestra_obs::counter("store.pages"),
            unavailable: orchestra_obs::counter("store.unavailable"),
            degraded: orchestra_obs::counter("store.degraded"),
        }
    }
}

impl AtomicStats {
    pub fn add_published(&self, n: u64) {
        self.published.add(n);
    }
    pub fn add_fetched(&self, n: u64) {
        self.fetched.add(n);
    }
    pub fn add_probes(&self, n: u64) {
        self.probes.add(n);
    }
    pub fn add_misses(&self, n: u64) {
        self.misses.add(n);
    }
    pub fn add_pages(&self, n: u64) {
        self.pages.add(n);
    }
    pub fn add_unavailable(&self, n: u64) {
        self.unavailable.add(n);
    }
    pub fn add_degraded(&self, n: u64) {
        self.degraded.add(n);
    }

    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            published: self.published.get(),
            fetched: self.fetched.get(),
            probes: self.probes.get(),
            misses: self.misses.get(),
            pages: self.pages.get(),
            unavailable: self.unavailable.get(),
            degraded: self.degraded.get(),
        }
    }
}

/// Per-relation slice of a [`StoreDigest`]. Relations are keyed by their
/// *owner-qualified* name `<publisher>.<relation>` (the publisher is the
/// transaction's `id.peer`), so two peers' same-named relations digest
/// independently.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelationDigest {
    /// Latest epoch with archived transactions touching this relation.
    pub latest_epoch: Option<Epoch>,
    /// Archived transactions touching this relation.
    ///
    /// Because every publisher stamps a dense, monotonically increasing
    /// sequence and the archive scan order `(epoch, id)` preserves it,
    /// the set of a publisher's transactions touching one relation held
    /// by any honest node is a *prefix* of that subsequence — so two
    /// nodes interested in the relation can compare counts directly: the
    /// larger count strictly contains the smaller.
    pub txns: u64,
}

/// A compact, comparable summary of an archive — what a mesh peer
/// advertises to its neighbors so anti-entropy rounds can decide *whether*
/// and *what* to pull without shipping history.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreDigest {
    /// Archived transactions (reachable or not).
    pub len: u64,
    /// The newest archived epoch, if any.
    pub latest_epoch: Option<Epoch>,
    /// Per-publisher high-water marks: the largest archived sequence
    /// number per source peer. Sequences are dense (1, 2, 3, …) per
    /// publisher, which makes prefix-completeness checkable from marks.
    pub sources: BTreeMap<String, u64>,
    /// Per owner-qualified relation (`<publisher>.<relation>`) summaries.
    pub relations: BTreeMap<String, RelationDigest>,
}

impl StoreDigest {
    /// Fold one archived transaction (with its payload) into the digest.
    /// Each relation the transaction touches is credited once, however
    /// many of its updates land there — `txns` counts transactions.
    pub fn observe(&mut self, txn: &Transaction) {
        self.observe_position(txn.epoch, &txn.id);
        let touched: std::collections::BTreeSet<String> = txn
            .updates
            .iter()
            .map(|u| format!("{}.{}", txn.id.peer.name(), u.relation()))
            .collect();
        for key in touched {
            let r = self.relations.entry(key).or_default();
            r.latest_epoch = Some(r.latest_epoch.map_or(txn.epoch, |e| e.max(txn.epoch)));
            r.txns += 1;
        }
    }

    /// Fold an archived *position* whose payload is unreachable: it still
    /// counts toward `len`, `latest_epoch` and the source high-water mark
    /// (the id is archived), but no relation is credited.
    pub fn observe_position(&mut self, epoch: Epoch, id: &TxnId) {
        self.len += 1;
        self.latest_epoch = Some(self.latest_epoch.map_or(epoch, |e| e.max(epoch)));
        let hw = self.sources.entry(id.peer.name().to_string()).or_default();
        *hw = (*hw).max(id.seq);
    }

    /// The high-water sequence archived for `source` (0 when unseen).
    pub fn source_hw(&self, source: &str) -> u64 {
        self.sources.get(source).copied().unwrap_or(0)
    }

    /// Transactions archived for the owner-qualified `relation` (0 when
    /// unseen).
    pub fn relation_txns(&self, relation: &str) -> u64 {
        self.relations.get(relation).map_or(0, |r| r.txns)
    }
}

/// What [`UpdateStore::absorb`] did with an anti-entropy batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbsorbReport {
    /// Transactions newly archived by this call.
    pub absorbed: u64,
    /// Transactions skipped because their id was already archived (or
    /// repeated within the batch) — the idempotent-merge case.
    pub duplicates: u64,
    /// Quarantined positions whose payloads this batch restored (durable
    /// store only): the id was already archived but its frame had been
    /// scrubbed out as corrupt, so the incoming copy re-materializes it.
    /// Healed transactions are neither `absorbed` (the position was
    /// already counted) nor `duplicates` (the payload was genuinely
    /// needed).
    pub healed: u64,
}

/// Where a cursor stands inside its epoch. Public so codecs (the durable
/// archive's on-disk format, the network wire protocol) can give cursors
/// a stable binary representation without this module knowing about
/// serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CursorBound {
    /// At the first transaction of the epoch.
    Start,
    /// At this transaction, inclusive.
    At(TxnId),
    /// Strictly after this transaction.
    After(TxnId),
}

/// A resumable position in the archive's deterministic `(epoch, txn id)`
/// order.
///
/// Cursors are plain values: they survive process restarts (the durable
/// store's order is rebuilt identically on recovery) and stay valid
/// across interleaved publishes because stores enforce epoch-monotone
/// appends ([`StoreError::StaleEpoch`]) — history never lands behind a
/// scanned epoch. One caveat remains: appending more transactions *into*
/// the newest epoch is allowed, so a cursor parked mid-way through that
/// epoch can miss late arrivals sorting below it. Publishers that need
/// strict cursor completeness use a fresh epoch per batch, as the CDSS
/// logical clock does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchCursor {
    epoch: Epoch,
    bound: CursorBound,
}

impl FetchCursor {
    /// Start at the first transaction of `epoch` (or any later epoch).
    pub fn at_epoch(epoch: Epoch) -> Self {
        FetchCursor {
            epoch,
            bound: CursorBound::Start,
        }
    }

    /// Everything published **after** `since` — the paged equivalent of
    /// [`UpdateStore::fetch_since`]`(since)`.
    pub fn after_epoch(since: Epoch) -> Self {
        FetchCursor::at_epoch(since.next())
    }

    /// Resume **at** transaction `id` of `epoch`, inclusive — used to
    /// freeze an exchange at an unreachable transaction so a later call
    /// retries exactly that position.
    pub fn at_txn(epoch: Epoch, id: TxnId) -> Self {
        FetchCursor {
            epoch,
            bound: CursorBound::At(id),
        }
    }

    /// Resume strictly after transaction `id` of `epoch`.
    pub fn after_txn(epoch: Epoch, id: TxnId) -> Self {
        FetchCursor {
            epoch,
            bound: CursorBound::After(id),
        }
    }

    /// The epoch this cursor points into.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Where the cursor stands inside its epoch.
    pub fn bound(&self) -> &CursorBound {
        &self.bound
    }

    /// Rebuild a cursor from its parts — the decode half of a binary
    /// round-trip (see `orchestra_store::durable::codec::put_cursor`).
    pub fn from_parts(epoch: Epoch, bound: CursorBound) -> Self {
        FetchCursor { epoch, bound }
    }
}

impl fmt::Display for FetchCursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.bound {
            CursorBound::Start => write!(f, "{}^", self.epoch),
            CursorBound::At(id) => write!(f, "{}@{id}", self.epoch),
            CursorBound::After(id) => write!(f, "{}>{id}", self.epoch),
        }
    }
}

/// One page of the archive, in `(epoch, txn id)` order.
///
/// `txns` and `unavailable` partition the positions scanned: together
/// they hold at most the `limit` passed to [`UpdateStore::fetch_page`].
/// Page boundaries depend only on the archive contents, the cursor, and
/// the limit — never on replica liveness — so a scan repeated under
/// different churn visits identical positions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FetchPage {
    /// Transactions whose payloads were reachable.
    pub txns: Vec<Transaction>,
    /// Positions whose payloads were unreachable (every replica offline),
    /// in scan order.
    pub unavailable: Vec<(Epoch, TxnId)>,
    /// Cursor for the next page, or `None` when the scan reached the end
    /// of the archive.
    pub next_cursor: Option<FetchCursor>,
}

impl FetchPage {
    /// Positions scanned by this page (reachable + unreachable).
    pub fn scanned(&self) -> usize {
        self.txns.len() + self.unavailable.len()
    }
}

/// Shared pagination over the `epoch → sorted txn ids` index every
/// backend maintains: the positions for one page plus the follow-up
/// cursor (`None` once the archive is exhausted). Callers only
/// materialize up to `limit` ids — never whole-history vectors.
pub(crate) fn collect_page(
    by_epoch: &BTreeMap<Epoch, Vec<TxnId>>,
    cursor: &FetchCursor,
    limit: usize,
) -> (Vec<(Epoch, TxnId)>, Option<FetchCursor>) {
    let limit = limit.max(1);
    let mut out: Vec<(Epoch, TxnId)> = Vec::new();
    let mut more = false;
    'scan: for (&ep, ids) in by_epoch.range(cursor.epoch..) {
        // Per-epoch id lists are kept sorted by `publish`, so the cursor
        // bound is a binary search, not a scan.
        let skip = if ep == cursor.epoch {
            match &cursor.bound {
                CursorBound::Start => 0,
                CursorBound::At(id) => ids.partition_point(|x| x < id),
                CursorBound::After(id) => ids.partition_point(|x| x <= id),
            }
        } else {
            0
        };
        for id in &ids[skip..] {
            if out.len() == limit {
                more = true;
                break 'scan;
            }
            out.push((ep, id.clone()));
        }
    }
    let next = if more {
        // analyze: allow(panic) -- `more` is only true when at least one element was pushed
        let (e, id) = out.last().expect("limit >= 1");
        Some(FetchCursor::after_txn(*e, id.clone()))
    } else {
        None
    };
    (out, next)
}

/// The archive of published transactions shared by all CDSS peers.
///
/// Implementations are internally synchronized (`&self` methods): many
/// peers publish and reconcile against one shared store.
pub trait UpdateStore: Send + Sync {
    /// Archive a batch of transactions published in the given epoch.
    /// Atomic: a duplicate id (against the archive or within the batch)
    /// or an unavailable replica set rejects the whole batch.
    fn publish(&self, epoch: Epoch, txns: Vec<Transaction>) -> crate::Result<()>;

    /// One page of archived transactions starting at `cursor`, in
    /// deterministic `(epoch, txn id)` order, scanning at most `limit`
    /// positions (`limit` is clamped to at least 1).
    ///
    /// Unreachable payloads do **not** fail the call: they are reported
    /// in [`FetchPage::unavailable`] and the scan continues, so a single
    /// dead replica never blocks access to the rest of the history.
    fn fetch_page(&self, cursor: &FetchCursor, limit: usize) -> crate::Result<FetchPage>;

    /// Every archived transaction with epoch **greater than** `since`, in
    /// deterministic (epoch, txn id) order — a convenience wrapper that
    /// drains [`fetch_page`](UpdateStore::fetch_page). Unlike the paged
    /// API it fails on the first unreachable payload (reported in the
    /// error); counters still reflect the pages actually scanned.
    ///
    /// Pages are fetched under separate lock acquisitions, so the result
    /// is not a point-in-time snapshot: a concurrent publish appending
    /// into the newest, partially-scanned epoch can be missed when its
    /// ids sort below the in-flight cursor (see [`FetchCursor`]).
    /// Publishers that use a fresh epoch per batch — as the CDSS logical
    /// clock does — are immune.
    fn fetch_since(&self, since: Epoch) -> crate::Result<Vec<Transaction>> {
        let mut out = Vec::new();
        for page in pages(self, FetchCursor::after_epoch(since), DEFAULT_PAGE_LIMIT) {
            let page = page?;
            if let Some((_, id)) = page.unavailable.first() {
                return Err(StoreError::Unavailable {
                    txn: id.to_string(),
                });
            }
            out.extend(page.txns);
        }
        Ok(out)
    }

    /// Fetch one transaction by id, if archived and reachable.
    fn fetch(&self, id: &TxnId) -> crate::Result<Option<Transaction>>;

    /// Number of archived transactions (metadata view; counts unreachable
    /// payloads too).
    fn len(&self) -> usize;

    /// True iff nothing is archived.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The latest epoch with archived transactions, if any.
    fn latest_epoch(&self) -> Option<Epoch>;

    /// Counters snapshot.
    fn stats(&self) -> StoreStats;

    /// Summarize the whole archive as a [`StoreDigest`] — the
    /// advertisement a mesh peer gossips to its neighbors.
    ///
    /// The default implementation pages the archive front to back (and
    /// therefore counts toward the fetch/page counters); backends with an
    /// epoch index override it with a scan that never clones payloads.
    fn digest(&self) -> crate::Result<StoreDigest> {
        let mut d = StoreDigest::default();
        for page in pages(
            self,
            FetchCursor::at_epoch(Epoch::zero()),
            DEFAULT_PAGE_LIMIT,
        ) {
            let page = page?;
            for t in &page.txns {
                d.observe(t);
            }
            for (e, id) in &page.unavailable {
                d.observe_position(*e, id);
            }
        }
        Ok(d)
    }

    /// Merge anti-entropy transactions into the archive, keeping the
    /// epochs their publishers stamped. Unlike [`publish`], `absorb` is
    /// **idempotent** (already-archived ids are silently skipped, so
    /// re-pulling an overlapping page is harmless) and **not epoch
    /// monotone** (a gossip pull from a second neighbor can legitimately
    /// carry history older than the newest local epoch — it lands behind
    /// existing cursors, which is why mesh consumers rewind after a
    /// backfill; see `orchestra-mesh`).
    ///
    /// Not every backend supports it: the default returns
    /// [`StoreError::InvalidConfig`]. [`publish`]: UpdateStore::publish
    fn absorb(&self, txns: Vec<Transaction>) -> crate::Result<AbsorbReport> {
        let _ = txns;
        Err(StoreError::InvalidConfig(
            "this backend does not support anti-entropy absorb".into(),
        ))
    }

    /// Archived positions whose payloads were quarantined as corrupt, in
    /// `(epoch, txn id)` order — the gaps a mesh node asks its neighbors
    /// to re-fill. Backends without local storage (and therefore without
    /// bit-rot) report none.
    fn quarantined(&self) -> Vec<(Epoch, TxnId)> {
        Vec::new()
    }
}

/// Iterate a store's pages from `cursor`: the loop every caller of
/// [`UpdateStore::fetch_page`] would otherwise hand-roll. Yields each
/// [`FetchPage`] until the archive is exhausted; a fetch error is yielded
/// once and ends the iteration. Works on concrete stores and
/// `dyn UpdateStore` alike.
pub fn pages<S: UpdateStore + ?Sized>(
    store: &S,
    cursor: FetchCursor,
    limit: usize,
) -> Pages<'_, S> {
    Pages {
        store,
        cursor: Some(cursor),
        limit,
    }
}

/// Iterator over a store's pages — see [`pages`].
#[derive(Debug)]
pub struct Pages<'a, S: UpdateStore + ?Sized> {
    store: &'a S,
    cursor: Option<FetchCursor>,
    limit: usize,
}

impl<S: UpdateStore + ?Sized> Iterator for Pages<'_, S> {
    type Item = crate::Result<FetchPage>;

    fn next(&mut self) -> Option<Self::Item> {
        let cursor = self.cursor.take()?;
        match self.store.fetch_page(&cursor, self.limit) {
            Ok(page) => {
                self.cursor = page.next_cursor.clone();
                Some(Ok(page))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

/// Reject a publish batch that repeats an id already archived (`known`)
/// or repeats an id within the batch itself — the silent-overwrite
/// double-index bug both cases used to cause.
pub(crate) fn check_batch_ids<'a>(
    txns: &'a [Transaction],
    mut known: impl FnMut(&TxnId) -> bool,
) -> Result<(), StoreError> {
    let mut seen: std::collections::BTreeSet<&'a TxnId> = std::collections::BTreeSet::new();
    for t in txns {
        if known(&t.id) || !seen.insert(&t.id) {
            return Err(StoreError::DuplicateTxn(t.id.to_string()));
        }
    }
    Ok(())
}

/// Append a batch's ids to the `epoch → ids` index, maintaining the
/// sorted per-epoch order that [`collect_page`]'s binary search depends
/// on — the one place that owns this invariant.
pub(crate) fn index_epoch_ids(
    by_epoch: &mut BTreeMap<Epoch, Vec<TxnId>>,
    epoch: Epoch,
    ids: impl IntoIterator<Item = TxnId>,
) {
    let list = by_epoch.entry(epoch).or_default();
    let mid = list.len();
    list.extend(ids);
    list[mid..].sort_unstable();
    // Repeated appends into one epoch only sort the incoming batch; when
    // the runs interleave, merge the two sorted halves linearly instead
    // of re-sorting everything already in place.
    if mid > 0 && list[mid - 1] > list[mid] {
        let tail = list.split_off(mid);
        let head = std::mem::take(list);
        let mut a = head.into_iter().peekable();
        let mut b = tail.into_iter().peekable();
        let mut merged = Vec::with_capacity(mid + b.len());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x <= y {
                        merged.push(a.next().expect("peeked")); // analyze: allow(panic) -- next() after a successful peek() on the same iterator cannot be None
                    } else {
                        merged.push(b.next().expect("peeked")); // analyze: allow(panic) -- next() after a successful peek() on the same iterator cannot be None
                    }
                }
                (Some(_), None) => merged.push(a.next().expect("peeked")), // analyze: allow(panic) -- next() after a successful peek() on the same iterator cannot be None
                (None, Some(_)) => merged.push(b.next().expect("peeked")), // analyze: allow(panic) -- next() after a successful peek() on the same iterator cannot be None
                (None, None) => break,
            }
        }
        *list = merged;
    }
}

/// Reject a publish into an epoch behind the newest archived one: cursors
/// already past that position would never see it (appending *into* the
/// newest epoch remains allowed — but a cursor mid-way through that epoch
/// can likewise miss late arrivals sorting below it, so publishers wanting
/// strict cursor completeness should use a fresh epoch per batch, as the
/// CDSS logical clock does).
pub(crate) fn check_epoch_monotone(epoch: Epoch, latest: Option<Epoch>) -> Result<(), StoreError> {
    match latest {
        Some(latest) if epoch < latest => Err(StoreError::StaleEpoch {
            epoch: epoch.value(),
            latest: latest.value(),
        }),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_updates::PeerId;

    fn id(peer: &str, seq: u64) -> TxnId {
        TxnId::new(PeerId::new(peer), seq)
    }

    #[test]
    fn error_display() {
        assert!(StoreError::DuplicateTxn("A#1".into())
            .to_string()
            .contains("already archived"));
        assert!(StoreError::Unavailable { txn: "A#1".into() }
            .to_string()
            .contains("unavailable"));
        assert!(StoreError::InvalidConfig("zero nodes".into())
            .to_string()
            .contains("zero nodes"));
    }

    #[test]
    fn stats_default() {
        let s = StoreStats::default();
        assert_eq!(s.published, 0);
        assert_eq!(s.misses, 0);
        assert_eq!(s.pages, 0);
        assert_eq!(s.unavailable, 0);
        assert_eq!(s.degraded, 0);
    }

    #[test]
    fn atomic_stats_snapshot() {
        let a = AtomicStats::default();
        a.add_published(2);
        a.add_fetched(3);
        a.add_pages(1);
        a.add_unavailable(4);
        a.add_degraded(5);
        let s = a.snapshot();
        assert_eq!(s.published, 2);
        assert_eq!(s.fetched, 3);
        assert_eq!(s.pages, 1);
        assert_eq!(s.unavailable, 4);
        assert_eq!(s.degraded, 5);
    }

    fn sample_index() -> BTreeMap<Epoch, Vec<TxnId>> {
        let mut m = BTreeMap::new();
        m.insert(Epoch::new(1), vec![id("A", 1), id("B", 1)]);
        m.insert(Epoch::new(3), vec![id("A", 2), id("A", 3), id("C", 1)]);
        m
    }

    #[test]
    fn collect_page_walks_in_order() {
        let m = sample_index();
        let (p1, c1) = collect_page(&m, &FetchCursor::at_epoch(Epoch::zero()), 2);
        assert_eq!(
            p1,
            vec![(Epoch::new(1), id("A", 1)), (Epoch::new(1), id("B", 1))]
        );
        let (p2, c2) = collect_page(&m, &c1.unwrap(), 2);
        assert_eq!(
            p2,
            vec![(Epoch::new(3), id("A", 2)), (Epoch::new(3), id("A", 3))]
        );
        let (p3, c3) = collect_page(&m, &c2.unwrap(), 2);
        assert_eq!(p3, vec![(Epoch::new(3), id("C", 1))]);
        assert!(c3.is_none());
    }

    #[test]
    fn collect_page_exact_boundary_peeks_ahead() {
        let m = sample_index();
        // Limit lands exactly on the final position: no follow-up cursor.
        let (all, next) = collect_page(&m, &FetchCursor::at_epoch(Epoch::zero()), 5);
        assert_eq!(all.len(), 5);
        assert!(next.is_none());
    }

    #[test]
    fn collect_page_cursor_bounds() {
        let m = sample_index();
        let (at, _) = collect_page(&m, &FetchCursor::at_txn(Epoch::new(3), id("A", 3)), 10);
        assert_eq!(
            at,
            vec![(Epoch::new(3), id("A", 3)), (Epoch::new(3), id("C", 1))]
        );
        let (after, _) = collect_page(&m, &FetchCursor::after_txn(Epoch::new(3), id("A", 3)), 10);
        assert_eq!(after, vec![(Epoch::new(3), id("C", 1))]);
        let (since, _) = collect_page(&m, &FetchCursor::after_epoch(Epoch::new(1)), 10);
        assert_eq!(since.len(), 3);
        let (empty, next) = collect_page(&m, &FetchCursor::at_epoch(Epoch::new(9)), 10);
        assert!(empty.is_empty());
        assert!(next.is_none());
    }

    #[test]
    fn collect_page_zero_limit_clamps_to_one() {
        let m = sample_index();
        let (p, next) = collect_page(&m, &FetchCursor::at_epoch(Epoch::zero()), 0);
        assert_eq!(p.len(), 1);
        assert!(next.is_some());
    }

    #[test]
    fn index_epoch_ids_merges_interleaved_appends() {
        let mut m: BTreeMap<Epoch, Vec<TxnId>> = BTreeMap::new();
        let e = Epoch::new(1);
        index_epoch_ids(&mut m, e, [id("M", 1), id("D", 1)]);
        assert_eq!(m[&e], vec![id("D", 1), id("M", 1)]);
        // Second append interleaves below and above the existing run.
        index_epoch_ids(&mut m, e, [id("Z", 1), id("A", 1), id("G", 1)]);
        assert_eq!(
            m[&e],
            vec![id("A", 1), id("D", 1), id("G", 1), id("M", 1), id("Z", 1)]
        );
        // Append entirely above the run: fast path, no merge needed.
        index_epoch_ids(&mut m, e, [id("ZZ", 1)]);
        assert_eq!(m[&e].len(), 6);
        assert!(m[&e].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn batch_id_check_catches_in_batch_duplicates() {
        use orchestra_updates::Transaction;
        let t = |seq| Transaction::new(id("A", seq), Epoch::zero(), vec![]);
        assert!(check_batch_ids(&[t(1), t(2)], |_| false).is_ok());
        assert!(matches!(
            check_batch_ids(&[t(1), t(1)], |_| false),
            Err(StoreError::DuplicateTxn(_))
        ));
        assert!(matches!(
            check_batch_ids(&[t(1)], |_| true),
            Err(StoreError::DuplicateTxn(_))
        ));
    }

    #[test]
    fn cursor_display() {
        assert_eq!(FetchCursor::at_epoch(Epoch::new(2)).to_string(), "e2^");
        assert_eq!(
            FetchCursor::at_txn(Epoch::new(2), id("A", 1)).to_string(),
            "e2@A#1"
        );
        assert_eq!(
            FetchCursor::after_txn(Epoch::new(2), id("A", 1)).to_string(),
            "e2>A#1"
        );
    }
}
