//! # orchestra-store
//!
//! The distributed archive of published transactions.
//!
//! In the paper (Figure 1) "the published transactions are stored in a
//! peer-to-peer distributed database, though one can also use other methods
//! to store the published updates". The store's contract is what matters to
//! the CDSS:
//!
//! 1. **Archival**: published transactions are retained so that peers that
//!    reconcile later — possibly after the publisher went offline — can
//!    still retrieve them (demonstration scenario 5: "Beijing publishes a
//!    number of updates and then goes offline. Alaska can reconcile and
//!    still retrieve Beijing's updates from the CDSS").
//! 2. **Epoch indexing**: a reconciling peer asks for "everything published
//!    since my last reconciliation epoch".
//! 3. **Bounded, partial-progress reads**: [`UpdateStore::fetch_page`]
//!    walks the archive in `(epoch, txn id)` order through a resumable
//!    [`FetchCursor`], materializing at most one page at a time, and
//!    reports unreachable payloads in [`FetchPage::unavailable`] instead
//!    of failing the scan — one dead replica never blocks the rest of the
//!    history. [`UpdateStore::fetch_since`] is a convenience wrapper that
//!    drains the pages (and keeps the old fail-on-unavailable contract).
//!
//! Three implementations of the [`UpdateStore`] trait:
//!
//! * [`InMemoryStore`] — a centralized archive (the "other methods" case);
//!   also the reference implementation for tests.
//! * [`ReplicatedStore`] — a **simulated DHT**: `N` virtual storage nodes
//!   on a consistent-hash ring, each transaction replicated on the first
//!   `R` alive nodes clockwise from its hash point; nodes can be taken
//!   down/up to model churn. No real networking is involved — the paper's
//!   deployment detail we substitute per DESIGN.md — but the observable
//!   behaviour (availability under churn as a function of replication
//!   factor, probe counts) is preserved for experiment E8.
//! * [`DurableStore`] — a **crash-recoverable archive on local disk**:
//!   checksummed frames on a write-ahead log with segment rotation,
//!   torn-tail recovery, and snapshot-based compaction. The backend that
//!   lets peers restart without losing the archive (see [`durable`]).

pub mod api;
pub mod durable;
pub mod frame;
pub mod memory;
pub mod replicated;

pub use api::{
    pages, AbsorbReport, CursorBound, FetchCursor, FetchPage, Pages, RelationDigest, StoreDigest,
    StoreError, StoreStats, UpdateStore, DEFAULT_PAGE_LIMIT,
};
pub use durable::{CacheMode, DurableOptions, DurableStats, DurableStore, ScrubReport, SyncPolicy};
pub use memory::InMemoryStore;
pub use replicated::ReplicatedStore;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
