//! WAL segment files: naming, listing, scanning, and torn-tail repair.
//!
//! The log is a sequence of segment files `wal-<seq>.seg` (seq is a
//! monotonically increasing, zero-padded u64). All segments but the
//! highest-numbered one are **sealed**: they were rotated out at the size
//! threshold and must scan cleanly end to end — any invalid frame in a
//! sealed segment is real corruption. The highest-numbered segment is
//! **active**: a crash can leave a torn frame at its tail, which recovery
//! truncates away (the frame never had its batch acknowledged as durable
//! under `SyncPolicy::Always`, and under weaker policies was explicitly
//! unfenced).

use crate::api::StoreError;
use crate::frame::{FrameRead, FrameReader};
use std::fs;
use std::io::{BufReader, Write as _};
use std::path::{Path, PathBuf};

/// File extension for WAL segments.
pub const SEGMENT_EXT: &str = "seg";

/// Name of the segment file with the given sequence number.
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:016x}.{SEGMENT_EXT}")
}

/// Parse a segment file name back to its sequence number.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?;
    let hex = rest.strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Sequence numbers of all segments in `dir`, ascending.
pub fn list_segments(dir: &Path) -> crate::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("read_dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read_dir", dir, &e))?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = parse_segment_file_name(name) {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// A checksum-verified frame recovered from a segment scan.
#[derive(Debug, Clone)]
pub struct ScannedFrame {
    /// Byte offset of the frame header within the segment file.
    pub offset: u64,
    /// The verified payload.
    pub payload: Vec<u8>,
}

/// A contiguous stretch of a file a lossy scan could not validate.
#[derive(Debug, Clone)]
pub struct CorruptRegion {
    /// Byte offset where the bad frame begins.
    pub offset: u64,
    /// Bytes the region spans, when the frame structure was still
    /// parseable (a checksum mismatch). `None` means the region extends
    /// to end of file: the length prefix itself was implausible, so
    /// nothing past `offset` can be framed.
    pub len: Option<u64>,
    /// What was wrong.
    pub reason: String,
}

/// The outcome of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// All checksum-valid frames, in file order.
    pub frames: Vec<ScannedFrame>,
    /// Size of the valid prefix (where the next frame would begin).
    pub valid_len: u64,
    /// Bytes past `valid_len` that form a torn frame (zero on a clean
    /// scan).
    pub torn_bytes: u64,
    /// Corrupt frames skipped over (lossy scans only; a strict scan
    /// errors on the first one instead).
    pub corrupt: Vec<CorruptRegion>,
}

/// Scan the segment at `path`.
///
/// `allow_torn_tail` is true only for the active (highest-numbered)
/// segment: a trailing partial frame is then reported in `torn_bytes`
/// instead of failing the scan. Checksum-invalid *complete* frames are
/// always an error — sealed data does not bit-rot silently.
pub fn scan_segment(path: &Path, allow_torn_tail: bool) -> crate::Result<SegmentScan> {
    let scan = scan_segment_lossy(path, allow_torn_tail)?;
    if let Some(region) = scan.corrupt.first() {
        return Err(StoreError::Corrupt {
            path: path.display().to_string(),
            offset: region.offset,
            reason: region.reason.clone(),
        });
    }
    Ok(scan)
}

/// Scan the segment at `path`, **skipping over** corrupt frames instead
/// of failing: each one is reported in [`SegmentScan::corrupt`] and the
/// scan resynchronizes at the next frame boundary (the length prefix
/// locates it even when the payload is rotten). When the length prefix
/// itself is implausible — or a non-tail torn frame appears — nothing
/// past that point can be framed, so the remainder of the file becomes
/// one open-ended corrupt region.
///
/// `allow_torn_tail` retains its strict-scan meaning: a trailing partial
/// frame on the active segment is crash residue (`torn_bytes`), not
/// corruption.
pub fn scan_segment_lossy(path: &Path, allow_torn_tail: bool) -> crate::Result<SegmentScan> {
    let file_len = fs::metadata(path)
        .map_err(|e| io_err("stat", path, &e))?
        .len();
    let file = fs::File::open(path).map_err(|e| io_err("open", path, &e))?;
    let mut reader = FrameReader::new(BufReader::new(file), 0);
    let mut frames = Vec::new();
    let mut corrupt = Vec::new();
    loop {
        let (offset, outcome) = reader.next_frame().map_err(|e| io_err("read", path, &e))?;
        match outcome {
            FrameRead::Ok { payload, .. } => {
                frames.push(ScannedFrame { offset, payload });
            }
            FrameRead::Eof => {
                return Ok(SegmentScan {
                    frames,
                    valid_len: offset,
                    torn_bytes: 0,
                    corrupt,
                });
            }
            FrameRead::Torn if allow_torn_tail => {
                return Ok(SegmentScan {
                    frames,
                    valid_len: offset,
                    torn_bytes: file_len - offset,
                    corrupt,
                });
            }
            FrameRead::Torn => {
                corrupt.push(CorruptRegion {
                    offset,
                    len: None,
                    reason: "sealed segment ends mid-frame".into(),
                });
                return Ok(SegmentScan {
                    frames,
                    valid_len: offset,
                    torn_bytes: 0,
                    corrupt,
                });
            }
            FrameRead::Corrupt { reason, resync } => {
                let open_ended = resync.is_none();
                corrupt.push(CorruptRegion {
                    offset,
                    len: resync,
                    reason,
                });
                if open_ended {
                    return Ok(SegmentScan {
                        frames,
                        valid_len: offset,
                        torn_bytes: 0,
                        corrupt,
                    });
                }
                // resync = Some(_): the reader already advanced past the
                // bad frame; keep scanning.
            }
        }
    }
}

/// Truncate the file at `path` to `len` bytes (torn-tail repair), syncing
/// the result.
pub fn truncate_segment(path: &Path, len: u64) -> crate::Result<()> {
    let f = fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err("open for truncate", path, &e))?;
    f.set_len(len).map_err(|e| io_err("truncate", path, &e))?;
    f.sync_all().map_err(|e| io_err("fsync", path, &e))?;
    Ok(())
}

/// An open, append-only segment.
#[derive(Debug)]
pub struct ActiveSegment {
    /// This segment's sequence number.
    pub seq: u64,
    path: PathBuf,
    file: fs::File,
    len: u64,
    /// Set when a failed append could not be rolled back: the on-disk
    /// length no longer matches `len`, so further appends would land after
    /// garbage and be silently lost to the next recovery's truncation.
    poisoned: bool,
}

impl ActiveSegment {
    /// Create (or reopen for append) the segment `seq` in `dir`, starting
    /// at byte `len` (which must be the verified valid prefix).
    pub fn open(dir: &Path, seq: u64, len: u64) -> crate::Result<Self> {
        let path = dir.join(segment_file_name(seq));
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open segment", &path, &e))?;
        // Persist the directory entry: fsyncing the file alone does not
        // make its *name* durable, and an acknowledged batch must not
        // vanish with the whole segment on power loss.
        sync_dir(dir)?;
        Ok(ActiveSegment {
            seq,
            path,
            file,
            len,
            poisoned: false,
        })
    }

    /// Bytes currently in the segment.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff no frames were written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append raw framed bytes; returns the offset the frame begins at.
    ///
    /// A failed `write_all` may have landed a partial frame; the file is
    /// rolled back to the last good frame boundary so a later append is
    /// not indexed past garbage (recovery would truncate at the garbage
    /// and silently drop the later, acknowledged frame). If the rollback
    /// itself fails, the segment is poisoned and refuses further appends.
    pub fn append(&mut self, framed: &[u8]) -> crate::Result<u64> {
        if self.poisoned {
            return Err(StoreError::Io {
                op: "append".into(),
                path: self.path.display().to_string(),
                message: "segment poisoned by an earlier unrecoverable append failure".into(),
            });
        }
        let offset = self.len;
        // Failpoint `store.wal.append`: `err` fails before any byte lands
        // (clean); `torn` lands a partial frame and then exercises the
        // same rollback path a real short write takes.
        match orchestra_fault::check("store.wal.append") {
            Some(orchestra_fault::Action::Torn) => {
                let cut = framed.len() / 2;
                // analyze: allow(panic) -- cut = framed.len() / 2 is in bounds
                let _ = self.file.write_all(&framed[..cut]);
                let err = injected_err("append", &self.path);
                if self.file.set_len(offset).is_err() {
                    self.poisoned = true;
                }
                return Err(err);
            }
            Some(_) => return Err(injected_err("append", &self.path)),
            None => {}
        }
        if let Err(e) = self.file.write_all(framed) {
            let err = io_err("append", &self.path, &e);
            if self.file.set_len(offset).is_err() {
                self.poisoned = true;
            }
            return Err(err);
        }
        self.len += framed.len() as u64;
        Ok(offset)
    }

    /// Flush file data (and metadata) to stable storage.
    pub fn sync(&mut self) -> crate::Result<()> {
        // Failpoint `store.wal.fsync`: the appended bytes ARE on the file
        // (only the durability barrier "failed"), which is exactly the
        // dangerous half-state a real fsync failure leaves behind — a
        // retried publish re-appends the frame, and recovery must
        // deduplicate it (first indexed location wins).
        if orchestra_fault::check("store.wal.fsync").is_some() {
            return Err(injected_err("fsync", &self.path));
        }
        self.file
            .sync_all()
            .map_err(|e| io_err("fsync", &self.path, &e))
    }
}

pub(super) fn injected_err(op: &str, path: &Path) -> StoreError {
    StoreError::Io {
        op: op.to_string(),
        path: path.display().to_string(),
        message: "injected failpoint".into(),
    }
}

pub(super) fn io_err(op: &str, path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        op: op.to_string(),
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// fsync a directory so file creations/renames/unlinks within it are
/// durable — without this, a power loss can drop a freshly created
/// segment's directory entry even though its *contents* were fsynced.
pub fn sync_dir(dir: &Path) -> crate::Result<()> {
    // Directory fsync is a POSIX-ism; on platforms where opening a
    // directory fails this is best-effort.
    if let Ok(d) = fs::File::open(dir) {
        d.sync_all().map_err(|e| io_err("fsync dir", dir, &e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("orchestra-segment-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn names_roundtrip() {
        assert_eq!(parse_segment_file_name(&segment_file_name(0)), Some(0));
        assert_eq!(
            parse_segment_file_name(&segment_file_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert_eq!(parse_segment_file_name("wal-zz.seg"), None);
        assert_eq!(parse_segment_file_name("snap-0000000000000001.snap"), None);
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut seg = ActiveSegment::open(&dir, 1, 0).unwrap();
        let a = frame(b"alpha");
        let b = frame(b"beta");
        assert_eq!(seg.append(&a).unwrap(), 0);
        assert_eq!(seg.append(&b).unwrap(), a.len() as u64);
        seg.sync().unwrap();

        let scan = scan_segment(&dir.join(segment_file_name(1)), false).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[0].payload, b"alpha");
        assert_eq!(scan.frames[1].payload, b"beta");
        assert_eq!(scan.valid_len, (a.len() + b.len()) as u64);
        assert_eq!(scan.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_tolerated_only_when_active() {
        let dir = tmp_dir("torn");
        let path = dir.join(segment_file_name(3));
        let good = frame(b"keep me");
        let torn = &frame(b"lost to the crash")[..9];
        let mut bytes = good.clone();
        bytes.extend_from_slice(torn);
        fs::write(&path, &bytes).unwrap();

        let scan = scan_segment(&path, true).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, good.len() as u64);
        assert_eq!(scan.torn_bytes, torn.len() as u64);

        assert!(matches!(
            scan_segment(&path, false),
            Err(StoreError::Corrupt { .. })
        ));

        truncate_segment(&path, scan.valid_len).unwrap();
        let rescanned = scan_segment(&path, false).unwrap();
        assert_eq!(rescanned.frames.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listing_sorts() {
        let dir = tmp_dir("list");
        for seq in [5u64, 1, 9] {
            fs::write(dir.join(segment_file_name(seq)), b"").unwrap();
        }
        fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        assert_eq!(list_segments(&dir).unwrap(), vec![1, 5, 9]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
